//! End-to-end tests of `ug [SteinerJack, ProcessComm]`: the same STP
//! instance solved by the threaded back-end and by real spawned
//! `ugd-worker` processes must agree — and the run must survive a
//! worker being killed mid-subproblem.

use std::time::Duration;
use ugrs::cip::NodeDesc;
use ugrs::glue::{ug_solve_stp, ug_solve_stp_distributed};
use ugrs::steiner::gen::{bipartite, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::comm::LcComm;
use ugrs::ug::process::ProcessListener;
use ugrs::ug::supervisor::LoadCoordinator;
use ugrs::ug::{DistributedOptions, ParallelOptions, ProcessCommConfig};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_ugd-worker");

fn test_graph() -> ugrs::steiner::Graph {
    bipartite(5, 9, 3, CostScheme::Perturbed, 42)
}

/// The acceptance gate of the ProcessComm PR: one generated instance,
/// solved via ThreadComm (4 threads) and via ProcessComm (coordinator +
/// 4 spawned worker processes on localhost), reaching the same optimum.
#[test]
fn thread_and_process_backends_agree() {
    let g = test_graph();
    let threaded = ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 4, ..Default::default() },
    );
    assert!(threaded.solved);
    let (_, expected) = threaded.tree.clone().expect("threaded run must find a tree");

    let distributed = ug_solve_stp_distributed(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 4, ..Default::default() },
        DistributedOptions { worker_command: vec![WORKER_BIN.to_string()], ..Default::default() },
    )
    .expect("distributed run must start");

    assert!(distributed.solved, "ProcessComm run must prove optimality");
    let (edges, cost) = distributed.tree.expect("ProcessComm run must find a tree");
    assert!(
        (cost - expected).abs() < 1e-6,
        "ProcessComm optimum {cost} != ThreadComm optimum {expected}"
    );
    assert!(ugrs::steiner::SteinerTree::new(&g, edges).is_valid(&g));
    assert_eq!(distributed.stats.workers_died, 0);
}

/// Worker-death robustness: kill one worker process mid-subproblem and
/// the coordinator must requeue its work and still reach the optimum.
///
/// Built from the compositional pieces (listener + hand-spawned
/// workers) so the test holds the `Child` handle it wants to kill.
/// Rank 0 is started with a 3 s `--handicap-ms`, and under the Normal
/// ramp-up the root goes to `idle[0]` = rank 0 — so when we kill it
/// shortly after start it is reliably mid-subproblem with the whole
/// tree in flight.
#[test]
fn killed_worker_is_survived_and_requeued() {
    let g = test_graph();
    let threaded = ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 2, ..Default::default() },
    );
    let (_, expected) = threaded.tree.expect("threaded run must find a tree");

    // Coordinator-side presolve, exactly as ug_solve_stp_distributed
    // does it, then ship the reduced instance via a temp file.
    let mut reduced = g.clone();
    ugrs::steiner::reduce::reduce(&mut reduced, &ReduceParams::default());
    assert!(
        reduced.num_terminals() >= 2,
        "instance must stay nontrivial after presolve or the test exercises nothing"
    );
    let instance_path =
        std::env::temp_dir().join(format!("ugrs-kill-test-{}.json", std::process::id()));
    std::fs::write(&instance_path, serde_json::to_string(&reduced).unwrap()).unwrap();

    // Short transport timeouts (the defaults wait 15 s before declaring
    // a silent worker dead — pointless stall in a kill test), passed to
    // the workers so their heartbeat cadence matches.
    let n = 4;
    // reconnect_deadline is kept short: this test is about the
    // *requeue* path, so a killed worker should be declared dead fast.
    let config = ProcessCommConfig {
        handshake_timeout: Duration::from_secs(10),
        liveness_timeout: Duration::from_secs(2),
        heartbeat_interval: Duration::from_millis(100),
        reconnect_deadline: Duration::from_millis(500),
        chaos: None,
    };
    let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut children = Vec::new();
    for rank in 0..n {
        let mut cmd = std::process::Command::new(WORKER_BIN);
        cmd.arg("--connect")
            .arg(&addr)
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--instance")
            .arg(&instance_path)
            .arg("--status-interval")
            .arg("0.05")
            .arg("--heartbeat-ms")
            .arg(config.heartbeat_interval.as_millis().to_string())
            .arg("--handshake-ms")
            .arg(config.handshake_timeout.as_millis().to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null());
        if rank == 0 {
            cmd.arg("--handicap-ms").arg("3000");
        }
        children.push(cmd.spawn().expect("spawn ugd-worker"));
    }

    let lc = LcComm::Process(
        listener.accept_workers::<NodeDesc, Vec<f64>>(n, &config).expect("handshake"),
    );
    let mut coordinator = LoadCoordinator::new(
        lc,
        ParallelOptions { num_solvers: n, ..Default::default() },
        NodeDesc::root(),
    );

    // Kill rank 0 while it sits in its handicap delay holding the root.
    let victim = children.remove(0);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(600));
        let mut victim = victim;
        let _ = victim.kill();
        let _ = victim.wait();
    });

    let res = coordinator.run();
    killer.join().unwrap();
    for mut c in children {
        // run() already sent Terminate; give survivors a moment, then
        // make sure nothing outlives the test.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match c.try_wait() {
                Ok(Some(_)) => break,
                _ if std::time::Instant::now() >= deadline => {
                    let _ = c.kill();
                    let _ = c.wait();
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }
    let _ = std::fs::remove_file(&instance_path);

    assert_eq!(res.stats.workers_died, 1, "exactly the killed rank must be detected dead");
    assert!(res.solved, "the requeued root must still be solved to optimality");
    let (_, obj) = res.solution.expect("a tree must be found despite the death");
    let cost = obj + reduced.fixed_cost;
    assert!(
        (cost - expected).abs() < 1e-6,
        "optimum after worker death {cost} != reference {expected}"
    );
}
