//! The paper's headline claim, applied to a *third* problem class: any
//! customized CIP solver — here a small maximum-independent-set solver
//! with its own greedy heuristic plugin — is parallelized by UG with a
//! `CipUserPlugins` implementation of a few dozen lines. Nothing in the
//! framework knows about independent sets.

use std::sync::Arc;
use ugrs::cip::{Heuristic, Model, NodeDesc, SolveCtx, Solver as CipSolver, VarType};
use ugrs::glue::{CipUserPlugins, UgCipSolver};
use ugrs::ug::{solve_parallel, ParallelOptions, SolverSettings};

/// A graph for the maximum independent set problem.
#[derive(Clone, Debug)]
struct MisInstance {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl MisInstance {
    fn ring_with_chords(n: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2));
        }
        MisInstance { n, edges }
    }

    fn brute_force(&self) -> usize {
        assert!(self.n <= 20);
        let mut best = 0;
        'outer: for mask in 0u32..(1 << self.n) {
            for &(u, v) in &self.edges {
                if mask >> u & 1 == 1 && mask >> v & 1 == 1 {
                    continue 'outer;
                }
            }
            best = best.max(mask.count_ones() as usize);
        }
        best
    }
}

/// A problem-specific greedy heuristic — the "user plugin".
struct GreedyMis {
    inst: Arc<MisInstance>,
}

impl Heuristic for GreedyMis {
    fn name(&self) -> &str {
        "greedy-mis"
    }

    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        let x = ctx.relax_x?;
        // Greedy by LP value, respecting local fixings.
        let mut order: Vec<usize> = (0..self.inst.n).collect();
        order.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap());
        let mut taken = vec![false; self.inst.n];
        let mut banned = vec![false; self.inst.n];
        for v in order {
            if banned[v] || ctx.local_ub[v] < 0.5 {
                continue;
            }
            taken[v] = true;
            for &(a, b) in &self.inst.edges {
                if a == v {
                    banned[b] = true;
                }
                if b == v {
                    banned[a] = true;
                }
            }
        }
        // Honour forced-in vertices.
        for (v, tv) in taken.iter_mut().enumerate() {
            if ctx.local_lb[v] > 0.5 {
                *tv = true;
            }
        }
        Some(taken.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect())
    }
}

/// The entire glue — the `mis_plugins.cpp` of this application.
struct MisPlugins {
    inst: Arc<MisInstance>,
}

impl CipUserPlugins for MisPlugins {
    fn name(&self) -> &str {
        "ug[Mis,*]"
    }

    fn create_solver(&self, settings: &SolverSettings) -> CipSolver {
        let mut model = Model::new("mis");
        model.set_maximize();
        let vars: Vec<_> =
            (0..self.inst.n).map(|_| model.add_var("x", VarType::Binary, 0.0, 1.0, 1.0)).collect();
        for &(u, v) in &self.inst.edges {
            model.add_linear(f64::NEG_INFINITY, 1.0, &[(vars[u], 1.0), (vars[v], 1.0)]);
        }
        let cip_settings = ugrs::glue::base::decode_generic(settings);
        let mut solver = CipSolver::new(model, cip_settings);
        solver.add_heuristic(Box::new(GreedyMis { inst: self.inst.clone() }));
        solver
    }
}

#[test]
fn third_application_parallelizes_via_the_same_glue() {
    let inst = Arc::new(MisInstance::ring_with_chords(14));
    let expected = inst.brute_force();
    let plugins = Arc::new(MisPlugins { inst: inst.clone() });
    let factory = UgCipSolver::factory(plugins);
    let res = solve_parallel(
        factory,
        NodeDesc::root(),
        ParallelOptions { num_solvers: 3, ..Default::default() },
    );
    assert!(res.solved);
    let (x, obj) = res.solution.expect("must find a maximum independent set");
    // Internal sense minimizes −|S|.
    assert!((obj + expected as f64).abs() < 1e-6, "got {obj}, expected −{expected}");
    // Validate independence.
    for &(u, v) in &inst.edges {
        assert!(x[u] < 0.5 || x[v] < 0.5, "edge ({u},{v}) violated");
    }
}

#[test]
fn third_application_sequential_matches() {
    let inst = Arc::new(MisInstance::ring_with_chords(12));
    let expected = inst.brute_force();
    let plugins = MisPlugins { inst: inst.clone() };
    let mut solver = plugins.create_solver(&SolverSettings::default_bundle());
    let res = solver.solve(&mut ugrs::cip::NoHooks);
    assert_eq!(res.status, ugrs::cip::SolveStatus::Optimal);
    assert!((res.best_obj.unwrap() - expected as f64).abs() < 1e-6);
}
