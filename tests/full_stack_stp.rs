//! Cross-crate integration: the full Steiner pipeline (generators →
//! reductions → branch-and-cut → UG parallelization) against a
//! brute-force oracle on small instances.

use ugrs::glue::ug_solve_stp;
use ugrs::steiner::gen::{bipartite, code_covering, hypercube, CostScheme};
use ugrs::steiner::heur::tree_from_vertices;
use ugrs::steiner::reduce::ReduceParams;
use ugrs::steiner::{Graph, SteinerOptions, SteinerSolver, SteinerTree};
use ugrs::ug::ParallelOptions;

/// Exact optimum by enumerating Steiner-vertex subsets (≤ 2^16 MSTs).
fn brute_force(g: &Graph) -> f64 {
    let optional: Vec<usize> = g.alive_nodes().filter(|&v| !g.is_terminal(v)).collect();
    let k = optional.len();
    assert!(k <= 16, "instance too large for the oracle");
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << k) {
        let mut in_set: Vec<bool> =
            (0..g.num_nodes()).map(|v| g.is_node_alive(v) && g.is_terminal(v)).collect();
        for (i, &v) in optional.iter().enumerate() {
            if mask >> i & 1 == 1 {
                in_set[v] = true;
            }
        }
        if let Some(t) = tree_from_vertices(g, &in_set) {
            best = best.min(t.cost);
        }
    }
    best
}

fn check_instance(g: Graph) {
    let expected = brute_force(&g);
    // Sequential SCIP-Jack-style.
    let mut seq = SteinerSolver::new(g.clone(), SteinerOptions::default());
    let res = seq.solve();
    let cost = res.best_cost.expect("sequential must solve");
    assert!((cost - expected).abs() < 1e-6, "sequential {cost} vs brute force {expected}");
    let tree = res.tree.unwrap();
    assert!(tree.is_valid(&g));

    // Parallel through UG.
    let par = ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 2, ..Default::default() },
    );
    assert!(par.solved);
    let (edges, pcost) = par.tree.unwrap();
    assert!((pcost - expected).abs() < 1e-6, "parallel {pcost} vs {expected}");
    assert!(SteinerTree::new(&g, edges).is_valid(&g));
}

#[test]
fn hypercube_family_exact() {
    check_instance(hypercube(3, CostScheme::Unit, 1));
    check_instance(hypercube(3, CostScheme::Perturbed, 2));
}

#[test]
fn code_covering_family_exact() {
    check_instance(code_covering(2, 3, 4, CostScheme::Unit, 3));
    check_instance(code_covering(2, 3, 5, CostScheme::Perturbed, 4));
}

#[test]
fn bipartite_family_exact() {
    check_instance(bipartite(4, 6, 2, CostScheme::Unit, 5));
    check_instance(bipartite(5, 7, 2, CostScheme::Perturbed, 6));
}

#[test]
fn random_small_instances_exact() {
    // A few structured-random graphs via the bipartite generator with
    // denser linking.
    for seed in 10..14 {
        check_instance(bipartite(4, 8, 3, CostScheme::Perturbed, seed));
    }
}

#[test]
fn reductions_never_change_the_optimum() {
    for seed in 20..24 {
        let g = code_covering(2, 3, 4, CostScheme::Perturbed, seed);
        let expected = brute_force(&g);
        let mut with = SteinerSolver::new(g.clone(), SteinerOptions::default());
        let mut without =
            SteinerSolver::new(g, SteinerOptions { skip_reductions: true, ..Default::default() });
        let c1 = with.solve().best_cost.unwrap();
        let c2 = without.solve().best_cost.unwrap();
        assert!((c1 - expected).abs() < 1e-6, "seed {seed}: reduced {c1} vs {expected}");
        assert!((c2 - expected).abs() < 1e-6, "seed {seed}: unreduced {c2} vs {expected}");
    }
}
