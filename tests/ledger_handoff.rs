//! Ledger handoff: one server's `--state-dir` recovered by a
//! *different* instance — the primitive under both the gateway's shard
//! failover and a rolling restart. The contract is at-least-once, no
//! duplicates, no silent loss: every acknowledged-but-unfinished job
//! comes back exactly once, every finished job stays finished, torn
//! records are reported (not invented into jobs), and `.tmp` orphans
//! from a crash mid-write are ignored (their job either has a complete
//! older record or was never acknowledged — the write-ahead discipline
//! makes both safe).

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use ugrs::ug::{JobLedger, JobSpec};

type Spec = JobSpec<String, u32>;

fn scratch_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ugrs-handoff-{label}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(name: &str) -> Spec {
    JobSpec::new(name, format!("instance-of-{name}"), 7)
}

/// A syntactically valid checkpoint payload at a given chain position —
/// `checkpoint_meta` only reads these two fields.
fn checkpoint_json(run_index: u32, nodes_so_far: u64) -> String {
    format!(
        r#"{{"queue":[],"assigned":[],"incumbent":null,"dual_bound":0.0,
           "nodes_so_far":{nodes_so_far},"transferred_so_far":0,
           "wall_time_so_far":0.0,"run_index":{run_index}}}"#
    )
}

/// What shard A left behind for one job.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Fate {
    /// Acknowledged, never finished: MUST be recovered.
    Active,
    /// Acknowledged and retired: MUST NOT resurrect.
    Finished,
    /// Record corrupted on disk (bad sector, truncation at the fs
    /// layer): MUST be skipped *and reported*, never half-parsed.
    Torn,
    /// Crash between temp-write and rename: only the `.tmp` exists.
    /// MUST be ignored — the rename never happened, so no client ever
    /// got an ack for this record.
    TmpOrphan,
}

fn fate_strategy() -> impl Strategy<Value = Fate> {
    // Weighted: recovery-relevant fates dominate, damage stays common
    // enough that most sampled dirs contain some.
    (0u8..7).prop_map(|v| match v {
        0..=2 => Fate::Active,
        3..=4 => Fate::Finished,
        5 => Fate::Torn,
        _ => Fate::TmpOrphan,
    })
}

/// Builds shard A's state dir according to `fates`, then recovers it
/// from a brand-new `JobLedger` (a different instance, as in failover).
fn build_and_recover(dir: &Path, fates: &[Fate]) -> ugrs::ug::Recovery<String, u32> {
    let a = JobLedger::open(dir).expect("open shard A ledger");
    for (i, fate) in fates.iter().enumerate() {
        let id = i as u64;
        match fate {
            Fate::Active => a.record_submitted(id, &spec(&format!("job-{id}"))).unwrap(),
            Fate::Finished => {
                a.record_submitted(id, &spec(&format!("job-{id}"))).unwrap();
                a.record_finished(id).unwrap();
            }
            Fate::Torn => {
                a.record_submitted(id, &spec(&format!("job-{id}"))).unwrap();
                let path = dir.join("jobs").join(format!("job-{id}.json"));
                let full = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, &full[..full.len() / 2]).unwrap();
            }
            Fate::TmpOrphan => {
                let path = dir.join("jobs").join(format!("job-{id}.json.tmp"));
                std::fs::write(&path, r#"{"job":"#).unwrap();
            }
        }
    }
    drop(a); // shard A is gone; a different instance takes over
    let b = JobLedger::open(dir).expect("open from the successor");
    b.recover().expect("recovery must not error on a damaged dir")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handoff_recovers_exactly_the_unfinished_jobs(
        fates in prop::collection::vec(fate_strategy(), 0..24)
    ) {
        let dir = scratch_dir("prop");
        let recovery = build_and_recover(&dir, &fates);

        let expect_active: Vec<u64> = fates
            .iter()
            .enumerate()
            .filter(|(_, f)| **f == Fate::Active)
            .map(|(i, _)| i as u64)
            .collect();
        let got: Vec<u64> = recovery.jobs.iter().map(|j| j.job).collect();
        // Exactly once each, in submission order: at-least-once with no
        // duplication is what lets the successor requeue blindly.
        prop_assert_eq!(&got, &expect_active, "recovered set mismatch for {:?}", fates);
        for j in &recovery.jobs {
            prop_assert_eq!(j.run_index, 1, "no checkpoint => fresh run");
            let want = format!("job-{}", j.job);
            prop_assert_eq!(j.spec.name.as_str(), want.as_str());
        }

        // Torn records are surfaced for the operator, not dropped
        // silently — and never misread as jobs.
        let torn = fates.iter().filter(|f| **f == Fate::Torn).count();
        prop_assert_eq!(recovery.skipped.len(), torn, "skipped-report mismatch for {:?}", fates);

        // Fresh ids never collide with a recovered (parseable) job.
        if let Some(max) = expect_active.iter().max() {
            prop_assert!(recovery.next_job > *max);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn handoff_resumes_chain_position_from_best_available_source() {
    let dir = scratch_dir("chain");
    let a = JobLedger::open(&dir).expect("open");

    // Job 0: a local checkpoint from run 2 — resumes as run 3.
    a.record_submitted(0, &spec("local-checkpoint")).unwrap();
    std::fs::write(a.checkpoint_path(0), checkpoint_json(2, 40)).unwrap();

    // Job 1: no local checkpoint, but the spec carries `restart_from`
    // (handed over mid-chain by a gateway failover, then interrupted
    // again before this shard's first periodic save) — the chain
    // position must come from the spec, not reset to run 1.
    let mut handed = spec("handed-over");
    handed.restart_from = Some(checkpoint_json(1, 7));
    a.record_submitted(1, &handed).unwrap();

    // Job 2: torn local checkpoint — degrade to a fresh run, not an error.
    a.record_submitted(2, &spec("torn-checkpoint")).unwrap();
    std::fs::write(a.checkpoint_path(2), r#"{"run_index":"#).unwrap();

    // Job 3: both sources — the local checkpoint is fresher by
    // construction (it was written *on* this shard, after the handover).
    let mut both = spec("both-sources");
    both.restart_from = Some(checkpoint_json(1, 5));
    a.record_submitted(3, &both).unwrap();
    std::fs::write(a.checkpoint_path(3), checkpoint_json(4, 90)).unwrap();

    drop(a);
    let recovery: ugrs::ug::Recovery<String, u32> =
        JobLedger::open(&dir).unwrap().recover().unwrap();
    let by_id: Vec<(u64, u32, u64, bool)> = recovery
        .jobs
        .iter()
        .map(|j| (j.job, j.run_index, j.nodes_so_far, j.checkpoint.is_some()))
        .collect();
    assert_eq!(
        by_id,
        vec![(0, 3, 40, true), (1, 2, 7, true), (2, 1, 0, false), (3, 5, 90, true)],
        "chain positions after handoff"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn finished_jobs_never_resurrect_across_instances() {
    let dir = scratch_dir("retire");
    let a = JobLedger::open(&dir).unwrap();
    a.record_submitted(0, &spec("done")).unwrap();
    // Even with a stale checkpoint left on disk, a retired record means
    // the job's terminal event was already announced — resurrecting it
    // would double-solve (and double-bill) it.
    std::fs::write(a.checkpoint_path(0), checkpoint_json(1, 10)).unwrap();
    a.record_finished(0).unwrap();
    drop(a);
    let recovery: ugrs::ug::Recovery<String, u32> =
        JobLedger::open(&dir).unwrap().recover().unwrap();
    assert!(recovery.jobs.is_empty(), "retired job came back: {:?}", recovery.jobs.len());
    std::fs::remove_dir_all(&dir).ok();
}
