//! Telemetry end-to-end: a real parallel STP run wired to a JSONL run
//! journal must be replayable, and the replay must reconstruct the
//! run's final `UgStats` — the property that makes journals usable for
//! Figure 1-style gap-over-time plots and post-mortems.

use std::sync::{Arc, Mutex};
use ugrs::glue::ug_solve_stp;
use ugrs::steiner::gen::{bipartite, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::telemetry::{reconstruct_stats, Journal, JournalRecord, TelemetryEvent};
use ugrs::ug::{ParallelOptions, ProgressMsg, ProgressSink, TelemetrySink};

fn journal_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ugrs-telemetry-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

/// An instance that stays nontrivial after presolving — a graph the
/// reductions solve outright never starts a coordinator, so its journal
/// would be empty.
fn nontrivial_graph(mut seed: u64) -> ugrs::steiner::Graph {
    loop {
        let g = bipartite(5, 9, 3, CostScheme::Perturbed, seed);
        let mut reduced = g.clone();
        ugrs::steiner::reduce::reduce(&mut reduced, &ReduceParams::default());
        if reduced.num_terminals() >= 2 {
            return g;
        }
        seed += 1;
    }
}

#[test]
fn journal_replay_reconstructs_final_stats() {
    let g = nontrivial_graph(42);
    let path = journal_path("replay");
    let journal = Arc::new(Journal::create(&path).unwrap());
    let r = ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions {
            num_solvers: 2,
            telemetry: TelemetrySink::with_journal(journal),
            ..Default::default()
        },
    );
    assert!(r.solved);

    let records = Journal::replay(&path).unwrap();
    assert!(!records.is_empty(), "journal must contain events");

    // Timestamps are monotone non-decreasing and start at the run.
    for w in records.windows(2) {
        assert!(w[0].t <= w[1].t, "timestamps must be monotone");
    }
    assert!(records[0].t >= 0.0);

    // The journal brackets the run: starts with RunStarted, ends with
    // RunFinished carrying the authoritative stats.
    assert!(
        matches!(records.first().unwrap().event, TelemetryEvent::RunStarted { workers: 2, .. }),
        "first event must be RunStarted: {:?}",
        records.first()
    );
    let TelemetryEvent::RunFinished { stats: ref finished } = records.last().unwrap().event else {
        panic!("last event must be RunFinished: {:?}", records.last());
    };
    assert_eq!(finished, &r.stats, "RunFinished must carry the run's stats verbatim");

    // Replay reconstruction: discrete events drive the counters
    // exactly; the final Progress snapshot mirrors the final stats.
    let rebuilt = reconstruct_stats(&records);
    assert_eq!(rebuilt.transferred, r.stats.transferred, "transferred from events");
    assert_eq!(rebuilt.collected, r.stats.collected, "collected from events");
    assert_eq!(rebuilt.incumbents_seen, r.stats.incumbents_seen, "incumbents from events");
    assert_eq!(rebuilt.workers_died, r.stats.workers_died, "deaths from events");
    assert_eq!(rebuilt.nodes_total, r.stats.nodes_total, "nodes from final snapshot");
    assert_eq!(rebuilt.open_nodes, r.stats.open_nodes, "open nodes from final snapshot");
    assert!((rebuilt.primal_bound - r.stats.primal_bound).abs() < 1e-9);
    assert!((rebuilt.dual_bound - r.stats.dual_bound).abs() < 1e-9);
    assert!((rebuilt.wall_time - r.stats.wall_time).abs() < 1e-6);
    assert!((rebuilt.idle_percent - r.stats.idle_percent).abs() < 1e-9);
    // Interim snapshots can only undercount the true concurrent peak.
    assert!(rebuilt.max_active <= r.stats.max_active);

    std::fs::remove_file(&path).ok();
}

#[test]
fn progress_sink_sees_live_and_final_snapshots() {
    let g = nontrivial_graph(77);
    let seen: Arc<Mutex<Vec<ProgressMsg>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = {
        let seen = seen.clone();
        ProgressSink::new(move |p| seen.lock().unwrap().push(p.clone()))
    };
    let r = ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions {
            num_solvers: 2,
            telemetry: TelemetrySink { journal: None, progress: Some(sink) },
            ..Default::default()
        },
    );
    assert!(r.solved);
    let seen = seen.lock().unwrap();
    assert!(!seen.is_empty(), "at least the final snapshot must be emitted");
    let last = seen.last().unwrap();
    assert_eq!(last.nodes, r.stats.nodes_total);
    assert_eq!(last.transferred, r.stats.transferred);
    assert!((last.gap_percent - r.stats.gap_percent()).abs() < 1e-9);
    assert_eq!(last.phase, "normal");
}

#[test]
fn replay_tolerates_concurrent_tail_write() {
    // A journal read mid-run may end in a torn line; replay must keep
    // every complete record before it. (The unit test covers the torn
    // byte-level case; this covers the writer-side flush boundary.)
    let path = journal_path("tail");
    let journal = Journal::create(&path).unwrap();
    journal.log(TelemetryEvent::Phase { phase: "racing".into() });
    journal.log(TelemetryEvent::Incumbent { obj: 12.5 });
    journal.flush();
    // Append garbage to simulate a torn concurrent write.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"t\":9.9,\"event\":{\"Incumb").unwrap();
    }
    let records: Vec<JournalRecord> = Journal::replay(&path).unwrap();
    assert_eq!(records.len(), 2);
    assert!(matches!(records[1].event, TelemetryEvent::Incumbent { obj } if obj == 12.5));
    std::fs::remove_file(&path).ok();
}
