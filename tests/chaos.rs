//! The chaos harness: seeded fault injection against *real* distributed
//! solves. A [`FaultPlan`] (seed + profile) drives each `ugd-worker`'s
//! frame-write path through drops, corruption, duplicates and delays —
//! deterministically, so every assertion message carries the one-line
//! JSON plan that reproduces the failure:
//!
//! ```text
//! UGRS_CHAOS_SEED=1337 cargo test --test chaos
//! ```
//!
//! What must hold: with a live reconnect budget the transport self-heals
//! (session resume + retransmit ring), so both the STP and the MISDP
//! solve reach the exact reference optimum with **zero** `WorkerDied`
//! requeues while reconnecting at least once. With the budget at zero
//! the same faults degrade to the `WorkerDied` → requeue path — and the
//! run must *still* reach the optimum.

use std::time::Duration;
use ugrs::cip::NodeDesc;
use ugrs::glue::{
    ug_solve_misdp, ug_solve_misdp_distributed, ug_solve_stp, ug_solve_stp_distributed,
};
use ugrs::misdp::gen as mgen;
use ugrs::steiner::gen::{bipartite, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::chaos::{ChaosProfile, FaultAction, FaultPlan};
use ugrs::ug::comm::LcComm;
use ugrs::ug::process::ProcessListener;
use ugrs::ug::supervisor::LoadCoordinator;
use ugrs::ug::telemetry;
use ugrs::ug::{DistributedOptions, ParallelOptions, ProcessCommConfig};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_ugd-worker");

/// The seed under test. CI's `chaos-smoke` step sweeps a fixed set
/// (41, 1337, 20260807) by exporting `UGRS_CHAOS_SEED`.
fn chaos_seed() -> u64 {
    std::env::var("UGRS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(41)
}

/// The e2e fault mix: hot enough that any reasonable seed schedules
/// drops *and* corruption within the first ~100 frames a worker writes
/// (heartbeats alone produce 50 frames/s here), mild enough that the
/// solve still terminates promptly.
fn chaos_profile() -> ChaosProfile {
    ChaosProfile {
        corrupt_p: 0.08,
        drop_p: 0.05,
        dup_p: 0.05,
        delay_p: 0.05,
        delay_ms: 10,
        ..ChaosProfile::none()
    }
}

/// Transport tuning for the self-healing tests: fast heartbeats (a
/// steady frame clock for the injector) and a generous reconnect
/// budget, so every injected fault is recoverable.
fn healing_comm() -> ProcessCommConfig {
    ProcessCommConfig {
        handshake_timeout: Duration::from_secs(10),
        liveness_timeout: Duration::from_secs(2),
        heartbeat_interval: Duration::from_millis(20),
        reconnect_deadline: Duration::from_secs(10),
        chaos: None, // faults are injected worker-side via --chaos-seed
    }
}

/// Fails early — with the serialized plan — when the plan does not even
/// *schedule* the faults the test is about; a seed that fires nothing
/// would vacuously pass the recovery assertions.
fn assert_plan_is_hostile(plan: &FaultPlan, horizon: u64) {
    let events = plan.events(usize::MAX, horizon);
    let drops = events.iter().filter(|(_, a)| *a == FaultAction::Drop).count();
    let corrupts = events.iter().filter(|(_, a)| matches!(a, FaultAction::Corrupt { .. })).count();
    assert!(
        drops >= 1 && corrupts >= 1,
        "plan schedules only {drops} drop(s) / {corrupts} corruption(s) in its first \
         {horizon} frames — too tame to exercise recovery; plan: {plan}"
    );
}

/// The chaos worker command: the plan is handed to every worker via the
/// hidden `--chaos-seed` / `--chaos-profile` flags (the profile rides
/// as inline JSON, exactly the repro format of the runbook).
fn chaos_worker_command(plan: &FaultPlan, handicap_ms: u64) -> Vec<String> {
    vec![
        WORKER_BIN.to_string(),
        "--handicap-ms".into(),
        handicap_ms.to_string(),
        "--chaos-seed".into(),
        plan.seed.to_string(),
        "--chaos-profile".into(),
        serde_json::to_string(&plan.profile).expect("profile serializes"),
    ]
}

/// `ug [SteinerJack, ProcessComm]` under fire: drops and corruption
/// mid-solve must be absorbed by reconnect + replay — same optimum as
/// the threaded reference, at least one session resume, and **no**
/// `WorkerDied` requeue.
#[test]
fn stp_survives_drops_and_corruption_without_a_death() {
    let plan = FaultPlan::new(chaos_seed(), chaos_profile());
    assert_plan_is_hostile(&plan, 120);

    let g = bipartite(5, 9, 3, CostScheme::Perturbed, 42);
    let threaded = ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 4, ..Default::default() },
    );
    assert!(threaded.solved);
    let (_, expected) = threaded.tree.clone().expect("threaded run must find a tree");

    // Process-wide counters: assert on deltas, not absolutes, so this
    // test composes with anything else the harness runs.
    let reconnects0 = telemetry::comm().reconnects.get();
    let corrupt0 = telemetry::comm().frames_corrupt.get();

    let res = ug_solve_stp_distributed(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 4, status_interval: 0.02, ..Default::default() },
        DistributedOptions {
            worker_command: chaos_worker_command(&plan, 800),
            comm: healing_comm(),
            ..Default::default()
        },
    )
    .expect("distributed run must start");

    assert!(res.solved, "chaos run must still prove optimality; plan: {plan}");
    let (_, cost) = res.tree.expect("chaos run must find a tree");
    assert!(
        (cost - expected).abs() < 1e-6,
        "chaos optimum {cost} != reference {expected}; plan: {plan}"
    );
    assert_eq!(
        res.stats.workers_died, 0,
        "faults inside the reconnect budget must never reach the requeue path; plan: {plan}"
    );
    let reconnects = telemetry::comm().reconnects.get() - reconnects0;
    assert!(reconnects >= 1, "expected at least one session resume, saw none; plan: {plan}");
    let corrupted = telemetry::comm().frames_corrupt.get() - corrupt0;
    assert!(corrupted >= 1, "expected the CRC to catch a corrupt frame, saw none; plan: {plan}");
}

/// `ug [ScipSdp, ProcessComm]` under the same fire: the MISDP solve
/// must also heal through its faults and match the threaded optimum.
#[test]
fn misdp_survives_drops_and_corruption_without_a_death() {
    let plan = FaultPlan::new(chaos_seed(), chaos_profile());
    assert_plan_is_hostile(&plan, 120);

    let p = mgen::cardinality_ls(6, 2, 9);
    let threaded = ug_solve_misdp(&p, ParallelOptions { num_solvers: 4, ..Default::default() });
    assert!(threaded.solved);
    let expected = threaded.best_obj.expect("threaded run must find a solution");

    let reconnects0 = telemetry::comm().reconnects.get();

    let res = ug_solve_misdp_distributed(
        &p,
        ParallelOptions { num_solvers: 4, status_interval: 0.02, ..Default::default() },
        DistributedOptions {
            worker_command: chaos_worker_command(&plan, 800),
            comm: healing_comm(),
            ..Default::default()
        },
    )
    .expect("distributed run must start");

    assert!(res.solved, "chaos run must still prove optimality; plan: {plan}");
    let got = res.best_obj.expect("chaos run must find a solution");
    assert!(
        (got - expected).abs() < 1e-6,
        "chaos optimum {got} != reference {expected}; plan: {plan}"
    );
    assert_eq!(
        res.stats.workers_died, 0,
        "faults inside the reconnect budget must never reach the requeue path; plan: {plan}"
    );
    let reconnects = telemetry::comm().reconnects.get() - reconnects0;
    assert!(reconnects >= 1, "expected at least one session resume, saw none; plan: {plan}");
}

/// Degradation: the *same* fault machinery with the reconnect budget at
/// zero must fall back to the old behavior — a torn connection is a
/// death, the subproblem is requeued, and the run still reaches the
/// optimum. Built compositionally so only rank 0 gets the chaos plan
/// (with one shared plan every rank would die at the same frame).
#[test]
fn zero_reconnect_budget_degrades_to_requeue_and_still_solves() {
    // A drop-heavy plan: the first Drop tears rank 0's connection, and
    // with `--reconnect-ms 0` on the worker and a zero coordinator
    // deadline that tear is immediately fatal.
    let plan = FaultPlan::new(chaos_seed(), ChaosProfile { drop_p: 0.25, ..ChaosProfile::none() });
    assert!(
        plan.events(1, 60).iter().any(|(_, a)| *a == FaultAction::Drop),
        "plan schedules no drop in 60 frames; plan: {plan}"
    );

    let g = bipartite(5, 9, 3, CostScheme::Perturbed, 42);
    let threaded = ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 2, ..Default::default() },
    );
    let (_, expected) = threaded.tree.expect("threaded run must find a tree");

    let mut reduced = g.clone();
    ugrs::steiner::reduce::reduce(&mut reduced, &ReduceParams::default());
    let instance_path =
        std::env::temp_dir().join(format!("ugrs-chaos-degrade-{}.json", std::process::id()));
    std::fs::write(&instance_path, serde_json::to_string(&reduced).unwrap()).unwrap();

    let n = 4;
    let config = ProcessCommConfig {
        handshake_timeout: Duration::from_secs(10),
        liveness_timeout: Duration::from_secs(2),
        heartbeat_interval: Duration::from_millis(40),
        reconnect_deadline: Duration::ZERO,
        chaos: None,
    };
    let listener = ProcessListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut children = Vec::new();
    for rank in 0..n {
        let mut cmd = std::process::Command::new(WORKER_BIN);
        cmd.arg("--connect")
            .arg(&addr)
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--instance")
            .arg(&instance_path)
            .arg("--status-interval")
            .arg("0.05")
            .arg("--heartbeat-ms")
            .arg(config.heartbeat_interval.as_millis().to_string())
            .arg("--handshake-ms")
            .arg(config.handshake_timeout.as_millis().to_string())
            .arg("--liveness-ms")
            .arg(config.liveness_timeout.as_millis().to_string())
            .arg("--reconnect-ms")
            .arg("0")
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null());
        if rank == 0 {
            // Rank 0 holds the root in a handicap delay while its
            // chaos schedule walks toward the first Drop — so the tear
            // reliably happens mid-subproblem, forcing a real requeue.
            cmd.arg("--handicap-ms")
                .arg("3000")
                .arg("--chaos-seed")
                .arg(plan.seed.to_string())
                .arg("--chaos-profile")
                .arg(serde_json::to_string(&plan.profile).unwrap());
        }
        children.push(cmd.spawn().expect("spawn ugd-worker"));
    }

    let lc = LcComm::Process(
        listener.accept_workers::<NodeDesc, Vec<f64>>(n, &config).expect("handshake"),
    );
    let mut coordinator = LoadCoordinator::new(
        lc,
        ParallelOptions { num_solvers: n, status_interval: 0.05, ..Default::default() },
        NodeDesc::root(),
    );
    let res = coordinator.run();

    for mut c in children {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match c.try_wait() {
                Ok(Some(_)) => break,
                _ if std::time::Instant::now() >= deadline => {
                    let _ = c.kill();
                    let _ = c.wait();
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }
    let _ = std::fs::remove_file(&instance_path);

    assert_eq!(
        res.stats.workers_died, 1,
        "with a zero reconnect budget the torn rank must die exactly once; plan: {plan}"
    );
    assert!(res.solved, "the requeued root must still be solved to optimality; plan: {plan}");
    let (_, obj) = res.solution.expect("a tree must be found despite the degradation");
    let cost = obj + reduced.fixed_cost;
    assert!(
        (cost - expected).abs() < 1e-6,
        "optimum after degradation {cost} != reference {expected}; plan: {plan}"
    );
}
