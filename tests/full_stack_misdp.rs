//! Cross-crate integration for the MISDP pipeline: the two solution
//! approaches against each other and against exhaustive enumeration of
//! the integer assignments, sequentially and under UG.

use ugrs::glue::ug_solve_misdp;
use ugrs::misdp::gen::{cardinality_ls, min_k_partitioning, truss_topology};
use ugrs::misdp::{Approach, MisdpProblem, MisdpSolver};
use ugrs::sdp::{solve as sdp_solve, SdpOptions, SdpStatus};
use ugrs::ug::ParallelOptions;

/// Exact optimum by enumerating all integer assignments and solving the
/// continuous SDP in the remaining variables (here: all-integer or
/// integer + one continuous variable).
fn brute_force(p: &MisdpProblem) -> Option<f64> {
    let int_vars: Vec<usize> = (0..p.m).filter(|&i| p.integer[i]).collect();
    let k = int_vars.len();
    assert!(k <= 16);
    // All integer variables must be binary for this oracle.
    for &i in &int_vars {
        assert_eq!((p.lb[i], p.ub[i]), (0.0, 1.0), "oracle needs binaries");
    }
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << k) {
        let mut lb = p.lb.clone();
        let mut ub = p.ub.clone();
        for (j, &i) in int_vars.iter().enumerate() {
            let v = if mask >> j & 1 == 1 { 1.0 } else { 0.0 };
            lb[i] = v;
            ub[i] = v;
        }
        let sdp = p.sdp_relaxation(&lb, &ub);
        let res = sdp_solve(&sdp, &SdpOptions::default());
        if res.status == SdpStatus::Optimal {
            let obj = res.obj;
            if best.is_none_or(|b| obj > b) {
                best = Some(obj);
            }
        }
    }
    best
}

fn check(p: MisdpProblem, tol: f64) {
    let expected = brute_force(&p).expect("oracle must find a feasible assignment");
    for approach in [Approach::Sdp, Approach::Lp] {
        let res = MisdpSolver::new(p.clone(), approach, ugrs_cip::Settings::default()).solve();
        let obj = res.best_obj.unwrap_or(f64::NEG_INFINITY);
        assert!(
            (obj - expected).abs() < tol,
            "{:?} on {}: {obj} vs oracle {expected}",
            approach,
            p.name
        );
        assert!(p.is_feasible(res.y.as_ref().unwrap(), 1e-4));
    }
    let par = ug_solve_misdp(&p, ParallelOptions { num_solvers: 2, ..Default::default() });
    assert!(par.solved, "{}", p.name);
    let pobj = par.best_obj.unwrap();
    assert!((pobj - expected).abs() < tol, "parallel {pobj} vs oracle {expected}");
}

#[test]
fn ttd_small_exact() {
    check(truss_topology(3, 6, 11), 1e-3);
}

#[test]
fn cls_small_exact() {
    check(cardinality_ls(5, 2, 12), 1e-3);
}

#[test]
fn mkp_small_exact() {
    check(min_k_partitioning(4, 2, 13), 1e-3);
}

#[test]
fn racing_settings_all_reach_optimum() {
    use ugrs::misdp::{decode_settings, racing_settings};
    let p = truss_topology(3, 6, 14);
    let expected = brute_force(&p).unwrap();
    for s in racing_settings(4) {
        let (approach, cip) = decode_settings(&s);
        let res = MisdpSolver::new(p.clone(), approach, cip).solve();
        let obj = res.best_obj.unwrap();
        assert!((obj - expected).abs() < 1e-3, "settings {}: {obj} vs {expected}", s.name);
    }
}
