//! Acceptance tests of the instance zoo (ISSUE 7): parse → solve →
//! reference-optimum e2e for all three instance families, one of them
//! served through a real `ugd-server` via `ugd submit --file`, the
//! counted-LoC assertion on the max-cut glue, and the checksum
//! provenance trail (spec → ledger record → telemetry journal).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;
use ugrs::glue::{ug_solve_maxcut, ug_solve_misdp, ug_solve_stp, SolveClient, SolveServer};
use ugrs::instances::gen::{
    maxcut_complete, maxcut_ring, misdp_diag_box, stp_grid_corners, stp_hypercube_antipodal,
    stp_star,
};
use ugrs::instances::{cbf, file_checksum, maxcut, stp};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::{ParallelOptions, ProcessCommConfig, ServerConfig};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_ugd-worker");
const UGD_BIN: &str = env!("CARGO_BIN_EXE_ugd");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ugrs-instances-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn par(n: usize) -> ParallelOptions {
    ParallelOptions { num_solvers: n, ..Default::default() }
}

/// STP: three generated families, each written to a real `.stp` file,
/// re-read through the *strict* parser, solved under UG, and checked
/// against the generator's reference optimum.
#[test]
fn stp_files_solve_to_reference_optima() {
    let dir = tmp_dir("stp");
    for (inst, reference) in [stp_star(4), stp_hypercube_antipodal(3), stp_grid_corners(3, 3)] {
        let reference = reference.expect("generator must know the optimum");
        let path = dir.join(format!("{}.stp", inst.name));
        std::fs::write(&path, inst.write()).expect("write instance");
        let parsed = stp::read_stp(&path).expect("strict parse");
        assert_eq!(parsed, inst, "file round-trip must be lossless");
        let res = ug_solve_stp(&parsed.to_graph(), &ReduceParams::default(), par(2));
        assert!(res.solved, "{} must solve", inst.name);
        let (_, cost) = res.tree.expect("a tree");
        assert!(
            (cost - reference).abs() < 1e-6,
            "{}: solved to {cost}, reference {reference}",
            inst.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// MISDP: the diag-box family through the CBF file format.
#[test]
fn cbf_file_solves_to_reference_optimum() {
    let dir = tmp_dir("cbf");
    let (problem, reference) = misdp_diag_box(2);
    let reference = reference.unwrap();
    let path = dir.join("diagbox2.cbf");
    std::fs::write(&path, cbf::write_cbf(&problem)).expect("write instance");
    let parsed = cbf::read_cbf(&path).expect("strict parse");
    assert!(cbf::problems_equal(&parsed, &problem), "file round-trip must be lossless");
    let res = ug_solve_misdp(&parsed, par(2));
    assert!(res.solved);
    let obj = res.best_obj.expect("an incumbent");
    assert!((obj - reference).abs() < 1e-4, "solved to {obj}, reference {reference}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Max-cut: ring and complete-graph instances through the `.mc` edge
/// list format, solved via the MISDP relaxation; the recovered
/// partition must actually achieve the optimal cut.
#[test]
fn mc_files_solve_to_reference_optima() {
    let dir = tmp_dir("mc");
    for (inst, reference) in [maxcut_ring(5), maxcut_complete(4)] {
        let reference = reference.unwrap();
        let path = dir.join(format!("{}.mc", inst.name));
        std::fs::write(&path, inst.write()).expect("write instance");
        let parsed = maxcut::read_mc(&path).expect("strict parse");
        assert_eq!(parsed, inst, "file round-trip must be lossless");
        let res = ug_solve_maxcut(&parsed, par(2));
        assert!(res.solved, "{} must solve", inst.name);
        let cut = res.best_cut.expect("a cut");
        assert!(
            (cut - reference).abs() < 1e-6,
            "{}: solved to {cut}, reference {reference}",
            inst.name
        );
        let side = res.partition.expect("a partition");
        assert!(
            (inst.cut_value(&side) - reference).abs() < 1e-6,
            "{}: recovered partition must achieve the optimum",
            inst.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The paper's headline claim, extended to the third application: the
/// whole max-cut glue file stays under 200 counted lines (non-blank,
/// non-comment), alongside stp_plugins.cpp (173) and misdp_plugins.cpp
/// (106).
#[test]
fn maxcut_glue_stays_under_200_loc() {
    let src = include_str!("../crates/glue/src/apps/maxcut.rs");
    let loc = src
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//")
        })
        .count();
    assert!(loc < 200, "max-cut glue is {loc} counted LoC; the paper's budget is < 200");
}

/// The full service path: a generated `.stp` file submitted to a real
/// `ugd-server` (worker-pool processes) with `ugd submit --file`. The
/// job must solve to the reference optimum, the per-job telemetry
/// journal must open with a `JobMeta` record carrying the family and
/// the file checksum, and the server metrics must count the job under
/// `family="stp"`.
#[test]
fn served_from_file_with_checksum_provenance() {
    let dir = tmp_dir("served");
    let journal_dir = dir.join("journals");
    let (inst, reference) = stp_star(4);
    let reference = reference.unwrap();
    let path = dir.join("star4.stp");
    std::fs::write(&path, inst.write()).expect("write instance");
    let checksum = file_checksum(&path).expect("checksum");

    let config = ServerConfig {
        worker_command: vec![WORKER_BIN.to_string()],
        pool_size: 2,
        max_concurrent_jobs: 1,
        comm: ProcessCommConfig {
            handshake_timeout: Duration::from_secs(10),
            liveness_timeout: Duration::from_secs(2),
            heartbeat_interval: Duration::from_millis(100),
            reconnect_deadline: Duration::from_millis(500),
            chaos: None,
        },
        drain_timeout: Duration::from_secs(5),
        journal_dir: Some(journal_dir.clone()),
        ..Default::default()
    };
    let server = SolveServer::start(config).expect("server start");
    let addr = server.client_addr().to_string();

    let out = Command::new(UGD_BIN)
        .args(["submit", "--file"])
        .arg(&path)
        .args(["--addr", &addr, "--solvers", "2", "--name", "star4"])
        .output()
        .expect("run ugd submit --file");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "ugd submit --file failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("finished: Solved"), "job must solve: {stdout}");
    assert!(
        stdout.contains(&format!("obj={reference:.6}")),
        "external objective must be the reference optimum {reference}: {stdout}"
    );

    // Provenance: the journal's head record pins family + checksum.
    let journal = std::fs::read_dir(&journal_dir)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .expect("a per-job journal file");
    let head = std::fs::read_to_string(&journal)
        .expect("read journal")
        .lines()
        .next()
        .expect("journal must not be empty")
        .to_string();
    assert!(head.contains("JobMeta"), "journal head must be the JobMeta record: {head}");
    assert!(head.contains("\"stp\""), "JobMeta must carry the family: {head}");
    assert!(head.contains(&checksum), "JobMeta must carry the file checksum: {head}");

    // Observability: the submit counted under its family label.
    let mut client = SolveClient::connect(&addr).expect("client connect");
    let metrics = client.metrics().expect("metrics").text;
    let line = metrics
        .lines()
        .find(|l| l.starts_with("ugrs_server_jobs_submitted_total") && l.contains("family=\"stp\""))
        .expect("family-labeled submitted counter");
    assert!(line.ends_with(" 1"), "exactly one stp submit: {line}");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash-safety provenance: with a state dir, the WALed ledger record
/// of a submitted job carries the instance checksum (the job is held
/// queued by an empty worker pool so the record is observable, then
/// cancelled).
#[test]
fn ledger_record_carries_instance_checksum() {
    let dir = tmp_dir("ledger");
    let (inst, _) = stp_star(4);
    let path = dir.join("star4.stp");
    std::fs::write(&path, inst.write()).expect("write instance");
    let checksum = file_checksum(&path).expect("checksum");

    // No worker pool: the job stays queued, its WAL record on disk.
    let config = ServerConfig {
        worker_command: Vec::new(),
        pool_size: 0,
        max_concurrent_jobs: 1,
        state_dir: Some(dir.join("state")),
        drain_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let server = SolveServer::start(config).expect("server start");
    let addr = server.client_addr().to_string();

    let graph = stp::read_stp(&path).expect("parse").to_graph();
    let mut spec = ugrs::glue::stp_job("star4", &graph, &ReduceParams::default());
    spec.checksum = Some(checksum.clone());
    let mut client = SolveClient::connect(&addr).expect("client connect");
    let job = client.submit(spec).expect("submit");

    let mut found = false;
    for entry in walk(&dir.join("state")) {
        if let Ok(text) = std::fs::read_to_string(&entry) {
            if text.contains(&checksum) && text.contains("\"stp\"") {
                found = true;
                break;
            }
        }
    }
    assert!(found, "some ledger record must carry the checksum and family");

    assert!(client.cancel(job).expect("cancel"));
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

fn walk(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                out.push(p);
            }
        }
    }
    out
}
