//! Fleet-tier e2e: an in-process `ugd-gateway` over three real
//! `ugd-server` subprocesses under sustained concurrent load, with one
//! shard SIGKILLed mid-run.
//!
//! The acceptance gate of the fleet tier, all in one scenario:
//! * over 200 mixed STP/MISDP jobs from concurrent submitters, every one
//!   reaching its reference optimum even though a shard dies while
//!   running a third of them;
//! * the dead shard's in-flight jobs resume from its checkpoints on a
//!   surviving peer as run `1.k` of their restart chain (Table 2
//!   semantics at fleet scope);
//! * a greedy tenant is throttled by its token bucket while everyone
//!   else's submissions keep flowing;
//! * the p99 submit-to-ack latency stays under the SLO — admission plus
//!   the write-ahead ledger must not serialize the fleet.
//!
//! A second, deterministic scenario pins down work stealing: a slow
//! shard's queue is drained by an idle fast one.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ugrs::glue::{misdp_job, stp_job, JobInstance, SolveClient, SolveGateway, SolveJobSpec};
use ugrs::misdp::gen::cardinality_ls;
use ugrs::steiner::gen::{bipartite, hypercube_sparse_terminals, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::gateway::{GatewayConfig, ShardSpec, TenantQuota};
use ugrs::ug::{JobEventKind, JobState, ParallelOptions, SubmitOutcome};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_ugd-server");
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_ugd-worker");

/// A shard subprocess. Killed on drop so a failing assertion never
/// leaks listeners or pool workers.
struct ShardProc {
    child: Child,
    addr: String,
    state_dir: PathBuf,
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_shard(state_dir: &Path, pool: usize, max_jobs: usize, handicap_ms: u64) -> ShardProc {
    std::fs::create_dir_all(state_dir).unwrap();
    let mut child = Command::new(SERVER_BIN)
        .args([
            "--client-addr",
            "127.0.0.1:0",
            "--worker-addr",
            "127.0.0.1:0",
            "--pool-size",
            &pool.to_string(),
            "--max-jobs",
            &max_jobs.to_string(),
            "--worker",
            WORKER_BIN,
            "--handicap-ms",
            &handicap_ms.to_string(),
            "--status-interval",
            "0.05",
            "--checkpoint-interval",
            "0.05",
            "--state-dir",
            &state_dir.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ugd-server shard");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut stdout = std::io::BufReader::new(stdout);
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read shard banner");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    ShardProc { child, addr, state_dir: state_dir.to_path_buf() }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ugrs-fleet-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// One watched job's outcome.
#[derive(Debug)]
struct Outcome {
    gid: u64,
    instance: JobInstance,
    expected: f64,
    state: JobState,
    obj: Option<f64>,
    run_index: u32,
    recovered: Option<u32>,
}

#[test]
fn fleet_survives_shard_kill_under_sustained_load() {
    // ---- reference optima (threaded back-end, computed once) --------
    let stp_seeds = [42u64, 1337, 7, 99];
    let stp_graphs: Vec<_> =
        stp_seeds.iter().map(|&s| bipartite(5, 9, 3, CostScheme::Perturbed, s)).collect();
    let stp_expected: Vec<f64> = stp_graphs
        .iter()
        .map(|g| {
            let r = ugrs::glue::ug_solve_stp(
                g,
                &ReduceParams::default(),
                ParallelOptions { num_solvers: 2, ..Default::default() },
            );
            assert!(r.solved, "threaded STP reference must solve");
            r.tree.expect("reference tree").1
        })
        .collect();
    // A branching instance: its checkpoints hold open primitive nodes,
    // so kill-recovery has real work to resume (the bipartite family's
    // root closes in one piece).
    let heavy = hypercube_sparse_terminals(6, 4, CostScheme::Perturbed, 1);
    let heavy_expected = {
        let r = ugrs::glue::ug_solve_stp(
            &heavy,
            &ReduceParams::default(),
            ParallelOptions { num_solvers: 2, ..Default::default() },
        );
        assert!(r.solved);
        r.tree.expect("reference tree").1
    };
    let mp = cardinality_ls(5, 2, 12);
    let misdp_ref =
        ugrs::glue::ug_solve_misdp(&mp, ParallelOptions { num_solvers: 2, ..Default::default() });
    assert!(misdp_ref.solved);
    let misdp_expected = misdp_ref.best_obj.expect("threaded MISDP reference must solve");

    // ---- the fleet: 3 shard subprocesses + in-process gateway -------
    let root = scratch_dir("kill");
    // CI points this somewhere uploadable so the gateway's decision
    // journal survives the run as an artifact; locally it lives (and
    // dies) with the scratch dir.
    let journal_dir = std::env::var_os("UGRS_FLEET_JOURNAL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("journal"));
    let shards: Vec<ShardProc> =
        (0..3).map(|i| spawn_shard(&root.join(format!("shard-{i}")), 4, 4, 150)).collect();
    let config = GatewayConfig {
        shards: shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSpec {
                name: format!("shard-{i}"),
                addr: s.addr.clone(),
                state_dir: Some(s.state_dir.clone()),
            })
            .collect(),
        health_interval: Duration::from_millis(100),
        shard_liveness: Duration::from_millis(600),
        probe_timeout: Duration::from_millis(800),
        steal_margin: 2,
        max_inflight: 1024,
        default_quota: None,
        tenant_quotas: [("greedy".to_string(), TenantQuota { rate: 1.0, burst: 3.0 })]
            .into_iter()
            .collect(),
        state_dir: Some(root.join("gateway")),
        journal_dir: Some(journal_dir.clone()),
        ..GatewayConfig::default()
    };
    let gateway = SolveGateway::start(config).expect("gateway start");
    let gw_addr = gateway.client_addr().to_string();

    // ---- sustained load: 16 submitters, >200 mixed jobs -------------
    // Worklist entries: (spec, expected external optimum).
    let mut work: Vec<(SolveJobSpec, f64)> = Vec::new();
    for i in 0..192usize {
        let k = i % stp_graphs.len();
        let mut spec = stp_job(format!("stp-{i}"), &stp_graphs[k], &ReduceParams::default());
        spec.num_solvers = 1;
        work.push((spec, stp_expected[k]));
    }
    for i in 0..8usize {
        let mut spec = stp_job(format!("heavy-{i}"), &heavy, &ReduceParams::default());
        spec.num_solvers = 1;
        work.push((spec, heavy_expected));
    }
    for i in 0..8usize {
        let mut spec = misdp_job(format!("cls-{i}"), &mp);
        spec.num_solvers = 1;
        work.push((spec, misdp_expected));
    }
    assert!(work.len() >= 200, "load must exceed 200 jobs, got {}", work.len());

    let work = Arc::new(Mutex::new(work));
    let accepted: Arc<Mutex<Vec<(u64, JobInstance, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let submitters: Vec<_> = (0..16)
        .map(|_| {
            let (work, accepted, latencies, addr) =
                (work.clone(), accepted.clone(), latencies.clone(), gw_addr.clone());
            std::thread::spawn(move || {
                let mut client = SolveClient::connect(&addr).expect("submitter connect");
                loop {
                    let Some((spec, expected)) = work.lock().unwrap().pop() else { return };
                    let instance = spec.instance.clone();
                    let t0 = Instant::now();
                    let outcome = client.try_submit(spec).expect("submit rpc");
                    let dt = t0.elapsed();
                    match outcome {
                        SubmitOutcome::Accepted(gid) => {
                            latencies.lock().unwrap().push(dt);
                            accepted.lock().unwrap().push((gid, instance, expected));
                        }
                        SubmitOutcome::Rejected(reason) => {
                            panic!("unmetered tenant rejected: {reason}")
                        }
                    }
                }
            })
        })
        .collect();

    // ---- the greedy tenant hits its token bucket --------------------
    // 10 rapid submissions against burst 3 @ 1/s: at most 3-4 can pass.
    let greedy = {
        let (accepted, addr, g) = (accepted.clone(), gw_addr.clone(), stp_graphs[0].clone());
        let expected = stp_expected[0];
        std::thread::spawn(move || {
            let mut client = SolveClient::connect(&addr).expect("greedy connect");
            let mut rejected = 0usize;
            for i in 0..10 {
                let mut spec = stp_job(format!("greedy-{i}"), &g, &ReduceParams::default());
                spec.num_solvers = 1;
                spec.tenant = Some("greedy".into());
                let instance = spec.instance.clone();
                match client.try_submit(spec).expect("greedy submit rpc") {
                    SubmitOutcome::Accepted(gid) => {
                        accepted.lock().unwrap().push((gid, instance, expected))
                    }
                    SubmitOutcome::Rejected(reason) => {
                        assert_eq!(reason, "quota", "greedy refusals must cite the quota");
                        rejected += 1;
                    }
                }
            }
            rejected
        })
    };
    for t in submitters {
        t.join().expect("submitter thread");
    }
    let quota_rejections = greedy.join().expect("greedy thread");
    assert!(
        quota_rejections >= 6,
        "10 instant submits against burst 3 must mostly bounce, got {quota_rejections}"
    );

    // ---- kill shard 0 while it is mid-run ---------------------------
    let mut fleet_client = SolveClient::connect(&gw_addr).expect("fleet client");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let fleet = fleet_client.fleet().expect("fleet rpc");
        let s0 = &fleet.shards[0];
        if s0.jobs_running >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "shard 0 never got busy: {fleet:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // 400 ms ≈ 8 checkpoint intervals: the running jobs have durable
    // progress for failover to replay.
    std::thread::sleep(Duration::from_millis(400));
    let victim = &shards[0];
    victim_kill(victim);

    // ---- every accepted job must still terminate correctly ----------
    let accepted = Arc::try_unwrap(accepted).unwrap().into_inner().unwrap();
    let total = accepted.len();
    assert!(total >= 200 + 3, "accepted {total} jobs — expected the full load");
    let queue = Arc::new(Mutex::new(accepted));
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    let watchers: Vec<_> = (0..16)
        .map(|_| {
            let (queue, outcomes, addr) = (queue.clone(), outcomes.clone(), gw_addr.clone());
            std::thread::spawn(move || {
                let mut client = SolveClient::connect(&addr).expect("watcher connect");
                loop {
                    let Some((gid, instance, expected)) = queue.lock().unwrap().pop() else {
                        return;
                    };
                    let mut recovered = None;
                    let done = client
                        .watch(gid, 0, |ev| {
                            if let JobEventKind::Recovered { run_index, .. } = ev.kind {
                                recovered = Some(run_index);
                            }
                        })
                        .expect("watch to terminal");
                    let JobEventKind::Finished { state, obj, run_index, .. } = done.kind else {
                        panic!("watch returned a non-terminal event")
                    };
                    outcomes.lock().unwrap().push(Outcome {
                        gid,
                        instance,
                        expected,
                        state,
                        obj,
                        run_index,
                        recovered,
                    });
                }
            })
        })
        .collect();
    for t in watchers {
        t.join().expect("watcher thread");
    }
    let outcomes = Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap();
    assert_eq!(outcomes.len(), total, "every accepted job must reach a terminal event");
    for o in &outcomes {
        assert_eq!(
            o.state,
            JobState::Solved,
            "job {} ended {:?} (run 1.{})",
            o.gid,
            o.state,
            o.run_index
        );
        let internal = o.obj.expect("solved job has an objective");
        let external = o.instance.external_objective(internal);
        assert!(
            (external - o.expected).abs() < 1e-6,
            "job {} solved to {external}, reference {}",
            o.gid,
            o.expected
        );
    }

    // The fleet-scope Table-2 property: at least one job of the dead
    // shard resumed as run 1.k (k >= 2) on a peer — and solved above.
    let resumed: Vec<&Outcome> = outcomes.iter().filter(|o| o.recovered.is_some()).collect();
    assert!(
        !resumed.is_empty(),
        "no job resumed from the killed shard's checkpoints (failover replay missing)"
    );
    for o in &resumed {
        assert!(
            o.recovered.unwrap() >= 2 && o.run_index >= 2,
            "job {} announced recovery but run index is {}",
            o.gid,
            o.run_index
        );
    }

    // Fleet counters: the death was noticed and handled.
    let fleet = fleet_client.fleet().expect("fleet rpc");
    assert!(
        fleet.failed_over_total >= 1,
        "failover counter must record the shard death: {fleet:?}"
    );
    assert!(!fleet.shards[0].healthy, "the killed shard must be marked dead");
    assert_eq!(
        fleet.rejected_total, quota_rejections as u64,
        "rejection counter must match the greedy tenant's bounces"
    );
    assert_eq!(fleet.inflight, 0, "no job may linger after all terminals");

    // ---- p99 submit-to-ack SLO --------------------------------------
    // The 250 ms SLO is a release-build claim (CI's fleet-smoke job and
    // `table_fleet` both assert it under --release); an unoptimized
    // build only gets a sanity bound so `cargo test` still catches a
    // submit path that serializes the fleet outright.
    let slo = if cfg!(debug_assertions) {
        Duration::from_millis(2000)
    } else {
        Duration::from_millis(250)
    };
    let mut lat = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    lat.sort();
    let p99 = percentile(&lat, 0.99);
    assert!(
        p99 < slo,
        "p99 submit-to-ack {p99:?} breaches the {slo:?} SLO (p50 {:?})",
        percentile(&lat, 0.50)
    );

    // The journal — CI's artifact — must carry the whole story.
    let journal =
        std::fs::read_to_string(journal_dir.join("gateway.jsonl")).expect("gateway journal exists");
    for ev in [
        "\"ev\":\"submit\"",
        "\"ev\":\"reject\"",
        "\"ev\":\"shard_dead\"",
        "\"ev\":\"failover\"",
        "\"ev\":\"finish\"",
    ] {
        assert!(journal.contains(ev), "journal is missing {ev} lines");
    }

    gateway.shutdown_and_join();
    drop(shards);
    std::fs::remove_dir_all(&root).ok();
}

fn victim_kill(shard: &ShardProc) {
    // SIGKILL via the pid so the ShardProc Drop later is a no-op wait.
    let _ = Command::new("kill").args(["-9", &shard.child.id().to_string()]).status();
}

/// Deterministic work stealing: a slow shard accumulates queue while a
/// fast one idles; the gateway must migrate queued jobs over and every
/// job must still solve to the optimum on whichever shard ran it.
#[test]
fn work_stealing_drains_a_slow_shard_onto_an_idle_one() {
    let g = bipartite(5, 9, 3, CostScheme::Perturbed, 42);
    let expected = {
        let r = ugrs::glue::ug_solve_stp(
            &g,
            &ReduceParams::default(),
            ParallelOptions { num_solvers: 2, ..Default::default() },
        );
        assert!(r.solved);
        r.tree.expect("reference tree").1
    };
    let root = scratch_dir("steal");
    // One worker, one job slot each: queued jobs stay visibly queued.
    let slow = spawn_shard(&root.join("slow"), 1, 1, 1200);
    let fast = spawn_shard(&root.join("fast"), 1, 1, 0);
    let config = GatewayConfig {
        shards: vec![
            ShardSpec {
                name: "slow".into(),
                addr: slow.addr.clone(),
                state_dir: Some(slow.state_dir.clone()),
            },
            ShardSpec {
                name: "fast".into(),
                addr: fast.addr.clone(),
                state_dir: Some(fast.state_dir.clone()),
            },
        ],
        health_interval: Duration::from_millis(100),
        shard_liveness: Duration::from_millis(600),
        steal_margin: 1,
        ..GatewayConfig::default()
    };
    let gateway = SolveGateway::start(config).expect("gateway start");
    let addr = gateway.client_addr().to_string();
    let mut client = SolveClient::connect(&addr).expect("client");
    let jobs: Vec<u64> = (0..16)
        .map(|i| {
            let mut spec = stp_job(format!("steal-{i}"), &g, &ReduceParams::default());
            spec.num_solvers = 1;
            client.submit(spec).expect("submit")
        })
        .collect();
    let routed_to_fast = AtomicUsize::new(0);
    for &job in &jobs {
        let mut started = 0usize;
        let done = client
            .watch(job, 0, |ev| {
                if let JobEventKind::Routed { shard } = &ev.kind {
                    if shard == "fast" {
                        routed_to_fast.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if matches!(ev.kind, JobEventKind::Started { .. }) {
                    started += 1;
                }
            })
            .expect("watch");
        // A steal moves only queued jobs, so each job runs exactly once
        // — a duplicated Started would mean a tracker re-delivered a
        // shard's log after a reconnect instead of resuming its cursor.
        assert_eq!(started, 1, "job {job} must announce exactly one Started event");
        match done.kind {
            JobEventKind::Finished { state, obj, .. } => {
                assert_eq!(state, JobState::Solved, "job {job} must solve");
                let external = ugrs::glue::JobInstance::Stp { graph: g.clone() }
                    .external_objective(obj.expect("objective"));
                assert!((external - expected).abs() < 1e-6, "job {job}: {external} != {expected}");
            }
            other => panic!("unexpected terminal {other:?}"),
        }
    }
    let fleet = client.fleet().expect("fleet rpc");
    assert!(
        fleet.stolen_total >= 1,
        "an idle fast shard next to a deep slow queue must trigger stealing: {fleet:?}"
    );
    // A stolen job is Routed twice — its event stream shows the move.
    assert!(
        routed_to_fast.load(Ordering::Relaxed) as u64 >= fleet.stolen_total,
        "stolen jobs must re-announce their route"
    );
    gateway.shutdown_and_join();
    drop((slow, fast));
    std::fs::remove_dir_all(&root).ok();
}

/// A gateway restart must replay its own write-ahead ledger: jobs
/// acknowledged before the restart re-enter dispatch under their
/// original gateway ids, fresh ids are seeded past every recovered one
/// (no record is overwritten), and every recovered job still runs to
/// its reference optimum once a shard is reachable.
#[test]
fn gateway_restart_recovers_acknowledged_jobs_from_its_ledger() {
    let g = bipartite(5, 9, 3, CostScheme::Perturbed, 42);
    let expected = {
        let r = ugrs::glue::ug_solve_stp(
            &g,
            &ReduceParams::default(),
            ParallelOptions { num_solvers: 2, ..Default::default() },
        );
        assert!(r.solved);
        r.tree.expect("reference tree").1
    };
    let root = scratch_dir("gw-restart");
    let gw_state = root.join("gateway");

    // ---- incarnation 1: the only shard is not up yet -----------------
    // Port 1 answers nothing, so accepted jobs are durable in the
    // gateway's ledger but never reach a shard — exactly the window a
    // crash-mid-steal or crash-before-dispatch leaves behind.
    let config = GatewayConfig {
        shards: vec![ShardSpec::new("s0", "127.0.0.1:1")],
        probe_timeout: Duration::from_millis(200),
        state_dir: Some(gw_state.clone()),
        ..GatewayConfig::default()
    };
    let first = SolveGateway::start(config).expect("gateway incarnation 1");
    assert_eq!(first.recovered_jobs(), (0, 0), "a fresh ledger recovers nothing");
    let addr = first.client_addr().to_string();
    let mut client = SolveClient::connect(&addr).expect("client");
    let gids: Vec<u64> = (0..4)
        .map(|i| {
            let mut spec = stp_job(format!("restart-{i}"), &g, &ReduceParams::default());
            spec.num_solvers = 1;
            client.submit(spec).expect("submit against shardless gateway")
        })
        .collect();
    drop(client);
    // shutdown (not a graceful drain): unfinished records stay owed.
    first.shutdown_and_join();

    // ---- incarnation 2: same state dir, now with a live shard --------
    let shard = spawn_shard(&root.join("shard"), 2, 2, 0);
    let config = GatewayConfig {
        shards: vec![ShardSpec {
            name: "s0".into(),
            addr: shard.addr.clone(),
            state_dir: Some(shard.state_dir.clone()),
        }],
        state_dir: Some(gw_state),
        ..GatewayConfig::default()
    };
    let second = SolveGateway::start(config).expect("gateway incarnation 2");
    assert_eq!(
        second.recovered_jobs(),
        (gids.len(), 0),
        "every unretired record must come back (none had a checkpoint)"
    );
    let addr = second.client_addr().to_string();
    let mut client = SolveClient::connect(&addr).expect("client 2");
    // Fresh ids are seeded past the recovered ones — a new submit must
    // not overwrite a recovered job's ledger record.
    let fresh = {
        let mut spec = stp_job("fresh", &g, &ReduceParams::default());
        spec.num_solvers = 1;
        client.submit(spec).expect("fresh submit")
    };
    let max_recovered = *gids.iter().max().unwrap();
    assert!(
        fresh > max_recovered,
        "fresh gid {fresh} must exceed every recovered gid (max {max_recovered})"
    );
    for gid in gids.iter().copied().chain([fresh]) {
        let done = client.watch(gid, 0, |_| {}).expect("watch to terminal");
        match done.kind {
            JobEventKind::Finished { state, obj, .. } => {
                assert_eq!(state, JobState::Solved, "job {gid} must solve after the restart");
                let external = ugrs::glue::JobInstance::Stp { graph: g.clone() }
                    .external_objective(obj.expect("objective"));
                assert!((external - expected).abs() < 1e-6, "job {gid}: {external} != {expected}");
            }
            other => panic!("unexpected terminal {other:?}"),
        }
    }
    // All terminal: the second incarnation's ledger owes nothing more.
    let fleet = client.fleet().expect("fleet rpc");
    assert_eq!(fleet.inflight, 0, "recovered jobs must retire their ledger records");
    second.shutdown_and_join();
    drop(shard);
    std::fs::remove_dir_all(&root).ok();
}
