//! Acceptance tests of the primal-heuristic plugin engine (ISSUE 7):
//! the Uchoa–Werneck key-vertex local search, registered through the
//! generic [`PrimalHeuristic`] engine, must find incumbents *earlier*
//! than the identical solver without it — and those incumbents must be
//! broadcast through UG's incumbent exchange when run in parallel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ugrs::cip::{ControlHooks, NodeDesc, Solver};
use ugrs::glue::{CipUserPlugins, UgCipSolver};
use ugrs::steiner::gen::{hypercube, CostScheme};
use ugrs::steiner::graph::Graph;
use ugrs::steiner::plugins::{
    build_model, register_plugins_with_hits, DirectedCutHandler, TmHeuristic, VertexBranching,
};
use ugrs::ug::{solve_parallel, Journal, ParallelOptions, TelemetrySink};

/// Records every incumbent and aborts once the known optimum is
/// reached, so `stats.nodes` measures *time-to-optimum* in nodes.
struct StopAtTarget {
    target: f64,
    found: bool,
    incumbents: Vec<f64>,
}

impl ControlHooks for StopAtTarget {
    fn should_abort(&mut self) -> bool {
        self.found
    }

    fn on_incumbent(&mut self, obj: f64, _x: &[f64]) {
        self.incumbents.push(obj);
        if obj <= self.target + 1e-6 {
            self.found = true;
        }
    }
}

/// Solves `g` to the known optimum `target`, with or without the
/// key-vertex heuristic plugged in; everything else — constraint
/// handler, TM construction heuristic, branching rule, settings — is
/// identical. Returns (nodes to reach the optimum, key-vertex hits,
/// incumbent trace).
fn solve_to(g: &Graph, with_keyvertex: bool, target: f64) -> (u64, u64, Vec<f64>) {
    let (model, data) = build_model(g);
    let hits = Arc::new(AtomicU64::new(0));
    let mut s = Solver::new(model, ugrs::cip::Settings::default());
    if with_keyvertex {
        register_plugins_with_hits(&mut s, data, true, Some(hits.clone()));
    } else {
        s.add_conshdlr(Box::new(DirectedCutHandler::new(data.clone(), true)));
        s.add_heuristic(Box::new(TmHeuristic { data: data.clone() }));
        s.add_branchrule(Box::new(VertexBranching { data }));
    }
    let mut hooks = StopAtTarget { target, found: false, incumbents: Vec::new() };
    let res = s.solve(&mut hooks);
    (res.stats.nodes, hits.load(Ordering::Relaxed), hooks.incumbents)
}

/// Under identical seeds and settings, the key-vertex local search
/// reaches the proven optimum in strictly fewer B&B nodes than the
/// baseline plugin set — on these instances it improves the root
/// incumbent to optimal before branching even starts.
#[test]
fn keyvertex_reaches_optimum_earlier_than_baseline() {
    for seed in [3u64, 8, 10] {
        let g = hypercube(4, CostScheme::Perturbed, seed);

        // Establish the true optimum first with a full solve.
        let (model, data) = build_model(&g);
        let mut full = Solver::new(model, ugrs::cip::Settings::default());
        register_plugins_with_hits(&mut full, data, true, None);
        let proof = full.solve(&mut ugrs::cip::NoHooks);
        let optimum = proof
            .best_obj
            .unwrap_or_else(|| panic!("seed {seed}: full solve must find the optimum"));

        let (nodes_kv, hits_kv, trace_kv) = solve_to(&g, true, optimum);
        let (nodes_base, hits_base, trace_base) = solve_to(&g, false, optimum);

        assert!(hits_kv >= 1, "seed {seed}: key-vertex search must improve at least once");
        assert_eq!(hits_base, 0, "seed {seed}: baseline has no key-vertex plugin");
        assert!(
            nodes_kv < nodes_base,
            "seed {seed}: key-vertex must reach the optimum earlier \
             ({nodes_kv} nodes vs baseline {nodes_base}); traces {trace_kv:?} vs {trace_base:?}"
        );
    }
}

/// An STP plugin set whose key-vertex hit counter is shared across all
/// ParaSolvers — the parallel analog of [`solve_to`]'s `with_keyvertex`.
struct KvPlugins {
    graph: Arc<Graph>,
    hits: Arc<AtomicU64>,
}

impl CipUserPlugins for KvPlugins {
    fn name(&self) -> &str {
        "ug[SteinerJack+kv,*]"
    }

    fn create_solver(&self, settings: &ugrs::ug::SolverSettings) -> Solver {
        let (model, data) = build_model(&self.graph);
        let mut solver = Solver::new(model, ugrs::glue::base::decode_generic(settings));
        register_plugins_with_hits(&mut solver, data, true, Some(self.hits.clone()));
        solver
    }
}

/// Run under UG with two ParaSolvers: a heuristic-found incumbent must
/// actually travel through the incumbent exchange (observable both in
/// `incumbents_seen` and as `Incumbent` events in the run journal).
#[test]
fn keyvertex_incumbent_broadcast_under_ug() {
    let dir = std::env::temp_dir().join(format!("ugrs-heur-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let journal_path = dir.join("run.jsonl");

    let graph = Arc::new(hypercube(4, CostScheme::Perturbed, 3));
    let hits = Arc::new(AtomicU64::new(0));
    let plugins = Arc::new(KvPlugins { graph, hits: hits.clone() });
    let journal = Arc::new(Journal::create(&journal_path).expect("journal"));
    let options = ParallelOptions {
        num_solvers: 2,
        telemetry: TelemetrySink::with_journal(journal.clone()),
        ..Default::default()
    };
    let res = solve_parallel(UgCipSolver::factory(plugins), NodeDesc::root(), options);

    assert!(res.solved, "the run must solve to optimality");
    assert!(hits.load(Ordering::Relaxed) >= 1, "key-vertex search must fire under UG");
    assert!(
        res.stats.incumbents_seen >= 1,
        "at least one incumbent must pass through the exchange"
    );

    journal.flush();
    let text = std::fs::read_to_string(&journal_path).expect("read journal");
    assert!(
        text.lines().any(|l| l.contains("Incumbent")),
        "the run journal must record the incumbent broadcast"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
