//! Crash-safety e2e: SIGKILL a `ugd-server` process mid-job, start a
//! fresh server on the same `--state-dir`, and require that the job is
//! recovered from its write-ahead ledger record, resumed from the last
//! checkpoint as run 1.2 of a restart chain, and still solves to the
//! optimum — with the pre-kill incumbent and node count carried over.
//!
//! The server runs as a real subprocess (not in-process like
//! `server_e2e.rs`) precisely so it can be killed with prejudice: no
//! destructors, no flushes, exactly what a power failure leaves behind.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use ugrs::glue::{stp_job, JobInstance, SolveClient};
use ugrs::steiner::gen::{hypercube_sparse_terminals, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::{JobEventKind, JobState, ParallelOptions};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_ugd-server");
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_ugd-worker");

/// A server subprocess with its parsed client address. Killed on drop
/// so a failing assertion never leaks a listener (its pool workers
/// notice the dropped connection and exit on their own).
struct ServerProc {
    child: Child,
    addr: String,
    // Kept open so the server never sees a closed stdout pipe; also
    // lets the test read the recovery banner of a restarted server.
    stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `ugd-server` on ephemeral ports against `state_dir` and
/// parses the client address from its banner line.
fn spawn_server(state_dir: &Path, handicap_ms: u64) -> ServerProc {
    let mut child = Command::new(SERVER_BIN)
        .args([
            "--client-addr",
            "127.0.0.1:0",
            "--worker-addr",
            "127.0.0.1:0",
            "--pool-size",
            "2",
            "--max-jobs",
            "1",
            "--worker",
            WORKER_BIN,
            "--handicap-ms",
            &handicap_ms.to_string(),
            "--status-interval",
            "0.05",
            "--checkpoint-interval",
            "0.05",
            "--state-dir",
            &state_dir.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ugd-server");
    // Banner: "ugd-server listening on <client> (workers: <addr>)".
    let stdout = child.stdout.take().expect("piped stdout");
    let mut stdout = std::io::BufReader::new(stdout);
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read banner");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    ServerProc { child, addr, stdout }
}

fn scratch_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ugrs-{tag}-e2e-{}", std::process::id()));
    // A stale directory from a previous failed run must not feed this
    // one a leftover ledger.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls the job's checkpoint until it shows real progress: an
/// incumbent found, at least one primitive node to resume from, and a
/// positive node count. Returns (incumbent objective, nodes_so_far) at
/// that moment. The atomic-rename discipline guarantees each read sees
/// a complete JSON document.
fn await_checkpoint_progress(path: &Path, timeout: Duration) -> (f64, u64) {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(data) = std::fs::read_to_string(path) {
            if let Ok(v) = serde_json::from_str::<serde_json::Value>(&data) {
                let primitive = v.get("queue").and_then(|q| q.as_array()).map_or(0, |a| a.len())
                    + v.get("assigned").and_then(|q| q.as_array()).map_or(0, |a| a.len());
                let nodes = v.get("nodes_so_far").and_then(|n| n.as_u64()).unwrap_or(0);
                // `incumbent` is an `Option<(Sol, f64)>`: null, or a
                // two-element [solution, objective] array.
                let incumbent = v
                    .get("incumbent")
                    .and_then(|i| i.as_array())
                    .and_then(|a| a.get(1))
                    .and_then(|o| o.as_f64());
                if let (Some(obj), true, true) = (incumbent, primitive >= 1, nodes >= 1) {
                    return (obj, nodes);
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for a checkpoint with incumbent + open primitive nodes at {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_server_midjob_then_restart_resumes_and_solves() {
    // This instance branches into several coordinator-level subproblems
    // (unlike the bipartite family, whose root the base solver closes in
    // one piece) — so mid-run there is a real window where the
    // checkpoint holds both an incumbent and open primitive nodes.
    let g = hypercube_sparse_terminals(6, 4, CostScheme::Perturbed, 1);
    let threaded = ugrs::glue::ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 2, ..Default::default() },
    );
    let expected = threaded.tree.expect("threaded reference must solve").1;

    let state_dir = scratch_state_dir("restart");
    // 500 ms per subproblem: slow enough that the job is reliably
    // mid-run with a useful checkpoint when the server dies.
    let first = spawn_server(&state_dir, 500);
    let mut client = SolveClient::connect(&first.addr).expect("client connect");
    let spec = stp_job("crash-victim", &g, &ReduceParams::default());
    let fixed_cost = match &spec.instance {
        JobInstance::Stp { graph } => graph.fixed_cost,
        other => panic!("stp_job built {other:?}"),
    };
    let job = client.submit(spec).expect("submit");
    assert_eq!(job, 0, "first job on a fresh ledger");

    // The WAL record must be durable the moment the submit returned.
    let wal = state_dir.join("jobs").join("job-0.json");
    assert!(wal.exists(), "submission must be write-ahead-logged before the ack");

    // Wait for a checkpoint proving progress, then pull the plug.
    let cp_path = state_dir.join("checkpoints").join("job-0.json");
    let (incumbent_at_kill, nodes_at_kill) =
        await_checkpoint_progress(&cp_path, Duration::from_secs(60));
    drop(client); // before the listener dies, not after
    drop(first); // SIGKILL, no graceful anything

    // Same ledger, fresh ports, smaller handicap so run 1.2 finishes
    // quickly. The recovery pass runs before the banner is printed.
    let mut second = spawn_server(&state_dir, 50);
    let mut client = SolveClient::connect(&second.addr).expect("reconnect");

    // The operator's startup banner reports what recovery found.
    let mut banner = String::new();
    second.stdout.read_line(&mut banner).expect("read recovery line");
    assert_eq!(
        banner.trim(),
        format!("recovered 1 job(s) from {} (1 resumed from checkpoint)", state_dir.display()),
        "restarted server must announce the recovery"
    );

    let mut kinds: Vec<JobEventKind<Vec<f64>>> = Vec::new();
    let done = client.watch(job, 0, |ev| kinds.push(ev.kind.clone())).expect("watch recovered job");

    // The event stream of the new server must announce the recovery.
    let recovered = kinds
        .iter()
        .find_map(|k| match k {
            JobEventKind::Recovered { run_index, nodes_so_far } => {
                Some((*run_index, *nodes_so_far))
            }
            _ => None,
        })
        .unwrap_or_else(|| panic!("no Recovered event in {kinds:?}"));
    assert_eq!(recovered.0, 2, "resumed job is run 1.2 of its chain");
    assert!(
        recovered.1 >= nodes_at_kill,
        "recovered nodes_so_far {} must cover the {} observed before the kill",
        recovered.1,
        nodes_at_kill
    );

    match done.kind {
        JobEventKind::Finished { state, obj, run_index, nodes_so_far, .. } => {
            assert_eq!(state, JobState::Solved, "recovered job must solve");
            assert_eq!(run_index, 2, "final stats carry the restart index");
            assert!(
                nodes_so_far > nodes_at_kill,
                "cumulative nodes {nodes_so_far} must exceed the first run's {nodes_at_kill}"
            );
            let internal = obj.expect("solved job has an objective");
            assert!(
                internal <= incumbent_at_kill + 1e-9,
                "pre-kill incumbent {incumbent_at_kill} was lost: final {internal}"
            );
            let cost = internal + fixed_cost;
            assert!((cost - expected).abs() < 1e-6, "optimum after restart {cost} != {expected}");
        }
        other => panic!("unexpected terminal event {other:?}"),
    }

    // `ugd status` surface: the summary reports the restart index too.
    let st = client.status().expect("status");
    let summary = st.jobs.iter().find(|j| j.job == job).expect("job in status");
    assert_eq!(summary.run_index, 2);

    // The answered job is retired from the ledger: a third start on the
    // same state dir owes nothing.
    assert!(!wal.exists(), "finished job must leave the ledger");
    assert!(!cp_path.exists(), "finished job must leave no checkpoint behind");

    // The recovery counter says how the job came back.
    let report = client.metrics().expect("metrics");
    assert!(
        report.text.contains(r#"ugrs_server_jobs_recovered_total{mode="resumed"} 1"#),
        "resumed-recovery counter missing:\n{}",
        report.text
    );

    client.shutdown_server().expect("shutdown");
    drop(client);
    let deadline = Instant::now() + Duration::from_secs(10);
    drop(second);
    assert!(Instant::now() < deadline);
    std::fs::remove_dir_all(&state_dir).ok();
}

/// Graceful drain: SIGTERM must be a *planned* handover, not a crash.
/// The server stops accepting submits, checkpoints the running job
/// through the cancel path, keeps its ledger record, and exits 0 — so
/// the next server on the same state dir resumes the job as run 1.2.
/// This is the shard-recycle primitive `ugd-gateway` failover and
/// rolling restarts both lean on.
#[test]
fn sigterm_drains_checkpoints_and_exits_zero() {
    let g = hypercube_sparse_terminals(6, 4, CostScheme::Perturbed, 1);
    let state_dir = scratch_state_dir("drain");
    let mut first = spawn_server(&state_dir, 500);
    let mut client = SolveClient::connect(&first.addr).expect("client connect");
    let job = client.submit(stp_job("drain-victim", &g, &ReduceParams::default())).expect("submit");

    // Progress first: a drain with nothing checkpointed proves nothing.
    let cp_path = state_dir.join("checkpoints").join("job-0.json");
    let (_, nodes_at_drain) = await_checkpoint_progress(&cp_path, Duration::from_secs(60));

    let status = Command::new("kill")
        .args(["-TERM", &first.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");

    // The signal is polled (50 ms), so give the drain a moment to
    // engage; then a new submit must be refused, not queued into a
    // dying process. The drain window is short, so a connection refusal
    // is an acceptable outcome too.
    std::thread::sleep(Duration::from_millis(200));
    if let Ok(mut late) = SolveClient::connect(&first.addr) {
        match late.try_submit(stp_job("too-late", &g, &ReduceParams::default())) {
            Ok(ugrs::ug::SubmitOutcome::Rejected(reason)) => {
                assert_eq!(reason, "draining", "drain refusal must say why")
            }
            Ok(ugrs::ug::SubmitOutcome::Accepted(j)) => {
                panic!("draining server accepted job {j}")
            }
            Err(_) => {} // listener already gone — equally safe
        }
    }
    drop(client);

    let exit = first.child.wait().expect("wait for drained server");
    assert!(exit.success(), "drained server must exit 0, got {exit:?}");

    // The handover contract: ledger record and checkpoint both survive.
    let wal = state_dir.join("jobs").join("job-0.json");
    assert!(wal.exists(), "drain must keep the ledger record of the unfinished job");
    assert!(cp_path.exists(), "drain must keep the checkpoint of the unfinished job");

    // A successor on the same state dir picks the job up as run 1.2.
    let mut second = spawn_server(&state_dir, 50);
    let mut banner = String::new();
    second.stdout.read_line(&mut banner).expect("read recovery line");
    assert_eq!(
        banner.trim(),
        format!("recovered 1 job(s) from {} (1 resumed from checkpoint)", state_dir.display()),
        "successor must announce the handover"
    );
    let mut client = SolveClient::connect(&second.addr).expect("reconnect");
    let done = client.watch(job, 0, |_| {}).expect("watch resumed job");
    match done.kind {
        JobEventKind::Finished { state, run_index, nodes_so_far, .. } => {
            assert_eq!(state, JobState::Solved, "resumed job must solve");
            assert_eq!(run_index, 2, "drained job resumes as run 1.2");
            assert!(
                nodes_so_far >= nodes_at_drain,
                "resumed run lost pre-drain progress: {nodes_so_far} < {nodes_at_drain}"
            );
        }
        other => panic!("unexpected terminal event {other:?}"),
    }
    client.shutdown_server().expect("shutdown");
    drop(client);
    drop(second);
    std::fs::remove_dir_all(&state_dir).ok();
}
