//! End-to-end tests of the `ugd-server` job service: one server, a
//! standing pool of real `ugd-worker --serve` processes, and mixed
//! STP/MISDP jobs submitted over the client protocol — including
//! cancellation and a worker SIGKILL mid-job.

use std::time::{Duration, Instant};
use ugrs::glue::{misdp_job, stp_job, JobInstance, SolveClient, SolveServer};
use ugrs::misdp::gen::cardinality_ls;
use ugrs::steiner::gen::{bipartite, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::{
    JobEventKind, JobState, ParallelOptions, ProcessCommConfig, ServerConfig, ServerStatus,
};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_ugd-worker");

/// Short transport timeouts so death detection and handshakes never
/// stall a test on the 15 s defaults.
fn comm() -> ProcessCommConfig {
    ProcessCommConfig {
        handshake_timeout: Duration::from_secs(10),
        liveness_timeout: Duration::from_secs(2),
        heartbeat_interval: Duration::from_millis(100),
        reconnect_deadline: Duration::from_millis(500),
        chaos: None,
    }
}

fn server_config(pool: usize, max_jobs: usize, handicap_ms: u64) -> ServerConfig {
    let mut worker_command = vec![WORKER_BIN.to_string()];
    if handicap_ms > 0 {
        worker_command.extend(["--handicap-ms".into(), handicap_ms.to_string()]);
    }
    // CI sets UGRS_TEST_JOURNAL_DIR so run journals survive a failure
    // as uploadable artifacts; locally it defaults to off.
    let journal_dir = std::env::var_os("UGRS_TEST_JOURNAL_DIR").map(std::path::PathBuf::from);
    ServerConfig {
        worker_command,
        pool_size: pool,
        max_concurrent_jobs: max_jobs,
        comm: comm(),
        drain_timeout: Duration::from_secs(5),
        journal_dir,
        ..Default::default()
    }
}

/// Polls `status` until the predicate holds; panics after `timeout`.
fn await_status(
    client: &mut SolveClient,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&ServerStatus) -> bool,
) -> ServerStatus {
    let deadline = Instant::now() + timeout;
    loop {
        let st = client.status().expect("status request");
        if pred(&st) {
            return st;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {st:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stp_graph(seed: u64) -> ugrs::steiner::Graph {
    bipartite(5, 9, 3, CostScheme::Perturbed, seed)
}

/// External-sense optimum of the job's `Finished` event (the event's
/// `obj` is internal; STP adds the presolve-fixed cost, MISDP negates).
fn external_obj(instance: &JobInstance, kind: &JobEventKind<Vec<f64>>) -> f64 {
    match kind {
        JobEventKind::Finished { obj: Some(o), .. } => instance.external_objective(*o),
        other => panic!("expected a Finished event with an objective, got {other:?}"),
    }
}

/// The acceptance gate: three jobs — two STP, one MISDP — through one
/// server with a six-worker pool, running concurrently, all reaching
/// the optima the threaded back-end proves.
#[test]
fn three_concurrent_mixed_jobs() {
    let g1 = stp_graph(42);
    let g2 = stp_graph(1337);
    let mp = cardinality_ls(5, 2, 12);

    let stp_ref = |g: &ugrs::steiner::Graph| {
        let r = ugrs::glue::ug_solve_stp(
            g,
            &ReduceParams::default(),
            ParallelOptions { num_solvers: 2, ..Default::default() },
        );
        assert!(r.solved);
        r.tree.expect("threaded reference must find a tree").1
    };
    let expected1 = stp_ref(&g1);
    let expected2 = stp_ref(&g2);
    let misdp_ref =
        ugrs::glue::ug_solve_misdp(&mp, ParallelOptions { num_solvers: 2, ..Default::default() });
    assert!(misdp_ref.solved);
    let expected_m = misdp_ref.best_obj.expect("threaded MISDP reference must solve");

    // 150 ms handicap per subproblem: long enough that all three jobs
    // are observably in flight together, short enough to stay fast.
    let server = SolveServer::start(server_config(6, 3, 150)).expect("server start");
    let addr = server.client_addr().to_string();
    let mut client = SolveClient::connect(&addr).expect("client connect");

    let specs = [
        stp_job("stp-a", &g1, &ReduceParams::default()),
        stp_job("stp-b", &g2, &ReduceParams::default()),
        misdp_job("cls", &mp),
    ];
    let instances: Vec<JobInstance> = specs.iter().map(|s| s.instance.clone()).collect();
    let jobs: Vec<u64> = specs.into_iter().map(|s| client.submit(s).expect("submit")).collect();

    // All three must be admitted together (pool 6 = 3 jobs × 2 ranks).
    let mut status_client = SolveClient::connect(&addr).expect("status client");
    await_status(&mut status_client, Duration::from_secs(30), "3 running jobs", |st| {
        st.jobs.iter().filter(|j| j.state == JobState::Running).count() == 3
    });

    // Live telemetry: poll the Metrics request until at least two of
    // the concurrent jobs have reported a progress snapshot, then
    // check the exposition is well-formed and carries the coordinator,
    // wire and pool families.
    let deadline = Instant::now() + Duration::from_secs(30);
    let report = loop {
        let report = status_client.metrics().expect("metrics request");
        if report.jobs.iter().filter(|j| j.progress.is_some()).count() >= 2 {
            break report;
        }
        assert!(Instant::now() < deadline, "timed out waiting for job progress: {report:?}");
        std::thread::sleep(Duration::from_millis(25));
    };
    ugrs::ug::telemetry::validate_exposition(&report.text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", report.text));
    for family in [
        "ugrs_job_gap_percent",              // per-job coordinator progress
        "ugrs_job_open_nodes",               // …
        "ugrs_wire_tx_frames_total",         // wire codec
        "ugrs_wire_rx_bytes_total",          // …
        "ugrs_server_pool_workers",          // pool
        "ugrs_server_jobs_running",          // …
        "ugrs_server_heartbeat_gap_seconds", // worker liveness histogram
    ] {
        assert!(report.text.contains(family), "exposition must contain {family}:\n{}", report.text);
    }
    for p in report.jobs.iter().filter_map(|j| j.progress.as_ref()) {
        assert!(p.wall >= 0.0 && p.nodes < u64::MAX / 2, "sane snapshot: {p:?}");
    }

    let mut optima = Vec::new();
    for (job, instance) in jobs.iter().zip(&instances) {
        let done = client.wait(*job).expect("wait");
        match done.kind {
            JobEventKind::Finished { state, .. } => {
                assert_eq!(state, JobState::Solved, "job {job} must be solved to optimality")
            }
            ref other => panic!("job {job}: unexpected terminal event {other:?}"),
        }
        optima.push(external_obj(instance, &done.kind));
    }
    assert!((optima[0] - expected1).abs() < 1e-6, "stp-a {} != {expected1}", optima[0]);
    assert!((optima[1] - expected2).abs() < 1e-6, "stp-b {} != {expected2}", optima[1]);
    assert!((optima[2] - expected_m).abs() < 1e-3, "cls {} != {expected_m}", optima[2]);

    server.shutdown_and_join();
}

/// Cancellation and robustness: cancel one running job without
/// disturbing its neighbor, then SIGKILL a leased worker of the
/// surviving job — it must requeue the lost work, finish at the
/// optimum, and the scheduler must respawn the pool back to full size.
#[test]
fn cancel_and_worker_kill() {
    let g = stp_graph(42);
    let threaded = ugrs::glue::ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 2, ..Default::default() },
    );
    let expected = threaded.tree.expect("threaded reference").1;

    // 1.5 s handicap: job A's rank 0 reliably sits mid-subproblem
    // (holding the root) when we kill it.
    let server = SolveServer::start(server_config(4, 2, 1500)).expect("server start");
    let addr = server.client_addr().to_string();
    let mut client = SolveClient::connect(&addr).expect("client connect");

    let mut spec_a = stp_job("victim-pool", &g, &ReduceParams::default());
    spec_a.priority = 1;
    let fixed_a = match &spec_a.instance {
        JobInstance::Stp { graph } => graph.fixed_cost,
        other => panic!("stp_job built {other:?}"),
    };
    let job_a = client.submit(spec_a).expect("submit a");
    let job_b =
        client.submit(stp_job("cancelled", &stp_graph(7), &ReduceParams::default())).expect("b");

    let mut status_client = SolveClient::connect(&addr).expect("status client");
    let st = await_status(&mut status_client, Duration::from_secs(30), "both jobs running", |st| {
        st.jobs.iter().filter(|j| j.state == JobState::Running).count() == 2
    });

    // Cancel B mid-run; A must not notice.
    assert!(status_client.cancel(job_b).expect("cancel"), "running job must be cancellable");
    let done_b = client.wait(job_b).expect("wait b");
    match done_b.kind {
        JobEventKind::Finished { state, final_checkpoint, .. } => {
            assert_eq!(state, JobState::Cancelled);
            // A job cancelled mid-run leaves a restart artifact: the
            // primitive-node checkpoint, as JSON, in its result.
            let cp = final_checkpoint.expect("cancelled job must carry its final checkpoint");
            let parsed: serde_json::Value =
                serde_json::from_str(&cp).expect("checkpoint must be valid JSON");
            assert!(parsed.get("queue").is_some(), "checkpoint JSON has a queue: {cp}");
        }
        other => panic!("job b: unexpected terminal event {other:?}"),
    }

    // SIGKILL job A's rank-0 worker.
    let victim = st
        .workers
        .iter()
        .find(|w| w.job == Some(job_a) && w.rank == Some(0))
        .expect("job a must have a rank-0 lease");
    let pid = victim.pid.expect("server-spawned workers have pids");
    let killed = std::process::Command::new("kill")
        .arg("-9")
        .arg(pid.to_string())
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {pid} failed");

    let mut kinds = Vec::new();
    let done_a = client.watch(job_a, 0, |ev| kinds.push(ev.kind.clone())).expect("watch a");
    match done_a.kind {
        JobEventKind::Finished { state, obj, workers_lost, .. } => {
            assert_eq!(state, JobState::Solved, "job a must survive the kill");
            assert_eq!(workers_lost, 1, "exactly the killed rank must be counted dead");
            let cost = obj.expect("job a must find a tree") + fixed_a;
            assert!((cost - expected).abs() < 1e-6, "optimum after kill {cost} != {expected}");
        }
        other => panic!("job a: unexpected terminal event {other:?}"),
    }
    assert!(
        kinds.iter().any(|k| matches!(k, JobEventKind::WorkerLost { .. })),
        "the event stream must record the lost worker: {kinds:?}"
    );

    // The scheduler must refill the pool: 4 live, idle, undrained
    // workers again (the dead one replaced, leases all released).
    await_status(&mut status_client, Duration::from_secs(30), "pool refilled to 4 idle", |st| {
        st.workers.len() == 4 && st.workers.iter().all(|w| w.job.is_none() && !w.draining)
    });

    server.shutdown_and_join();
}

/// The CI smoke variant: pool of two, one job slot — the second job
/// waits in the queue and is cancelled there, the first solves.
#[test]
fn server_smoke_two_jobs_one_cancel() {
    let g = stp_graph(42);
    let threaded = ugrs::glue::ug_solve_stp(
        &g,
        &ReduceParams::default(),
        ParallelOptions { num_solvers: 2, ..Default::default() },
    );
    let expected = threaded.tree.expect("threaded reference").1;

    let server = SolveServer::start(server_config(2, 1, 300)).expect("server start");
    let addr = server.client_addr().to_string();
    let mut client = SolveClient::connect(&addr).expect("client connect");

    let spec = stp_job("smoke", &g, &ReduceParams::default());
    let instance = spec.instance.clone();
    let job_a = client.submit(spec).expect("submit a");
    let job_b =
        client.submit(stp_job("queued", &stp_graph(7), &ReduceParams::default())).expect("b");

    // One job slot: B is still queued, so this exercises queue-cancel.
    let mut c2 = SolveClient::connect(&addr).expect("second client");
    assert!(c2.cancel(job_b).expect("cancel"), "queued job must be cancellable");
    let done_b = c2.wait(job_b).expect("wait b");
    assert!(
        matches!(done_b.kind, JobEventKind::Finished { state: JobState::Cancelled, .. }),
        "queued job must finish Cancelled: {done_b:?}"
    );

    let done_a = client.wait(job_a).expect("wait a");
    match &done_a.kind {
        JobEventKind::Finished { state, .. } => assert_eq!(*state, JobState::Solved),
        other => panic!("job a: unexpected terminal event {other:?}"),
    }
    let cost = external_obj(&instance, &done_a.kind);
    assert!((cost - expected).abs() < 1e-6, "smoke optimum {cost} != {expected}");

    server.shutdown_and_join();
}
