//! Shared-memory scaling on a PUC-like Steiner instance — the §4.1
//! workflow of the paper: solve the same hard instance with a growing
//! number of ParaSolvers and watch where the speedup saturates (Table 1
//! explains it through root time and the maximum number of active
//! solvers).
//!
//! Run with: `cargo run --release --example steiner_parallel [threads...]`

use std::time::Instant;
use ugrs::glue::ug_solve_stp;
use ugrs::steiner::gen::{code_covering, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::ParallelOptions;

fn main() {
    let thread_counts: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![1, 2, 4]
        } else {
            args
        }
    };
    // hc-like instances are the PUC family that parallelizes best in
    // Table 1 (short root phase, all solvers busy quickly).
    let graph = code_covering(3, 4, 16, CostScheme::Perturbed, 121);
    println!(
        "instance cc3-4p-like: {} vertices, {} edges, {} terminals",
        graph.num_alive_nodes(),
        graph.num_alive_edges(),
        graph.num_terminals()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>14} {:>10}",
        "threads", "time (s)", "cost", "max active", "first max (s)", "transfers"
    );
    let mut base_time = None;
    for &threads in &thread_counts {
        let t0 = Instant::now();
        let options = ParallelOptions { num_solvers: threads, ..Default::default() };
        let res = ug_solve_stp(&graph, &ReduceParams::default(), options);
        let dt = t0.elapsed().as_secs_f64();
        let cost = res.tree.as_ref().map(|(_, c)| *c).unwrap_or(f64::NAN);
        println!(
            "{:>8} {:>10.3} {:>10.1} {:>12} {:>14.3} {:>10}",
            threads,
            dt,
            cost,
            res.stats.max_active,
            res.stats.first_max_active_time,
            res.stats.transferred
        );
        let base = *base_time.get_or_insert(dt);
        if threads > 1 && dt > 0.0 {
            println!("{:>8}   speedup vs 1 thread: {:.2}x", "", base / dt);
        }
        assert!(res.solved);
    }
}
