//! Racing ramp-up as a hybrid LP/SDP solver — §3.2's headline feature:
//! "racing ramp-up allows to dynamically choose between linear and
//! semidefinite relaxations for solving MISDPs, depending on whichever
//! approach works best for a particular instance."
//!
//! Runs one instance of each CBLIB-like family under a racing set whose
//! odd (1-based) settings are SDP-based and even settings LP-based, and
//! reports which approach won each race.
//!
//! Run with: `cargo run --release --example misdp_racing`

use ugrs::glue::{misdp_racing_settings, ug_solve_misdp};
use ugrs::misdp::gen::{cardinality_ls, min_k_partitioning, truss_topology};
use ugrs::misdp::MisdpProblem;
use ugrs::ug::{ParallelOptions, RampUp};

fn race(p: &MisdpProblem) {
    let n = 4;
    let settings = misdp_racing_settings(n);
    let names: Vec<String> = settings.iter().map(|s| s.name.clone()).collect();
    let options = ParallelOptions {
        num_solvers: n,
        ramp_up: RampUp::Racing { settings, time_trigger: 0.5, open_nodes_trigger: 12 },
        ..Default::default()
    };
    let res = ug_solve_misdp(p, options);
    let winner = match res.stats.racing_winner {
        Some(w) => format!("winner: #{} ({})", w + 1, names[w]),
        None => "solved during racing (no winner declared)".to_string(),
    };
    println!("  {:<16} obj = {:>10.3?}  solved = {}  {}", p.name, res.best_obj, res.solved, winner);
}

fn main() {
    println!("racing ug[ScipSdp,ThreadComm] on one instance per family:");
    println!("(odd settings = SDP-based nonlinear B&B, even = LP + eigenvector cuts)");
    race(&truss_topology(7, 18, 406));
    race(&cardinality_ls(16, 5, 404));
    race(&min_k_partitioning(10, 3, 401));
}
