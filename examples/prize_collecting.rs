//! SCIP-Jack's problem-class versatility: solve a prize-collecting
//! Steiner tree problem by transformation to the Steiner arborescence
//! problem (§3.1: "SCIP-Jack transforms all problem classes to the
//! Steiner arborescence problem") — the same branch-and-cut machinery,
//! untouched.
//!
//! Run with: `cargo run --release --example prize_collecting`

use ugrs::steiner::gen::{code_covering, CostScheme};
use ugrs::steiner::variants::PcstpInstance;
use ugrs::steiner::SteinerOptions;

fn main() {
    // Take a cc-like graph, forget its terminals, and attach prizes.
    let graph = code_covering(2, 4, 4, CostScheme::Perturbed, 9);
    let n = graph.num_nodes();
    let prizes: Vec<f64> =
        (0..n).map(|v| if v % 3 == 0 { 150.0 + (v * 7 % 50) as f64 } else { 0.0 }).collect();
    let inst = PcstpInstance::new(graph, prizes.clone());
    println!(
        "prize-collecting instance: {} vertices, {} edges, {} prized vertices",
        inst.graph.num_alive_nodes(),
        inst.graph.num_alive_edges(),
        prizes.iter().filter(|p| **p > 0.0).count()
    );

    let res = inst.solve_unrooted(SteinerOptions::default());
    println!("status    = {:?}", res.status);
    println!("objective = {:?} (tree cost + prizes of skipped vertices)", res.objective);
    println!("spanned   = {:?}", res.spanned);
    let collected: f64 = res.spanned.iter().map(|&v| prizes[v]).sum();
    let tree_cost: f64 = res.tree_edges.iter().map(|&e| inst.graph.edge(e).cost).sum();
    println!("tree cost {tree_cost} buys {collected} in prizes");
}
