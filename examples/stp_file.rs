//! Solve a SteinLib `.stp` file from disk — the adoption path for users
//! with real PUC/SteinLib instances.
//!
//! Run with: `cargo run --release --example stp_file -- path/to/instance.stp [threads]`
//!
//! Without arguments, a built-in sample instance is solved instead.

use ugrs::glue::ug_solve_stp;
use ugrs::steiner::reduce::ReduceParams;
use ugrs::steiner::stp::{parse_stp, read_stp};
use ugrs::ug::ParallelOptions;

const SAMPLE: &str = "\
33D32945 STP File, STP Format Version 1.0
SECTION Graph
Nodes 6
Edges 9
E 1 2 3
E 2 3 4
E 3 4 3
E 4 5 4
E 5 1 5
E 1 6 2
E 2 6 2
E 3 6 3
E 5 6 3
END
SECTION Terminals
Terminals 3
T 1
T 3
T 5
END
EOF
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let graph = match args.first() {
        Some(path) => match read_stp(std::path::Path::new(path)) {
            Ok(g) => {
                println!("read {}", path);
                g
            }
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            println!("no file given — solving the built-in sample");
            parse_stp(SAMPLE).expect("sample parses")
        }
    };
    let threads: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2);
    println!(
        "instance: {} vertices, {} edges, {} terminals; solving with {threads} ParaSolvers",
        graph.num_alive_nodes(),
        graph.num_alive_edges(),
        graph.num_terminals()
    );
    let options = ParallelOptions { num_solvers: threads, ..Default::default() };
    let res = ug_solve_stp(&graph, &ReduceParams::default(), options);
    match res.tree {
        Some((edges, cost)) => {
            println!("solved = {}; best tree cost = {cost}", res.solved);
            println!("tree edges (1-based endpoints):");
            for e in edges {
                let ed = graph.edge(e);
                println!("  {} - {}  (cost {})", ed.u + 1, ed.v + 1, ed.cost);
            }
        }
        None => println!("no solution found (solved = {})", res.solved),
    }
}
