//! Quickstart: the three layers of the suite in one file.
//!
//! 1. Solve a plain MIP with the CIP framework (no user plugins).
//! 2. Solve a Steiner tree problem sequentially (SCIP-Jack style).
//! 3. Parallelize the same Steiner solve through UG — the paper's point
//!    being that step 3 needs no changes to step 2's solver at all.
//!
//! Run with: `cargo run --release --example quickstart`

use ugrs::cip::{Model, Settings, SolveStatus, VarType};
use ugrs::glue::ug_solve_stp;
use ugrs::steiner::gen::{code_covering, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::steiner::{SteinerOptions, SteinerSolver};
use ugrs::ug::ParallelOptions;

fn main() {
    // ---- 1. A MIP on the CIP framework --------------------------------
    println!("== 1. knapsack MIP on the CIP framework ==");
    let mut m = Model::new("knapsack");
    m.set_maximize();
    let items = [(4.0, 12.0), (2.0, 7.0), (1.0, 4.0), (3.0, 9.0), (5.0, 14.0)];
    let vars: Vec<_> = items
        .iter()
        .map(|&(_, profit)| m.add_var("x", VarType::Binary, 0.0, 1.0, profit))
        .collect();
    let weights: Vec<_> = vars.iter().zip(&items).map(|(&v, &(w, _))| (v, w)).collect();
    m.add_linear(f64::NEG_INFINITY, 7.0, &weights);
    let res = m.optimize(Settings::default());
    println!(
        "   status = {:?}, best profit = {:?}, nodes = {}",
        res.status, res.best_obj, res.stats.nodes
    );
    assert_eq!(res.status, SolveStatus::Optimal);

    // ---- 2. Sequential Steiner solve ----------------------------------
    println!("== 2. sequential SCIP-Jack-style Steiner solve ==");
    let graph = code_covering(3, 4, 16, CostScheme::Perturbed, 121);
    println!(
        "   instance: {} vertices, {} edges, {} terminals (PUC cc-like)",
        graph.num_alive_nodes(),
        graph.num_alive_edges(),
        graph.num_terminals()
    );
    let mut solver = SteinerSolver::new(graph.clone(), SteinerOptions::default());
    let seq = solver.solve();
    println!(
        "   status = {:?}, cost = {:?}, reductions eliminated {} graph elements",
        seq.status,
        seq.best_cost,
        seq.reduce_stats.total_eliminations()
    );

    // ---- 3. The same solver, parallelized through UG ------------------
    println!("== 3. ug[SteinerJack, ThreadComm] with 4 ParaSolvers ==");
    let options = ParallelOptions { num_solvers: 4, ..Default::default() };
    let par = ug_solve_stp(&graph, &ReduceParams::default(), options);
    let (edges, cost) = par.tree.expect("parallel solve must find the tree");
    println!(
        "   solved = {}, cost = {cost}, tree edges = {}, transferred nodes = {}, idle = {:.1}%",
        par.solved,
        edges.len(),
        par.stats.transferred,
        par.stats.idle_percent
    );
    assert!((cost - seq.best_cost.unwrap()).abs() < 1e-6, "parallel must match sequential");
    println!("   parallel == sequential ✓");
}
