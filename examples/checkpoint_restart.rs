//! The Table 2 workflow at laptop scale: attack a hard instance in a
//! *chain of runs*, each resuming from the previous checkpoint. UG's
//! checkpoints store only *primitive nodes* (the coordinator queue plus
//! the assigned subtree roots), which is why open-node counts collapse at
//! every restart — run 1.1 of Table 2 ends with 271,781 open nodes but
//! run 1.2 restarts from 18.
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use ugrs::glue::ug_solve_stp;
use ugrs::steiner::gen::{bipartite, CostScheme};
use ugrs::steiner::reduce::ReduceParams;
use ugrs::ug::ParallelOptions;

fn main() {
    // A bip-like instance (the family of the paper's bip52u).
    let graph = bipartite(12, 28, 3, CostScheme::Unit, 130);
    println!(
        "instance bip-like: {} vertices, {} edges, {} terminals",
        graph.num_alive_nodes(),
        graph.num_alive_edges(),
        graph.num_terminals()
    );
    println!(
        "{:>5} {:>9} {:>9} {:>12} {:>12} {:>8} {:>11}",
        "run", "time (s)", "primal", "dual", "gap (%)", "open", "primitive"
    );

    let mut restart: Option<String> = None;
    for run in 1..=8 {
        let options = ParallelOptions {
            num_solvers: 3,
            time_limit: 1.5, // small on purpose: force the chain
            restart_from: restart.take(),
            ..Default::default()
        };
        let res = ug_solve_stp(&graph, &ReduceParams::default(), options);
        let primal = res.tree.as_ref().map(|(_, c)| *c).unwrap_or(f64::INFINITY);
        let primitive =
            res.ug.final_checkpoint.as_ref().map(|cp| cp.num_primitive_nodes()).unwrap_or(0);
        println!(
            "{:>5} {:>9.2} {:>9.1} {:>12.2} {:>12.2} {:>8} {:>11}",
            format!("1.{run}"),
            res.stats.wall_time,
            primal,
            res.dual_bound,
            res.stats.gap_percent(),
            res.stats.open_nodes,
            primitive,
        );
        if res.solved {
            println!("solved to optimality in run 1.{run} ✓");
            return;
        }
        restart = res
            .ug
            .final_checkpoint
            .map(|cp| serde_json::to_string(&cp).expect("checkpoint serializes"));
    }
    println!("(chain budget exhausted — increase time_limit per run to finish)");
}
