//! Offline stand-in for `serde_json` over the vendored `serde` value
//! model: renders [`Value`] trees to JSON text and parses them back.
//!
//! One deliberate extension: non-finite floats are written as the bare
//! tokens `Infinity`, `-Infinity` and `NaN` (JSON5-style) and parsed
//! back losslessly. The UG checkpoint format and the wire codec depend
//! on `-inf` dual bounds surviving a round trip; real JSON would turn
//! them into `null`. Both producer and consumer of every such document
//! in this workspace are this implementation.

pub use serde::Value;

pub type Error = serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Reconstructs a type from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(v: &Value) -> Result<T> {
    T::from_value(v)
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&v.to_value(), &mut out, 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(v: &T) -> Result<Vec<u8>> {
    to_string(v).map(String::into_bytes)
}

/// Parses JSON text into a type.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Parses JSON bytes into a type.
pub fn from_slice<T: serde::de::DeserializeOwned>(b: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(b).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] in place. Subset of serde_json's macro: `null`,
/// arrays, objects with string-literal keys, and plain expressions
/// (serialized through `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x == f64::INFINITY {
        out.push_str("Infinity");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{:?}` keeps a trailing `.0` on integral floats, so the value
        // parses back into the Float lane, not Int.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(e, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(e, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let c = self.peek().ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the full sequence verbatim.
                c if c < 0x80 => s.push(c as char),
                c => {
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::msg(format!("bad number `{text}`"))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::msg(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(items));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            items.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(items));
                }
                other => return Err(Error::msg(format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "3", "-7", "2.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trip_nonfinite() {
        let v = Value::Array(vec![Value::Float(f64::INFINITY), Value::Float(f64::NEG_INFINITY)]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[Infinity,-Infinity]");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_object() {
        let s = r#"{"a": [1, 2.0, {"b": "x\ny"}], "c": null}"#;
        let v: Value = from_str(s).unwrap();
        assert_eq!(v["a"][1], Value::Float(2.0));
        assert_eq!(v["a"][2]["b"].as_str(), Some("x\ny"));
        assert!(v["c"].is_null());
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn json_macro_objects() {
        let seed = 3usize;
        let v = json!({ "seed": seed as u64, "emphasis": "opt" });
        assert_eq!(v["seed"].as_u64(), Some(3));
        assert_eq!(v["emphasis"].as_str(), Some("opt"));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(5u64), Value::Int(5));
    }

    #[test]
    fn typed_round_trip() {
        let x: Vec<(u32, bool)> = vec![(1, true), (2, false)];
        let s = to_string(&x).unwrap();
        let back: Vec<(u32, bool)> = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({ "a": 1, "b": vec![true, false] });
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
