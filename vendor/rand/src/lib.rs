//! Offline stand-in for `rand` with the API subset this workspace uses:
//! `rand::rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool, gen}` over integer/float ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction the real `SmallRng` uses on 64-bit platforms, though
//! stream values are not guaranteed to match the real crate's.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling interface (blanket-implemented for all
/// [`RngCore`] types).
pub trait Rng: RngCore {
    /// Samples uniformly from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(1.5..=2.5)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seeds from a fixed value (no OS entropy source offline; callers
    /// in this workspace always seed explicitly).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e37_79b9_7f4a_7c15)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and far better distributed than an
    /// LCG; the workspace uses it for instance generation and
    /// diving/permutation heuristics.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling over `u64` in `[0, n)` without modulo bias
/// (Lemire's rejection method).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + sample_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + sample_unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + sample_unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        (self.start as f64 + sample_unit_f64(rng) * (self.end - self.start) as f64) as f32
    }
}

/// Types `Rng::gen` can sample "standard" values of.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        sample_unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Slice helpers (`choose`, `shuffle`) — the `rand::seq` subset.
pub mod seq {
    use crate::{sample_below, RngCore};

    pub trait SliceRandom {
        type Item;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[sample_below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(100u64..=110);
            assert!((100..=110).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
