//! Offline stand-in for `bytes` with the API subset the wire codec
//! uses: `BytesMut` as a growable receive buffer with cheap front
//! splitting, and immutable `Bytes` frames produced by `freeze`.
//!
//! Unlike the real crate there is no shared-region refcounting:
//! `split_to` copies the split-off prefix. Frames here are tiny
//! length-prefixed messages, so the copy is irrelevant next to the
//! socket round trip.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}

/// Growable byte buffer with front splitting.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Removes and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={})", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_freeze() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"hello world");
        let head = buf.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&buf[..], b" world");
        let frozen = head.freeze();
        assert_eq!(frozen.as_ref(), b"hello");
        assert_eq!(frozen.len(), 5);
    }

    #[test]
    fn split_all_and_none() {
        let mut buf = BytesMut::from(&b"ab"[..]);
        let none = buf.split_to(0);
        assert!(none.is_empty());
        let all = buf.split_to(2);
        assert_eq!(&all[..], b"ab");
        assert!(buf.is_empty());
    }
}
