//! Offline stand-in for `criterion` with the API subset this workspace
//! uses: `Criterion::default().sample_size(..).measurement_time(..)`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is plain wall-clock sampling: each sample times a batch
//! of iterations sized so a sample takes roughly
//! `measurement_time / sample_size`, then median / min / max per-iter
//! times are printed. No statistical analysis, plots, or baselines —
//! good enough to compare kernels on one machine, which is all the
//! bench crate needs.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(2) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up + calibration: run single iterations until we know
        // roughly how long one takes (capped so huge benches still move on).
        let mut bench = Bencher { iters: 1, elapsed: Duration::ZERO };
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.measurement_time / 10 && calib_iters < 1000 {
            f(&mut bench);
            calib_iters += 1;
        }
        let per_iter = if calib_iters > 0 {
            calib_start.elapsed() / calib_iters as u32
        } else {
            Duration::from_secs(1)
        };

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bench.iters = iters_per_sample;
            bench.elapsed = Duration::ZERO;
            f(&mut bench);
            samples.push(bench.elapsed / iters_per_sample as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{id:<44} time: [{:>12?} {:>12?} {:>12?}]  ({} samples x {} iters)",
            samples[0],
            median,
            samples[samples.len() - 1],
            self.sample_size,
            iters_per_sample
        );
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch size chosen by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so `criterion::black_box` works like the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; nothing to parse offline.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }
}
