//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` targeting the vendored `serde` value model
//! (`to_value`/`from_value` over `serde::Value`).
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! `TokenStream` is parsed directly. Supported shapes — which cover
//! every derived type in this workspace:
//!
//! * unit structs, tuple structs, named-field structs;
//! * enums with unit, tuple and struct variants (externally tagged);
//! * type generics without bounds (each parameter gets a
//!   `Serialize`/`Deserialize` bound on the generated impl).
//!
//! `#[serde(...)]` attributes are not interpreted (none are used in
//! this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Shape {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => generate(&parsed, mode).parse().expect("serde_derive: generated code"),
        Err(e) => format!("compile_error!({e:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    let generics = parse_generics(&toks, &mut i)?;
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_body(&toks, &mut i)?),
        "enum" => Shape::Enum(parse_variants(&toks, &mut i)?),
        other => return Err(format!("cannot derive for `{other}`")),
    };
    Ok(Input { name, generics, shape })
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` attribute: punct plus bracket group.
                if matches!(toks.get(*i + 1), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 2;
                    continue;
                }
                return;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B, ...>` (bounds after `:` are skipped; the generated
/// impl re-adds its own trait bounds). Leaves `i` after the closing `>`.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    if !matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Ok(params);
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => expect_param = true,
            Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
            }
            Some(_) => {}
            None => return Err("unterminated generics".into()),
        }
        *i += 1;
    }
    Ok(params)
}

fn parse_struct_body(toks: &[TokenTree], i: &mut usize) -> Result<Body, String> {
    match toks.get(*i) {
        None | Some(TokenTree::Punct(_)) => Ok(Body::Unit), // `struct X;`
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Body::Named(fields))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Body::Tuple(count_tuple_fields(g.stream())))
        }
        other => Err(format!("unexpected struct body: {other:?}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&toks, &mut i);
        fields.push(Field { name });
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a `,` outside all angle brackets.
/// Grouped delimiters `()`/`[]`/`{}` arrive as single `Group` trees, so
/// only `<`/`>` depth needs manual tracking.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0usize;
    let mut j = 0;
    while j < toks.len() {
        match &toks[j] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            // A trailing comma does not start a new field.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && j + 1 < toks.len() => {
                count += 1;
            }
            _ => {}
        }
        j += 1;
    }
    count
}

fn parse_variants(toks: &[TokenTree], i: &mut usize) -> Result<Vec<Variant>, String> {
    let group = match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("expected enum body, got {other:?}")),
    };
    let vt: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < vt.len() {
        skip_attrs_and_vis(&vt, &mut j);
        let name = match vt.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        j += 1;
        let body = match vt.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                Body::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                j += 1;
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        while j < vt.len() && !matches!(&vt[j], TokenTree::Punct(p) if p.as_char() == ',') {
            j += 1;
        }
        j += 1;
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header(input: &Input, trait_name: &str) -> String {
    let bounds: Vec<String> =
        input.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
    let params = input.generics.join(", ");
    let ty =
        if params.is_empty() { input.name.clone() } else { format!("{}<{}>", input.name, params) };
    if bounds.is_empty() {
        format!("impl ::serde::{trait_name} for {ty}")
    } else {
        format!("impl<{}> ::serde::{trait_name} for {ty}", bounds.join(", "))
    }
}

fn generate(input: &Input, mode: Mode) -> String {
    match mode {
        Mode::Serialize => generate_serialize(input),
        Mode::Deserialize => generate_deserialize(input),
    }
}

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({:?}), ::serde::Serialize::to_value(&{}{}))",
                f.name, access_prefix, f.name
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn generate_serialize(input: &Input) -> String {
    let header = impl_header(input, "Serialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Body::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Body::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Struct(Body::Named(fields)) => ser_named_fields(fields, "self."),
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.body {
                    Body::Unit => format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                    ),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vn:?}), {payload})])",
                            binds = binds.join(", ")
                        )
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({:?}), \
                                     ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(::std::vec![{items}]))])",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!("{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}")
}

fn de_named_fields(name: &str, ctor: &str, fields: &[Field], obj_expr: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{}: ::serde::Deserialize::from_value(::serde::__get_field({obj_expr}, {:?}, {name:?})?)?",
                f.name, f.name
            )
        })
        .collect();
    format!("::std::result::Result::Ok({ctor} {{ {} }})", items.join(", "))
}

fn de_tuple(ctor: &str, n: usize, payload_expr: &str, ty_name: &str) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value({payload_expr})?))"
        );
    }
    let items: Vec<String> =
        (0..n).map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?")).collect();
    format!(
        "{{ let __a = {payload_expr}.as_array().ok_or_else(|| ::serde::Error::msg(\
         format!(\"expected array for {ty_name}\")))?; \
         if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\
         format!(\"expected {n} elements for {ty_name}, got {{}}\", __a.len()))); }} \
         ::std::result::Result::Ok({ctor}({items})) }}",
        items = items.join(", ")
    )
}

fn generate_deserialize(input: &Input) -> String {
    let header = impl_header(input, "Deserialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Body::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Struct(Body::Tuple(n)) => de_tuple(name, *n, "__v", name),
        Shape::Struct(Body::Named(fields)) => {
            let inner = de_named_fields(name, name, fields, "__obj");
            format!(
                "{{ let __obj = __v.as_object().ok_or_else(|| ::serde::Error::msg(\
                 format!(\"expected object for {name}, got {{:?}}\", __v)))?; {inner} }}"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => {
                        unit_arms.push(format!("{vn:?} => ::std::result::Result::Ok({name}::{vn})"))
                    }
                    Body::Tuple(n) => payload_arms.push(format!(
                        "{vn:?} => {}",
                        de_tuple(&format!("{name}::{vn}"), *n, "__pv", name)
                    )),
                    Body::Named(fields) => {
                        let inner =
                            de_named_fields(name, &format!("{name}::{vn}"), fields, "__fobj");
                        payload_arms.push(format!(
                            "{vn:?} => {{ let __fobj = __pv.as_object().ok_or_else(|| \
                             ::serde::Error::msg(format!(\"expected object payload for \
                             {name}::{vn}\")))?; {inner} }}"
                        ));
                    }
                }
            }
            let unit_match = format!(
                "match __s.as_str() {{ {arms}{sep}__other => ::std::result::Result::Err(\
                 ::serde::Error::msg(format!(\"unknown variant {{}} for {name}\", __other))) }}",
                arms = unit_arms.join(", "),
                sep = if unit_arms.is_empty() { "" } else { ", " }
            );
            let payload_match = format!(
                "match __k.as_str() {{ {arms}{sep}__other => ::std::result::Result::Err(\
                 ::serde::Error::msg(format!(\"unknown variant {{}} for {name}\", __other))) }}",
                arms = payload_arms.join(", "),
                sep = if payload_arms.is_empty() { "" } else { ", " }
            );
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => {unit_match}, \
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{ \
                 let (__k, __pv) = &__o[0]; {payload_match} }}, \
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"bad enum encoding for {name}: {{:?}}\", __other))) }}"
            )
        }
    };
    format!(
        "{header} {{ fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
