//! Offline stand-in for `serde`, providing the API subset this workspace
//! uses. The container this repository builds in has no network access
//! and no vendored registry, so the real serde cannot be fetched; this
//! crate keeps the same import paths (`serde::Serialize`,
//! `serde::Deserialize`, `serde::de::DeserializeOwned`, derive macros
//! via the `derive` feature) over a much simpler design: instead of the
//! visitor-based zero-copy data model, types convert to and from a JSON
//! value tree ([`Value`]). `serde_json` (also vendored) renders that
//! tree to text/bytes.
//!
//! Deliberate deviations from real serde, chosen because both ends of
//! every (de)serialization in this workspace are this implementation:
//!
//! * Non-finite floats round-trip losslessly (rendered as `Infinity`,
//!   `-Infinity`, `NaN` tokens by the vendored `serde_json`). The UG
//!   checkpoint format relies on this: subproblem dual bounds start at
//!   `-inf`.
//! * Enums use externally tagged representation only (the serde
//!   default); no `#[serde(...)]` attributes are interpreted.

pub use crate::error::Error;
pub use crate::value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod error {
    /// Serialization/deserialization error: a message string.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl Error {
        pub fn msg(m: impl Into<String>) -> Self {
            Error(m.into())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}

    // The real serde_json offers this conversion; callers rely on `?`
    // promoting codec failures into `io::Error` paths.
    impl From<Error> for std::io::Error {
        fn from(e: Error) -> Self {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e)
        }
    }
}

mod value {
    /// A JSON-like value tree — the data model every [`crate::Serialize`]
    /// type converts through. Objects preserve insertion order.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Int(i64),
        Float(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    static NULL: Value = Value::Null;

    impl Value {
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) if *i >= 0 => Some(*i as u64),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        /// Object field lookup (first match); `None` for non-objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, i: usize) -> &Value {
            self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
        }
    }

    impl std::ops::IndexMut<&str> for Value {
        /// `v["key"] = x` semantics of the real crate: `Null` becomes
        /// an object, a missing key is inserted as `Null`, and
        /// indexing a non-object panics.
        fn index_mut(&mut self, key: &str) -> &mut Value {
            if matches!(self, Value::Null) {
                *self = Value::Object(Vec::new());
            }
            let Value::Object(entries) = self else {
                panic!("cannot index non-object value with a string key");
            };
            if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
                return &mut entries[pos].1;
            }
            entries.push((key.to_string(), Value::Null));
            &mut entries.last_mut().expect("just pushed").1
        }
    }
}

/// Types that can convert themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;

    /// Alias of [`Deserialize`] (this model has no borrowed
    /// deserialization, so every `Deserialize` type is owned).
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Fetches a required object field during derived deserialization.
#[doc(hidden)]
pub fn __get_field<'a>(
    obj: &'a [(String, Value)],
    key: &str,
    ty: &str,
) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}` for {ty}")))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, i8, i16, i32, i64, isize);

// u64/usize can exceed i64 in theory; values in this workspace (node
// counts, seeds, ranks) stay far below 2^63, so the Int lane is used.
macro_rules! uint_big_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected non-negative integer for {}, got {other:?}", stringify!($t)))),
                }
            }
        }
    )*};
}

uint_big_impls!(u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::Float(f) => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected number for {}, got {other:?}", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| Error::msg(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array()
                    .ok_or_else(|| Error::msg(format!("expected tuple array, got {v:?}")))?;
                let expect = [$($n,)+].len();
                if a.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of {expect}, got {} elements", a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<K: AsRef<str>, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_value())).collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(items)
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Already key-ordered — serialize in iteration order.
        Value::Object(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(items) => {
                items.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::Int(3)).unwrap(), Some(3));
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1u32, true, "x".to_string());
        let v = t.to_value();
        let back = <(u32, bool, String)>::from_value(&v).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn nonfinite_floats_survive() {
        let v = f64::NEG_INFINITY.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert!(v["b"].is_null());
        assert_eq!(v["a"].as_u64(), Some(1));
    }
}
