//! Offline stand-in for `proptest` with the API subset this workspace
//! uses: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert*!`, range/tuple strategies, `prop::collection::vec`,
//! `prop_map` and `prop_flat_map`.
//!
//! Differences from the real crate, acceptable for an offline test
//! harness: no shrinking (failures report the case number of a
//! deterministic stream instead of a minimized input), and case seeds
//! are derived from the test name, so runs are fully reproducible.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG (xoshiro256++, seeded per test + case)
// ---------------------------------------------------------------------

/// The RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------

/// Runner configuration. Only `cases` is interpreted.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps offline CI fast while still
        // exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property: the message produced by `prop_assert*!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A generator of random values. Unlike real proptest there is no
/// value tree: `sample` draws directly and failures do not shrink.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejection-samples until `pred` accepts (bounded; panics if the
    /// predicate rejects everything).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred, reason }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason);
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec()`].
    pub trait SizeRange {
        fn sample_size(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_size(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    /// `prop::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// The test-block macro. Supports an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::seeded(
                    base ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1, config.cases, e.0
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection bookkeeping offline: an assumption failure
            // just skips the case.
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// `any::<T>()` for a few basic types.
    pub fn any<T: crate::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int_impls {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

impl Strategy for FullRange<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite, broadly ranged floats.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    type Strategy = FullRange<f64>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuples(v in prop::collection::vec((0usize..5, 1.0f64..2.0), 0..6)) {
            prop_assert!(v.len() < 6);
            for (i, f) in v {
                prop_assert!(i < 5);
                prop_assert!((1.0..2.0).contains(&f));
            }
        }

        #[test]
        fn flat_map_chains(pair in (2usize..5).prop_flat_map(|n|
            prop::collection::vec(0..n, n).prop_map(move |v| (n, v))
        )) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            for x in v {
                prop_assert!(x < n);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::seeded(crate::name_seed("x"));
        let mut b = crate::TestRng::seeded(crate::name_seed("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
