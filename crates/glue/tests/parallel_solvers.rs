//! End-to-end tests of ug[SteinerJack,*] and ug[ScipSdp,*]: the parallel
//! solvers must reproduce the sequential optima, racing must work on the
//! MISDP side with mixed LP/SDP settings, and checkpoint/restart chains
//! must converge.

use ugrs_core::{ParallelOptions, RampUp};
use ugrs_glue::{misdp_racing_settings, stp_racing_settings, ug_solve_misdp, ug_solve_stp};
use ugrs_misdp::gen as mgen;
use ugrs_misdp::{Approach, MisdpSolver};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;
use ugrs_steiner::{SteinerOptions, SteinerSolver, SteinerTree};

fn opts(threads: usize) -> ParallelOptions {
    ParallelOptions { num_solvers: threads, ..Default::default() }
}

#[test]
fn parallel_stp_matches_sequential() {
    let g = sgen::code_covering(2, 3, 4, sgen::CostScheme::Perturbed, 21);
    let mut seq = SteinerSolver::new(g.clone(), SteinerOptions::default());
    let seq_res = seq.solve();
    let seq_cost = seq_res.best_cost.expect("sequential must solve");

    for threads in [1, 2, 4] {
        let res = ug_solve_stp(&g, &ReduceParams::default(), opts(threads));
        assert!(res.solved, "threads={threads}");
        let (edges, cost) = res.tree.clone().expect("parallel must find a tree");
        assert!(
            (cost - seq_cost).abs() < 1e-6,
            "threads={threads}: parallel {cost} vs sequential {seq_cost}"
        );
        let tree = SteinerTree::new(&g, edges);
        assert!(tree.is_valid(&g), "threads={threads}: invalid tree");
        assert!((tree.cost - cost).abs() < 1e-6);
    }
}

#[test]
fn parallel_stp_with_racing() {
    let g = sgen::hypercube(3, sgen::CostScheme::Perturbed, 2);
    let mut seq = SteinerSolver::new(g.clone(), SteinerOptions::default());
    let seq_cost = seq.solve().best_cost.unwrap();

    let options = ParallelOptions {
        num_solvers: 3,
        ramp_up: RampUp::Racing {
            settings: stp_racing_settings(3),
            time_trigger: 0.2,
            open_nodes_trigger: 8,
        },
        ..Default::default()
    };
    let res = ug_solve_stp(&g, &ReduceParams::default(), options);
    assert!(res.solved);
    let (_, cost) = res.tree.unwrap();
    assert!((cost - seq_cost).abs() < 1e-6, "racing {cost} vs seq {seq_cost}");
}

#[test]
fn parallel_misdp_matches_sequential_both_modes() {
    let p = mgen::truss_topology(3, 6, 4);
    let seq = MisdpSolver::new(p.clone(), Approach::Sdp, ugrs_cip::Settings::default()).solve();
    let seq_obj = seq.best_obj.expect("sequential must solve");

    for threads in [1, 2] {
        let res = ug_solve_misdp(&p, opts(threads));
        assert!(res.solved, "threads={threads}");
        let obj = res.best_obj.expect("parallel must find a solution");
        assert!(
            (obj - seq_obj).abs() < 1e-3,
            "threads={threads}: parallel {obj} vs sequential {seq_obj}"
        );
        assert!(p.is_feasible(res.y.as_ref().unwrap(), 1e-4));
    }
}

#[test]
fn misdp_racing_mixes_lp_and_sdp_settings() {
    let p = mgen::cardinality_ls(6, 2, 9);
    let seq = MisdpSolver::new(p.clone(), Approach::Lp, ugrs_cip::Settings::default()).solve();
    let seq_obj = seq.best_obj.unwrap();

    let options = ParallelOptions {
        num_solvers: 4,
        ramp_up: RampUp::Racing {
            settings: misdp_racing_settings(4),
            time_trigger: 0.3,
            open_nodes_trigger: 10,
        },
        ..Default::default()
    };
    let res = ug_solve_misdp(&p, options);
    assert!(res.solved);
    let obj = res.best_obj.unwrap();
    assert!((obj - seq_obj).abs() < 1e-3, "racing {obj} vs seq {seq_obj}");
}

#[test]
fn stp_checkpoint_restart_chain() {
    // A bip-like instance at a size that survives a very short first run.
    let g = sgen::bipartite(8, 14, 3, sgen::CostScheme::Perturbed, 31);
    let mut seq = SteinerSolver::new(g.clone(), SteinerOptions::default());
    let seq_cost = seq.solve().best_cost.unwrap();

    let first = ParallelOptions { num_solvers: 2, time_limit: 0.05, ..Default::default() };
    let res1 = ug_solve_stp(&g, &ReduceParams::default(), first);
    if res1.solved {
        // Too easy for a restart test on this machine — still verify.
        let (_, cost) = res1.tree.unwrap();
        assert!((cost - seq_cost).abs() < 1e-6);
        return;
    }
    let cp = res1.ug.final_checkpoint.expect("must checkpoint");
    let second = ParallelOptions {
        num_solvers: 2,
        restart_from: Some(serde_json::to_string(&cp).unwrap()),
        ..Default::default()
    };
    let res2 = ug_solve_stp(&g, &ReduceParams::default(), second);
    assert!(res2.solved, "restart must finish");
    let (_, cost) = res2.tree.unwrap();
    assert!((cost - seq_cost).abs() < 1e-6, "after restart {cost} vs {seq_cost}");
}

#[test]
fn seeded_solution_survives_and_speeds_up() {
    use ugrs_glue::ug_solve_stp_seeded;
    let g = sgen::code_covering(2, 3, 4, sgen::CostScheme::Perturbed, 55);
    // First solve to obtain the optimal model assignment.
    let first = ug_solve_stp(&g, &ReduceParams::default(), opts(2));
    assert!(first.solved);
    let (_, cost1) = first.tree.clone().unwrap();
    let seed = first.ug.solution.clone();
    // Re-run seeded with the optimum (the Table 3 workflow): the result
    // must match and the injected incumbent must not be lost.
    let second = ug_solve_stp_seeded(&g, &ReduceParams::default(), opts(2), seed);
    assert!(second.solved);
    let (_, cost2) = second.tree.unwrap();
    assert!((cost1 - cost2).abs() < 1e-6, "seeded run regressed: {cost2} vs {cost1}");
}
