//! `misdp_plugins` — the entire glue needed to run the MISDP solver
//! under UG (the `misdp_plugins.cpp` analog; the paper counts 106 lines
//! for the original).

use crate::base::{CipUserPlugins, UgCipSolver};
use std::sync::Arc;
use ugrs_cip::{NodeDesc, Solver as CipSolver};
use ugrs_core::{solve_parallel, ParallelOptions, ParallelResult, SolverSettings};
use ugrs_misdp::solver::{build_cip_model, register_plugins};
use ugrs_misdp::{decode_settings, racing_settings, MisdpProblem};

/// The plugin declaration list for the MISDP application.
pub struct MisdpPlugins {
    pub problem: Arc<MisdpProblem>,
}

impl CipUserPlugins for MisdpPlugins {
    fn name(&self) -> &str {
        "ug[ScipSdp,*]"
    }

    fn create_solver(&self, settings: &SolverSettings) -> CipSolver {
        // §3.2: racing dynamically chooses between the LP- and SDP-based
        // relaxations — the settings bundle decides which this instance
        // runs.
        let (approach, cip_settings) = decode_settings(settings);
        let model = build_cip_model(&self.problem);
        let mut solver = CipSolver::new(model, cip_settings);
        register_plugins(&mut solver, self.problem.clone(), approach);
        solver
    }
}

/// The MISDP racing set (odd = SDP-based, even = LP-based; §4.2).
pub fn misdp_racing_settings(n: usize) -> Vec<SolverSettings> {
    racing_settings(n)
}

/// Result of a parallel MISDP solve, in maximization sense.
#[derive(Clone, Debug)]
pub struct MisdpParallelResult {
    pub best_obj: Option<f64>,
    pub y: Option<Vec<f64>>,
    pub dual_bound: f64,
    pub solved: bool,
    pub stats: ugrs_core::UgStats,
    pub ug: ParallelResult<NodeDesc, Vec<f64>>,
}

/// `ug [ScipSdp, ThreadComm]`.
pub fn ug_solve_misdp(problem: &MisdpProblem, options: ParallelOptions) -> MisdpParallelResult {
    let problem = Arc::new(problem.clone());
    let plugins = Arc::new(MisdpPlugins { problem: problem.clone() });
    let factory = UgCipSolver::factory(plugins);
    let res = solve_parallel(factory, NodeDesc::root(), options);
    map_back(res)
}

/// `ug [ScipSdp, ProcessComm]`: the same solve over worker *processes*
/// (`dist.worker_command`, typically the `ugd-worker` binary). The
/// instance is written to a temp file as a serialized
/// [`crate::JobInstance`] whose path is appended as
/// `--instance-job <path>` — the job-service format, so one worker
/// binary serves both applications per-call and pooled.
pub fn ug_solve_misdp_distributed(
    problem: &MisdpProblem,
    options: ParallelOptions,
    mut dist: ugrs_core::DistributedOptions,
) -> std::io::Result<MisdpParallelResult> {
    let instance = crate::JobInstance::Misdp { problem: problem.clone() };
    let instance_path = std::env::temp_dir().join(format!(
        "ugrs-misdp-{}-{:x}.json",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::write(&instance_path, serde_json::to_string(&instance)?)?;
    dist.worker_command.push("--instance-job".into());
    dist.worker_command.push(instance_path.to_string_lossy().into_owned());

    let res = ugrs_core::solve_parallel_distributed::<NodeDesc, Vec<f64>>(
        NodeDesc::root(),
        options,
        dist,
    );
    let _ = std::fs::remove_file(&instance_path);
    Ok(map_back(res?))
}

/// Converts a UG result from the internal minimization of −bᵀy back to
/// the MISDP's maximization sense.
fn map_back(res: ParallelResult<NodeDesc, Vec<f64>>) -> MisdpParallelResult {
    let best_obj = res.solution.as_ref().map(|(_, obj)| -obj);
    let y = res.solution.as_ref().map(|(x, _)| x.clone());
    MisdpParallelResult {
        best_obj,
        y,
        dual_bound: -res.dual_bound,
        solved: res.solved,
        stats: res.stats.clone(),
        ug: res,
    }
}
