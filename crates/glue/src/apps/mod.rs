//! Per-application glue files — the analogs of
//! `ug_scip_applications/STP/src/stp_plugins.cpp` (173 LoC) and
//! `ug_scip_applications/MISDP/src/misdp_plugins.cpp` (106 LoC).

pub mod maxcut;
pub mod misdp;
pub mod stp;
