//! `stp_plugins` — the entire glue needed to run the Steiner solver
//! under UG (the `stp_plugins.cpp` analog, kept comparably small).

use crate::base::{CipUserPlugins, UgCipSolver};
use std::sync::Arc;
use ugrs_cip::{NodeDesc, Solver as CipSolver};
use ugrs_core::{ParallelOptions, ParallelResult, SolverSettings};
use ugrs_steiner::plugins::{build_model, register_plugins};
use ugrs_steiner::Graph;

/// The plugin declaration list for the STP application: holds the
/// (presolved) graph — presolving once in the LoadCoordinator, §2.2 —
/// and installs the SCIP-Jack plugin set into every fresh solver.
pub struct StpPlugins {
    pub graph: Arc<Graph>,
    pub in_tree_reductions: bool,
}

impl CipUserPlugins for StpPlugins {
    fn name(&self) -> &str {
        "ug[SteinerJack,*]"
    }

    fn create_solver(&self, settings: &SolverSettings) -> CipSolver {
        let (model, data) = build_model(&self.graph);
        let cip_settings = crate::base::decode_generic(settings);
        let mut solver = CipSolver::new(model, cip_settings);
        register_plugins(&mut solver, data, self.in_tree_reductions);
        solver
    }
}

/// Problem-specific racing settings for STP (the paper's *customized
/// racing*): seed/emphasis variants plus branching-rule alternation.
pub fn stp_racing_settings(n: usize) -> Vec<SolverSettings> {
    let emphases = ["default", "feas", "opt", "easycip"];
    (0..n)
        .map(|i| SolverSettings {
            index: i,
            name: format!("stp-{}-{}", emphases[i % 4], i),
            params: serde_json::json!({ "seed": i as u64, "emphasis": emphases[i % 4] }),
        })
        .collect()
}

/// Result of a parallel STP solve, mapped back to the original instance.
#[derive(Clone, Debug)]
pub struct StpParallelResult {
    /// Optimal/best tree (original edge ids) and its total cost.
    pub tree: Option<(Vec<u32>, f64)>,
    pub dual_bound: f64,
    pub solved: bool,
    pub stats: ugrs_core::UgStats,
    pub ug: ParallelResult<NodeDesc, Vec<f64>>,
}

/// `ug [SteinerJack, ThreadComm]`: reduce the graph once (coordinator-
/// side presolve), fan the root out to the ParaSolvers, map the winning
/// assignment back to original edges.
pub fn ug_solve_stp(
    graph: &Graph,
    reduce_params: &ugrs_steiner::reduce::ReduceParams,
    options: ParallelOptions,
) -> StpParallelResult {
    ug_solve_stp_seeded(graph, reduce_params, options, None)
}

/// [`ug_solve_stp`] seeded with a known solution: a *model assignment*
/// (as returned in `StpParallelResult::ug.solution`) plus its internal
/// objective. This reproduces Table 3's re-runs "from scratch with the
/// best solution" — the model build is deterministic, so assignments are
/// portable across runs on the same graph.
pub fn ug_solve_stp_seeded(
    graph: &Graph,
    reduce_params: &ugrs_steiner::reduce::ReduceParams,
    options: ParallelOptions,
    seed_solution: Option<(Vec<f64>, f64)>,
) -> StpParallelResult {
    let mut g = graph.clone();
    ugrs_steiner::reduce::reduce(&mut g, reduce_params);
    if g.num_terminals() < 2 {
        // Solved by presolving alone.
        return trivial_result(&g);
    }
    let g = Arc::new(g);
    let plugins = Arc::new(StpPlugins { graph: g.clone(), in_tree_reductions: true });
    let factory = UgCipSolver::factory(plugins);
    let res =
        ugrs_core::runner::solve_parallel_seeded(factory, NodeDesc::root(), seed_solution, options);
    map_back(&g, res)
}

/// `ug [SteinerJack, ProcessComm]`: the same solve, but the ParaSolvers
/// are worker *processes* (`dist.worker_command`, typically the
/// `ugd-worker` binary) on localhost. The reduced instance is written
/// to a temp file whose path is appended as `--instance <path>`; every
/// subproblem and solution then crosses the wire as frames. Workers
/// dying mid-run are survived: their subproblems are requeued.
pub fn ug_solve_stp_distributed(
    graph: &Graph,
    reduce_params: &ugrs_steiner::reduce::ReduceParams,
    options: ParallelOptions,
    mut dist: ugrs_core::DistributedOptions,
) -> std::io::Result<StpParallelResult> {
    let mut g = graph.clone();
    ugrs_steiner::reduce::reduce(&mut g, reduce_params);
    if g.num_terminals() < 2 {
        // Solved by presolving alone — no workers needed.
        return Ok(trivial_result(&g));
    }

    let instance_path = std::env::temp_dir().join(format!(
        "ugrs-stp-{}-{:x}.json",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::write(&instance_path, serde_json::to_string(&g)?)?;
    dist.worker_command.push("--instance".into());
    dist.worker_command.push(instance_path.to_string_lossy().into_owned());

    let res = ugrs_core::solve_parallel_distributed::<NodeDesc, Vec<f64>>(
        NodeDesc::root(),
        options,
        dist,
    );
    let _ = std::fs::remove_file(&instance_path);
    Ok(map_back(&g, res?))
}

/// Builds the factory a worker process uses to serve a distributed STP
/// run: load the (already reduced) instance the coordinator wrote, then
/// construct one SCIP-Jack-armed solver per received subproblem.
pub fn stp_worker_factory(
    instance_path: &std::path::Path,
) -> std::io::Result<ugrs_core::worker::SolverFactory<UgCipSolver<StpPlugins>>> {
    let text = std::fs::read_to_string(instance_path)?;
    let graph: Graph = serde_json::from_str(&text)?;
    let plugins = Arc::new(StpPlugins { graph: Arc::new(graph), in_tree_reductions: true });
    Ok(UgCipSolver::factory(plugins))
}

/// Maps a UG result on the reduced graph back to original edge ids:
/// model assignment → reduced edges → expanded original edges + fixed
/// parts from presolving.
fn map_back(g: &Graph, res: ParallelResult<NodeDesc, Vec<f64>>) -> StpParallelResult {
    let tree = res.solution.as_ref().map(|(x, obj)| {
        let (_, data) = build_model(g);
        let reduced = data.assignment_to_edges(x);
        let mut orig = g.fixed_edges.clone();
        for e in reduced {
            orig.extend(g.expand_edge(e));
        }
        orig.sort_unstable();
        orig.dedup();
        (orig, obj + g.fixed_cost)
    });
    StpParallelResult {
        tree,
        dual_bound: res.dual_bound + g.fixed_cost,
        solved: res.solved,
        stats: res.stats.clone(),
        ug: res,
    }
}

fn trivial_result(g: &Graph) -> StpParallelResult {
    let cost = g.fixed_cost;
    let edges = g.fixed_edges.clone();
    let stats = ugrs_core::UgStats { primal_bound: cost, dual_bound: cost, ..Default::default() };
    StpParallelResult {
        tree: Some((edges, cost)),
        dual_bound: cost,
        solved: true,
        stats: stats.clone(),
        ug: ParallelResult {
            solution: None,
            dual_bound: cost,
            solved: true,
            stats,
            final_checkpoint: None,
        },
    }
}
