//! `maxcut_plugins` — the entire glue needed to run max-cut under UG,
//! via the MISDP relaxation (§2.1 of the paper names max-cut as the
//! canonical MISDP application). The LoC-counted assertion in
//! `tests/instances.rs` holds this file to the paper's <200-line glue
//! budget, extending the claim measured for `stp_plugins.cpp` (173) and
//! `misdp_plugins.cpp` (106) to a third application.
//!
//! Formulation: one variable `y_p ∈ [0,1]` per vertex pair `p = (i,j)`,
//! `i < j`, integral on edge pairs; one PSD block `X = C − Σ A_p y_p`
//! with `C = 2I − 𝟙` and `A_p = −2` at `(i,j),(j,i)`, so `X_ii = 1` and
//! `X_ij = 2y_p − 1 ∈ [−1,1]`. PSD plus the unit diagonal forces the
//! `±1` pattern of a cut on integral points (`X = ssᵀ`), and pair
//! variables over *all* pairs — not just edges — make the relaxation
//! exact. The objective maximizes `−Σ w_e y_e`, i.e. minimizes the
//! weight of uncut edges, so `cut = W − internal` with `W = Σ w_e`.

use crate::apps::misdp::MisdpPlugins;
use crate::base::UgCipSolver;
use std::sync::Arc;
use ugrs_cip::NodeDesc;
use ugrs_core::{solve_parallel, ParallelOptions, ParallelResult};
use ugrs_instances::MaxCutInstance;
use ugrs_linalg::Matrix;
use ugrs_misdp::MisdpProblem;
use ugrs_sdp::SdpBlock;

/// Index of pair `(i, j)`, `i < j`, in the variable vector.
fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Builds the exact MISDP formulation of a max-cut instance.
pub fn maxcut_to_misdp(inst: &MaxCutInstance) -> MisdpProblem {
    let n = inst.n;
    let m = n * (n - 1) / 2;
    let mut p = MisdpProblem::new(&format!("maxcut-{}", inst.name), m);
    let mut blk = SdpBlock::new(n, m);
    for i in 0..n {
        for j in 0..n {
            blk.c[(i, j)] = if i == j { 1.0 } else { -1.0 };
        }
    }
    for i in 0..n {
        for j in i + 1..n {
            let v = pair_index(n, i, j);
            p.lb[v] = 0.0;
            p.ub[v] = 1.0;
            let mut a = Matrix::zeros(n, n);
            a[(i, j)] = -2.0;
            a[(j, i)] = -2.0;
            blk.set_a(v, a);
        }
    }
    for &(u, v, w) in &inst.edges {
        let e = pair_index(n, (u.min(v)) as usize, (u.max(v)) as usize);
        p.integer[e] = true;
        p.b[e] -= w;
    }
    p.blocks.push(blk);
    p
}

/// Recovers a two-sided partition from the pair variables: BFS
/// 2-coloring per component over the instance's edges (`y ≈ 1` → same
/// side, `y ≈ 0` → opposite side).
pub fn extract_partition(inst: &MaxCutInstance, y: &[f64]) -> Vec<bool> {
    let n = inst.n;
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for &(u, v, _) in &inst.edges {
        let (a, b) = (u.min(v) as usize, u.max(v) as usize);
        let same = y.get(pair_index(n, a, b)).copied().unwrap_or(1.0) > 0.5;
        adj[a].push((b, same));
        adj[b].push((a, same));
    }
    let mut side = vec![false; n];
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &(v, same) in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    side[v] = if same { side[u] } else { !side[u] };
                    queue.push_back(v);
                }
            }
        }
    }
    side
}

/// Result of a parallel max-cut solve, in cut-value sense.
#[derive(Clone, Debug)]
pub struct MaxCutParallelResult {
    /// Best cut value found (`W − internal objective`).
    pub best_cut: Option<f64>,
    /// The matching vertex partition.
    pub partition: Option<Vec<bool>>,
    /// Dual bound on the cut value.
    pub dual_bound: f64,
    /// Proven optimal?
    pub solved: bool,
    /// UG framework statistics.
    pub stats: ugrs_core::UgStats,
    /// The raw framework result.
    pub ug: ParallelResult<NodeDesc, Vec<f64>>,
}

/// `ug [MaxCut→ScipSdp, ThreadComm]`: solve max-cut by handing the
/// MISDP formulation to the existing SCIP-SDP-shaped solver under UG.
pub fn ug_solve_maxcut(inst: &MaxCutInstance, options: ParallelOptions) -> MaxCutParallelResult {
    let problem = Arc::new(maxcut_to_misdp(inst));
    let plugins = Arc::new(MisdpPlugins { problem });
    let factory = UgCipSolver::factory(plugins);
    let res = solve_parallel(factory, NodeDesc::root(), options);
    let w = inst.total_weight();
    let best_cut = res.solution.as_ref().map(|(_, obj)| w - obj);
    let partition = res.solution.as_ref().map(|(y, _)| extract_partition(inst, y));
    MaxCutParallelResult {
        best_cut,
        partition,
        dual_bound: w - res.dual_bound,
        solved: res.solved,
        stats: res.stats.clone(),
        ug: res,
    }
}
