//! The ug[SCIP-*,*]-libraries, in Rust: glue that parallelizes any
//! *customized CIP solver* through the UG framework.
//!
//! The paper's headline claim (§2.3) is that a customized SCIP solver is
//! parallelized by writing **less than 200 lines of glue code** — a
//! single file declaring the user plugins (`stp_plugins.cpp`: 173 LoC,
//! `misdp_plugins.cpp`: 106 LoC). This crate reproduces that split:
//!
//! * [`base`] is the generic library part — the [`base::CipUserPlugins`]
//!   trait (the `ScipUserPlugins` analog) and the [`base::UgCipSolver`]
//!   adapter implementing `ugrs_core::BaseSolver` for *any* plugin set,
//!   wiring subproblem transfer ([`ugrs_cip::NodeDesc`], which carries
//!   the branching decisions — the ug-0.8.6 feature of §4.1), incumbent
//!   exchange, collect-mode node export and aborts;
//! * [`apps::stp`] is the entire STP glue (the `stp_plugins.cpp`
//!   analog), and [`apps::misdp`] the MISDP glue (`misdp_plugins.cpp`) —
//!   both deliberately small; everything else lives in the sequential
//!   solver crates, untouched.
//!
//! `ug [SteinerJack, ThreadComm]` is then just
//! [`apps::stp::ug_solve_stp`]; `ug [ScipSdp, ThreadComm]` is
//! [`apps::misdp::ug_solve_misdp`].

pub mod apps;
pub mod base;
pub mod serve;

pub use apps::maxcut::{extract_partition, maxcut_to_misdp, ug_solve_maxcut, MaxCutParallelResult};
pub use apps::misdp::{
    misdp_racing_settings, ug_solve_misdp, ug_solve_misdp_distributed, MisdpParallelResult,
    MisdpPlugins,
};
pub use apps::stp::{
    stp_racing_settings, stp_worker_factory, ug_solve_stp, ug_solve_stp_distributed,
    ug_solve_stp_seeded, StpParallelResult, StpPlugins,
};
pub use base::{CipUserPlugins, UgCipSolver};
pub use serve::{
    job_factory, maxcut_job, misdp_job, serve_jobs, stp_job, DelaySolver, JobInstance, JobSolver,
    SolveClient, SolveGateway, SolveJobEvent, SolveJobSpec, SolveServer,
};
