//! The generic half of the ug[SCIP-*,*]-libraries: adapt any customized
//! CIP solver to the UG [`BaseSolver`] contract.

use std::sync::Arc;
use ugrs_cip::{ControlHooks, NodeDesc, Solver as CipSolver};
use ugrs_core::{BaseSolver, ParaControl, SolverSettings, SubproblemOutcome};

/// The `ScipUserPlugins` analog: everything an application must provide
/// to run under UG. One implementation = one parallelized solver.
pub trait CipUserPlugins: Send + Sync + 'static {
    /// Application name (for logs).
    fn name(&self) -> &str;

    /// Builds a fully armed sequential solver — model plus user plugins —
    /// configured for the given racing settings bundle. Called once per
    /// received subproblem, so the subproblem is presolved *again* inside
    /// (the paper's layered presolving).
    fn create_solver(&self, settings: &SolverSettings) -> CipSolver;
}

/// Adapts the CIP solver's [`ControlHooks`] to UG's [`ParaControl`].
struct HookBridge<'a, 'b> {
    ctl: &'a mut dyn ParaControl<NodeDesc, Vec<f64>>,
    /// Collect-mode hysteresis: export at most one node per poll burst.
    exports_left: usize,
    _marker: std::marker::PhantomData<&'b ()>,
}

impl ControlHooks for HookBridge<'_, '_> {
    fn should_abort(&mut self) -> bool {
        self.ctl.should_abort()
    }

    fn on_incumbent(&mut self, obj: f64, x: &[f64]) {
        self.ctl.on_solution(x.to_vec(), obj);
    }

    fn on_status(&mut self, dual_bound: f64, open: usize, nodes: u64) {
        self.ctl.on_status(dual_bound, open, nodes);
        self.exports_left = 1; // refresh the per-burst export budget
    }

    fn poll_incumbent(&mut self) -> Option<Vec<f64>> {
        self.ctl.poll_incumbent().map(|(x, _)| x)
    }

    fn want_node_export(&mut self) -> bool {
        self.exports_left > 0 && self.ctl.collect_requested()
    }

    fn export_node(&mut self, desc: NodeDesc) {
        self.exports_left = self.exports_left.saturating_sub(1);
        let bound = desc.dual_bound;
        self.ctl.export_subproblem(desc, bound);
    }
}

/// The UG base solver wrapping a plugin set. One instance is created per
/// received subproblem (see [`ugrs_core::worker::worker_loop`]).
pub struct UgCipSolver<P: CipUserPlugins> {
    plugins: Arc<P>,
    settings: SolverSettings,
}

impl<P: CipUserPlugins> UgCipSolver<P> {
    pub fn new(plugins: Arc<P>, settings: SolverSettings) -> Self {
        UgCipSolver { plugins, settings }
    }

    /// The UG solver factory for this plugin set — hand it to
    /// [`ugrs_core::solve_parallel`].
    pub fn factory(plugins: Arc<P>) -> ugrs_core::worker::SolverFactory<Self> {
        Arc::new(move |_rank, settings: &SolverSettings| {
            UgCipSolver::new(plugins.clone(), settings.clone())
        })
    }
}

impl<P: CipUserPlugins> BaseSolver for UgCipSolver<P> {
    type Sub = NodeDesc;
    type Sol = Vec<f64>;

    fn solve_subproblem(
        &mut self,
        sub: &NodeDesc,
        known_bound: f64,
        incumbent: Option<&Vec<f64>>,
        ctl: &mut dyn ParaControl<NodeDesc, Vec<f64>>,
    ) -> SubproblemOutcome {
        let mut solver = self.plugins.create_solver(&self.settings);
        // The coordinator may hold a stronger bound than the description's
        // creation-time label (it merges status reports); honour it.
        let mut sub = sub.clone();
        sub.dual_bound = sub.dual_bound.max(known_bound);
        let sub = &sub;
        if let Some(x) = incumbent {
            solver.inject_solution(x.clone());
        }
        let mut bridge = HookBridge { ctl, exports_left: 1, _marker: std::marker::PhantomData };
        let res = solver.solve_subproblem(sub, &mut bridge);
        let aborted = res.status == ugrs_cip::SolveStatus::Aborted
            || res.status == ugrs_cip::SolveStatus::TimeLimit
            || res.status == ugrs_cip::SolveStatus::NodeLimit;
        SubproblemOutcome {
            // stats.dual_bound is in the internal minimization sense —
            // exactly what UG coordinates on.
            dual_bound: res.stats.dual_bound,
            nodes: res.stats.nodes,
            aborted,
        }
    }
}

/// Generic racing settings: seed + emphasis diversification, for
/// applications without problem-specific racing parameters (UG's default
/// racing; the *customized racing* sets live with each app).
pub fn generic_racing_settings(n: usize) -> Vec<SolverSettings> {
    let emphases = ["default", "easycip", "feas", "opt"];
    (0..n)
        .map(|i| SolverSettings {
            index: i,
            name: format!("cip-{}-{}", emphases[i % 4], i),
            params: serde_json::json!({ "seed": i as u64, "emphasis": emphases[i % 4] }),
        })
        .collect()
}

/// Decodes the generic settings bundles into CIP settings.
pub fn decode_generic(settings: &SolverSettings) -> ugrs_cip::Settings {
    let emphasis = match settings.params.get("emphasis").and_then(|v| v.as_str()) {
        Some("easycip") => ugrs_cip::Emphasis::EasyCip,
        Some("feas") => ugrs_cip::Emphasis::Feasibility,
        Some("opt") => ugrs_cip::Emphasis::Optimality,
        _ => ugrs_cip::Emphasis::Default,
    };
    let seed = settings.params.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
    ugrs_cip::Settings::default().with_emphasis(emphasis).with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_settings_decode() {
        let set = generic_racing_settings(6);
        assert_eq!(set.len(), 6);
        let s1 = decode_generic(&set[1]);
        assert_eq!(s1.emphasis, ugrs_cip::Emphasis::EasyCip);
        assert_eq!(s1.permutation_seed, 1);
        let s0 = decode_generic(&set[0]);
        assert_eq!(s0.emphasis, ugrs_cip::Emphasis::Default);
    }
}
