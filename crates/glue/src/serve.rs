//! Job-service glue: what makes `ugd-server` a *mixed* STP/MISDP
//! service.
//!
//! The core server ([`ugrs_core::server`]) is generic over an instance
//! type; this module instantiates it with [`JobInstance`] — an enum
//! over both customized solvers of the paper — so one standing worker
//! pool serves Steiner tree and MISDP jobs interleaved. A pool worker
//! receives the instance with the job's `Begin` frame and builds the
//! matching plugin set per subproblem, exactly like the per-call
//! distributed workers do from their `--instance` file.

use crate::apps::misdp::MisdpPlugins;
use crate::apps::stp::StpPlugins;
use crate::base::UgCipSolver;
use std::sync::Arc;
use std::time::Duration;
use ugrs_cip::NodeDesc;
use ugrs_core::worker::{BaseSolver, ParaControl, SolverFactory, SubproblemOutcome};
use ugrs_core::{JobSpec, ProcessCommConfig};
use ugrs_instances::MaxCutInstance;
use ugrs_misdp::MisdpProblem;
use ugrs_steiner::Graph;

/// The instance a job ships to every leased pool worker.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum JobInstance {
    /// A (pre-reduced) Steiner tree instance.
    Stp { graph: Graph },
    /// A mixed integer semidefinite program.
    Misdp { problem: MisdpProblem },
    /// A max-cut instance, solved via its MISDP formulation
    /// ([`crate::apps::maxcut`]); workers build the formulation from
    /// the (much smaller) edge list on receipt.
    MaxCut { instance: MaxCutInstance },
}

impl JobInstance {
    /// Maps an internal-sense (minimization) objective back to the
    /// instance's external convention: STP adds the cost fixed by
    /// presolving; MISDP negates (it maximizes `bᵀy`); max-cut reports
    /// the cut value `W − internal`.
    pub fn external_objective(&self, internal: f64) -> f64 {
        match self {
            JobInstance::Stp { graph } => internal + graph.fixed_cost,
            JobInstance::Misdp { .. } => -internal,
            JobInstance::MaxCut { instance } => instance.total_weight() - internal,
        }
    }

    /// The metrics family label of this instance (`stp`, `misdp`,
    /// `maxcut`) — the value of the `family` label on
    /// `ugrs_server_jobs_*` / `ugrs_gateway_jobs_*`.
    pub fn family(&self) -> &'static str {
        match self {
            JobInstance::Stp { .. } => "stp",
            JobInstance::Misdp { .. } => "misdp",
            JobInstance::MaxCut { .. } => "maxcut",
        }
    }
}

/// A base solver serving either application, chosen by the job's
/// instance — the pool worker's reason to exist.
pub enum JobSolver {
    Stp(UgCipSolver<StpPlugins>),
    Misdp(UgCipSolver<MisdpPlugins>),
    /// The instance was fully solved by presolving (an STP graph left
    /// with fewer than two terminals): report the empty solution at
    /// internal objective 0 and exhaust the subproblem immediately.
    /// The per-call path short-circuits this case coordinator-side
    /// ([`crate::apps::stp::ug_solve_stp_distributed`]); a job service
    /// must also survive it arriving over the wire.
    Trivial,
}

impl BaseSolver for JobSolver {
    type Sub = NodeDesc;
    type Sol = Vec<f64>;

    fn solve_subproblem(
        &mut self,
        sub: &NodeDesc,
        known_bound: f64,
        incumbent: Option<&Vec<f64>>,
        ctl: &mut dyn ParaControl<NodeDesc, Vec<f64>>,
    ) -> SubproblemOutcome {
        match self {
            JobSolver::Stp(s) => s.solve_subproblem(sub, known_bound, incumbent, ctl),
            JobSolver::Misdp(s) => s.solve_subproblem(sub, known_bound, incumbent, ctl),
            JobSolver::Trivial => {
                ctl.on_solution(Vec::new(), 0.0);
                SubproblemOutcome { dual_bound: 0.0, nodes: 1, aborted: false }
            }
        }
    }
}

/// Builds the per-job solver factory from a received instance.
pub fn job_factory(instance: &JobInstance) -> SolverFactory<JobSolver> {
    match instance {
        JobInstance::Stp { graph } if graph.num_terminals() < 2 => {
            Arc::new(|_, _| JobSolver::Trivial)
        }
        JobInstance::Stp { graph } => {
            let plugins =
                Arc::new(StpPlugins { graph: Arc::new(graph.clone()), in_tree_reductions: true });
            let inner = UgCipSolver::factory(plugins);
            Arc::new(move |rank, settings| JobSolver::Stp(inner(rank, settings)))
        }
        JobInstance::Misdp { problem } => {
            let plugins = Arc::new(MisdpPlugins { problem: Arc::new(problem.clone()) });
            let inner = UgCipSolver::factory(plugins);
            Arc::new(move |rank, settings| JobSolver::Misdp(inner(rank, settings)))
        }
        JobInstance::MaxCut { instance } => {
            let problem = Arc::new(crate::apps::maxcut::maxcut_to_misdp(instance));
            let plugins = Arc::new(MisdpPlugins { problem });
            let inner = UgCipSolver::factory(plugins);
            Arc::new(move |rank, settings| JobSolver::Misdp(inner(rank, settings)))
        }
    }
}

/// Wraps a base solver with a fixed pre-solve delay, polling the abort
/// flag while waiting so `Terminate`/`AbortSubproblem` stay responsive.
/// A test/benchmark knob: a handicapped worker is reliably
/// mid-subproblem when killed, making death scenarios reproducible.
pub struct DelaySolver<S> {
    pub inner: S,
    pub delay: Duration,
}

impl<S: BaseSolver> BaseSolver for DelaySolver<S> {
    type Sub = S::Sub;
    type Sol = S::Sol;

    fn solve_subproblem(
        &mut self,
        sub: &S::Sub,
        known_bound: f64,
        incumbent: Option<&S::Sol>,
        ctl: &mut dyn ParaControl<S::Sub, S::Sol>,
    ) -> SubproblemOutcome {
        let deadline = std::time::Instant::now() + self.delay;
        while std::time::Instant::now() < deadline {
            if ctl.should_abort() {
                return SubproblemOutcome { dual_bound: known_bound, nodes: 0, aborted: true };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.inner.solve_subproblem(sub, known_bound, incumbent, ctl)
    }
}

/// Joins a `ugd-server` pool and serves mixed STP/MISDP jobs until the
/// server hangs up — what `ugd-worker --serve` calls after parsing its
/// command line.
pub fn serve_jobs(
    addr: &str,
    tag: Option<u64>,
    handicap: Duration,
    status_interval: Duration,
    config: &ProcessCommConfig,
) -> std::io::Result<()> {
    ugrs_core::serve_worker(
        addr,
        tag,
        move |instance: &JobInstance| {
            let inner = job_factory(instance);
            let delay = handicap;
            let factory: SolverFactory<DelaySolver<JobSolver>> =
                Arc::new(move |rank, settings| DelaySolver { inner: inner(rank, settings), delay });
            factory
        },
        status_interval,
        config,
    )
}

/// Builds an STP job spec: reduce coordinator-side (the same §2.2
/// presolve split the per-call path uses), ship the reduced graph.
pub fn stp_job(
    name: impl Into<String>,
    graph: &Graph,
    reduce_params: &ugrs_steiner::reduce::ReduceParams,
) -> SolveJobSpec {
    let mut g = graph.clone();
    ugrs_steiner::reduce::reduce(&mut g, reduce_params);
    job_spec(name, JobInstance::Stp { graph: g })
}

/// Builds a MISDP job spec.
pub fn misdp_job(name: impl Into<String>, problem: &MisdpProblem) -> SolveJobSpec {
    job_spec(name, JobInstance::Misdp { problem: problem.clone() })
}

/// Builds a max-cut job spec; workers derive the MISDP formulation.
pub fn maxcut_job(name: impl Into<String>, instance: &MaxCutInstance) -> SolveJobSpec {
    job_spec(name, JobInstance::MaxCut { instance: instance.clone() })
}

/// The shared tail of the job constructors: root subproblem plus the
/// family label every spec carries for metrics and fleet counts.
fn job_spec(name: impl Into<String>, instance: JobInstance) -> SolveJobSpec {
    let family = instance.family();
    let mut spec = JobSpec::new(name, instance, NodeDesc::root());
    spec.family = Some(family.to_string());
    spec
}

/// The concrete server/client/spec types of the mixed solve service.
pub type SolveServer = ugrs_core::Server<JobInstance, NodeDesc, Vec<f64>>;
pub type SolveClient = ugrs_core::JobClient<JobInstance, NodeDesc, Vec<f64>>;
pub type SolveJobSpec = JobSpec<JobInstance, NodeDesc>;
pub type SolveJobEvent = ugrs_core::JobEvent<Vec<f64>>;
/// The fleet gateway over the mixed solve service — same wire types as
/// [`SolveServer`], so `ugd` talks to either transparently.
pub type SolveGateway = ugrs_core::Gateway<JobInstance, NodeDesc, Vec<f64>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_objective_per_application() {
        let mut g = Graph::default();
        g.fixed_cost = 2.5;
        let stp = JobInstance::Stp { graph: g };
        assert_eq!(stp.external_objective(10.0), 12.5);
        let misdp = JobInstance::Misdp { problem: MisdpProblem::new("t", 1) };
        assert_eq!(misdp.external_objective(-3.0), 3.0);
    }

    #[test]
    fn job_instance_round_trips_through_the_wire_codec() {
        let inst = JobInstance::Misdp { problem: MisdpProblem::new("rt", 2) };
        let framed = ugrs_core::wire::encode(&inst);
        let back: JobInstance = ugrs_core::wire::decode(&framed[4..]).unwrap();
        match back {
            JobInstance::Misdp { problem } => {
                assert_eq!(problem.name, "rt");
                assert_eq!(problem.m, 2);
            }
            other => panic!("decoded as {other:?}"),
        }
    }
}
