//! Branching variable selection: most-fractional and pseudocost rules,
//! with the racing permutation applied as a tie-breaker.

use crate::fractionality;
use crate::model::{Model, VarId, VarType};
use crate::settings::BranchingRule;

/// Pseudocost bookkeeping (SCIP-style): average objective gain per unit
/// of fractionality, separately for up and down branchings.
#[derive(Clone, Debug, Default)]
pub struct Pseudocosts {
    up_sum: Vec<f64>,
    up_cnt: Vec<u32>,
    down_sum: Vec<f64>,
    down_cnt: Vec<u32>,
}

impl Pseudocosts {
    pub fn new(nvars: usize) -> Self {
        Pseudocosts {
            up_sum: vec![0.0; nvars],
            up_cnt: vec![0; nvars],
            down_sum: vec![0.0; nvars],
            down_cnt: vec![0; nvars],
        }
    }

    /// Records the dual-bound gain observed after branching `var`
    /// up/down with the given fractional part.
    pub fn update(&mut self, var: VarId, frac: f64, gain: f64, up: bool) {
        let j = var.0 as usize;
        let unit = if up { 1.0 - frac } else { frac };
        if unit < 1e-6 {
            return;
        }
        let per_unit = (gain / unit).max(0.0);
        if up {
            self.up_sum[j] += per_unit;
            self.up_cnt[j] += 1;
        } else {
            self.down_sum[j] += per_unit;
            self.down_cnt[j] += 1;
        }
    }

    fn cost(&self, j: usize, up: bool) -> Option<f64> {
        let (s, c) = if up {
            (self.up_sum[j], self.up_cnt[j])
        } else {
            (self.down_sum[j], self.down_cnt[j])
        };
        if c == 0 {
            None
        } else {
            Some(s / c as f64)
        }
    }

    /// SCIP's product score with the usual epsilon floor; `None` when the
    /// variable has no history yet.
    pub fn score(&self, var: VarId, frac: f64) -> Option<f64> {
        let j = var.0 as usize;
        let up = self.cost(j, true)?;
        let down = self.cost(j, false)?;
        let eps = 1e-6;
        Some((up * (1.0 - frac)).max(eps) * (down * frac).max(eps))
    }
}

/// A deterministic permutation score derived from a seed — this is the
/// "permutations of variables" diversification the paper attributes to
/// racing ramp-up (§2.2, citing the MIPLIB 2010 performance-variability
/// observation).
#[inline]
pub fn perm_score(seed: u64, var: VarId) -> u64 {
    let mut z = seed ^ (var.0 as u64).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Selects a branching variable among the integer variables fractional
/// in `x`, honouring the configured rule. Returns `None` when `x` is
/// integral on all integer variables.
pub fn select_branching_var(
    model: &Model,
    x: &[f64],
    rule: BranchingRule,
    pcost: &Pseudocosts,
    seed: u64,
) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64, f64, u64)> = None; // (var, val, score, perm)
    for (v, var) in model.vars() {
        if var.vtype == VarType::Continuous {
            continue;
        }
        let val = x[v.0 as usize];
        let frac = fractionality(val);
        if frac <= crate::INT_TOL {
            continue;
        }
        let p = perm_score(seed, v);
        let score = match rule {
            BranchingRule::MostFractional => 0.5 - (frac - 0.5).abs(),
            BranchingRule::FirstIndex => -((p as f64) + v.0 as f64),
            BranchingRule::Pseudocost => {
                let f = val - val.floor();
                pcost.score(v, f).unwrap_or_else(|| 10.0 * (0.5 - (frac - 0.5).abs()))
            }
        };
        let better = match best {
            None => true,
            Some((_, _, bs, bp)) => score > bs + 1e-12 || (score > bs - 1e-12 && p > bp),
        };
        if better {
            best = Some((v, val, score, p));
        }
    }
    best.map(|(v, val, _, _)| (v, val))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn model3() -> Model {
        let mut m = Model::new("t");
        m.add_var("a", VarType::Integer, 0.0, 10.0, 0.0);
        m.add_var("b", VarType::Integer, 0.0, 10.0, 0.0);
        m.add_var("c", VarType::Continuous, 0.0, 10.0, 0.0);
        m
    }

    #[test]
    fn most_fractional_picks_half() {
        let m = model3();
        let pc = Pseudocosts::new(3);
        let x = vec![1.1, 2.5, 3.7];
        let (v, val) = select_branching_var(&m, &x, BranchingRule::MostFractional, &pc, 0).unwrap();
        assert_eq!(v, VarId(1));
        assert_eq!(val, 2.5);
    }

    #[test]
    fn continuous_vars_never_selected() {
        let m = model3();
        let pc = Pseudocosts::new(3);
        let x = vec![1.0, 2.0, 3.7];
        assert!(select_branching_var(&m, &x, BranchingRule::MostFractional, &pc, 0).is_none());
    }

    #[test]
    fn pseudocost_prefers_high_gain_history() {
        let m = model3();
        let mut pc = Pseudocosts::new(3);
        // Variable 0 historically moves the bound a lot.
        for _ in 0..3 {
            pc.update(VarId(0), 0.5, 10.0, true);
            pc.update(VarId(0), 0.5, 10.0, false);
            pc.update(VarId(1), 0.5, 0.01, true);
            pc.update(VarId(1), 0.5, 0.01, false);
        }
        let x = vec![1.4, 2.5, 0.0]; // var 1 is more fractional...
        let (v, _) = select_branching_var(&m, &x, BranchingRule::Pseudocost, &pc, 0).unwrap();
        assert_eq!(v, VarId(0)); // ...but pseudocosts win
    }

    #[test]
    fn permutation_seed_changes_ties() {
        let m = model3();
        let pc = Pseudocosts::new(3);
        let x = vec![1.5, 2.5, 0.0]; // exact tie on fractionality
        let picks: Vec<_> = (0..8)
            .map(|s| select_branching_var(&m, &x, BranchingRule::MostFractional, &pc, s).unwrap().0)
            .collect();
        // Different seeds must not all agree (diversification works).
        assert!(picks.iter().any(|&p| p != picks[0]));
    }

    #[test]
    fn pseudocost_update_ignores_integral_branch_points() {
        let mut pc = Pseudocosts::new(1);
        pc.update(VarId(0), 0.0, 5.0, false); // frac 0 → no unit, ignored
        assert!(pc.score(VarId(0), 0.5).is_none());
    }
}
