//! Built-in domain propagation: activity-based bound tightening on the
//! linear constraints, plus reduced-cost fixing (SCIP-Jack's workhorse,
//! per §3.1 "reduced cost based domain propagation routines").

use crate::model::{Model, VarType};
use crate::INT_TOL;

/// Result of a propagation pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropOutcome {
    Unchanged,
    Tightened,
    Infeasible,
}

/// Infinity guard for activity computations.
const ACT_INF: f64 = 1e50;

fn activity_bounds(terms: &[(crate::model::VarId, f64)], lb: &[f64], ub: &[f64]) -> (f64, f64) {
    let mut min = 0.0;
    let mut max = 0.0;
    for &(v, c) in terms {
        let (l, u) = (lb[v.0 as usize], ub[v.0 as usize]);
        if c > 0.0 {
            min += c * l.max(-ACT_INF);
            max += c * u.min(ACT_INF);
        } else {
            min += c * u.min(ACT_INF);
            max += c * l.max(-ACT_INF);
        }
    }
    (min, max)
}

/// Rounds a tightened bound for integer variables (safe directions).
fn adjust_lb(vtype: VarType, lb: f64) -> f64 {
    match vtype {
        VarType::Continuous => lb,
        _ => (lb - INT_TOL).ceil(),
    }
}

fn adjust_ub(vtype: VarType, ub: f64) -> f64 {
    match vtype {
        VarType::Continuous => ub,
        _ => (ub + INT_TOL).floor(),
    }
}

/// One fixpoint loop of activity-based bound tightening over all linear
/// constraints, modifying `lb`/`ub` in place. `max_rounds` caps the
/// number of passes.
pub fn propagate_linear(
    model: &Model,
    lb: &mut [f64],
    ub: &mut [f64],
    max_rounds: usize,
) -> PropOutcome {
    let tol = crate::FEAS_TOL;
    let mut any = false;
    for _ in 0..max_rounds {
        let mut changed = false;
        for cons in model.conss() {
            let (minact, maxact) = activity_bounds(&cons.terms, lb, ub);
            if minact > cons.rhs + tol || maxact < cons.lhs - tol {
                return PropOutcome::Infeasible;
            }
            // Skip rows whose activity cannot bind.
            if minact >= cons.lhs - tol && maxact <= cons.rhs + tol {
                continue;
            }
            for &(v, c) in &cons.terms {
                let j = v.0 as usize;
                let (l, u) = (lb[j], ub[j]);
                let vtype = model.var(v).vtype;
                // Residual activity without this term.
                let (term_min, term_max) = if c > 0.0 { (c * l, c * u) } else { (c * u, c * l) };
                let res_min = minact - term_min;
                let res_max = maxact - term_max;
                if res_min <= -ACT_INF || res_max >= ACT_INF {
                    continue;
                }
                // lhs ≤ res + c·x ≤ rhs
                let (mut nl, mut nu) = (l, u);
                if c > 0.0 {
                    if cons.rhs < ACT_INF {
                        nu = nu.min((cons.rhs - res_min) / c);
                    }
                    if cons.lhs > -ACT_INF {
                        nl = nl.max((cons.lhs - res_max) / c);
                    }
                } else {
                    if cons.rhs < ACT_INF {
                        nl = nl.max((cons.rhs - res_min) / c);
                    }
                    if cons.lhs > -ACT_INF {
                        nu = nu.min((cons.lhs - res_max) / c);
                    }
                }
                nl = adjust_lb(vtype, nl);
                nu = adjust_ub(vtype, nu);
                if nl > u + tol || nu < l - tol || nl > nu + tol {
                    return PropOutcome::Infeasible;
                }
                if nl > l + 1e-9 {
                    lb[j] = nl.min(nu.max(l));
                    changed = true;
                }
                if nu < u - 1e-9 {
                    ub[j] = nu.max(lb[j]);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        any = true;
    }
    if any {
        PropOutcome::Tightened
    } else {
        PropOutcome::Unchanged
    }
}

/// Reduced-cost fixing: given an LP-optimal node with objective `lp_obj`
/// and reduced costs `redcost`, and a cutoff bound (incumbent objective),
/// tightens bounds of nonbasic variables whose movement would push the
/// objective past the cutoff. Returns the number of tightenings.
pub fn redcost_fixing(
    model: &Model,
    x: &[f64],
    redcost: &[f64],
    lp_obj: f64,
    cutoff: f64,
    lb: &mut [f64],
    ub: &mut [f64],
) -> usize {
    if !cutoff.is_finite() {
        return 0;
    }
    let slack = cutoff - lp_obj;
    if slack <= 0.0 {
        return 0;
    }
    let mut fixed = 0;
    for j in 0..model.num_vars() {
        let d = redcost[j];
        let v = crate::model::VarId(j as u32);
        let vtype = model.var(v).vtype;
        if d > 1e-9 && (x[j] - lb[j]).abs() < 1e-7 {
            // At lower bound; raising x_j costs d per unit.
            let max_up = slack / d;
            let new_ub = adjust_ub(vtype, lb[j] + max_up);
            if new_ub < ub[j] - 1e-9 {
                ub[j] = new_ub.max(lb[j]);
                fixed += 1;
            }
        } else if d < -1e-9 && (ub[j] - x[j]).abs() < 1e-7 {
            let max_down = slack / (-d);
            let new_lb = adjust_lb(vtype, ub[j] - max_down);
            if new_lb > lb[j] + 1e-9 {
                lb[j] = new_lb.min(ub[j]);
                fixed += 1;
            }
        }
    }
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, VarType};

    #[test]
    fn tightens_from_knapsack_row() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0, 0.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 10.0, 0.0);
        m.add_linear(f64::NEG_INFINITY, 5.0, &[(x, 2.0), (y, 3.0)]);
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![10.0, 10.0];
        let out = propagate_linear(&m, &mut lb, &mut ub, 5);
        assert_eq!(out, PropOutcome::Tightened);
        assert_eq!(ub[x.0 as usize], 2.0); // 2x <= 5 → x <= 2 (integer)
        assert_eq!(ub[y.0 as usize], 1.0); // 3y <= 5 → y <= 1
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0, 0.0);
        m.add_linear(5.0, f64::INFINITY, &[(x, 1.0)]);
        let mut lb = vec![0.0];
        let mut ub = vec![1.0];
        assert_eq!(propagate_linear(&m, &mut lb, &mut ub, 5), PropOutcome::Infeasible);
    }

    #[test]
    fn equality_fixes_chain() {
        // x + y = 2 with y fixed to 0 → x = 2.
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0, 0.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0, 0.0);
        m.add_linear(2.0, 2.0, &[(x, 1.0), (y, 1.0)]);
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![10.0, 0.0];
        propagate_linear(&m, &mut lb, &mut ub, 5);
        assert!((lb[x.0 as usize] - 2.0).abs() < 1e-9);
        assert!((ub[x.0 as usize] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_coefficients() {
        // -x + y <= -3, y in [0,1] → x >= 3 - ... : -x <= -3 - y... let's
        // check: activity = -x + y ≤ -3 → x ≥ y + 3 ≥ 3.
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0, 0.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 1.0, 0.0);
        m.add_linear(f64::NEG_INFINITY, -3.0, &[(x, -1.0), (y, 1.0)]);
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![10.0, 1.0];
        propagate_linear(&m, &mut lb, &mut ub, 5);
        assert!(lb[x.0 as usize] >= 3.0 - 1e-9, "lb = {}", lb[0]);
    }

    #[test]
    fn redcost_fixing_binary() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Binary, 0.0, 1.0, 5.0);
        let _ = x;
        let mut lb = vec![0.0];
        let mut ub = vec![1.0];
        // LP obj 10, cutoff 12, x at lower with redcost 5: raising x by
        // more than 0.4 exceeds cutoff → binary x fixed to 0.
        let n = redcost_fixing(&m, &[0.0], &[5.0], 10.0, 12.0, &mut lb, &mut ub);
        assert_eq!(n, 1);
        assert_eq!(ub[0], 0.0);
    }

    #[test]
    fn redcost_fixing_requires_slack() {
        let mut m = Model::new("t");
        m.add_var("x", VarType::Binary, 0.0, 1.0, 5.0);
        let mut lb = vec![0.0];
        let mut ub = vec![1.0];
        assert_eq!(redcost_fixing(&m, &[0.0], &[5.0], 10.0, 10.0, &mut lb, &mut ub), 0);
        assert_eq!(redcost_fixing(&m, &[0.0], &[5.0], 10.0, f64::INFINITY, &mut lb, &mut ub), 0);
    }
}
