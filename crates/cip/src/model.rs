//! The problem container: variables, linear constraints, objective.

use crate::settings::Settings;
use crate::solver::{NoHooks, SolveResult, Solver};

/// Index of a variable in a [`Model`].
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct VarId(pub u32);

/// Variable integrality class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum VarType {
    /// Integer restricted to `{0, 1}` (bounds are clipped to `[0, 1]`).
    Binary,
    /// General integer.
    Integer,
    /// Continuous.
    Continuous,
}

/// A variable's static data.
#[derive(Clone, Debug)]
pub struct Var {
    pub name: String,
    pub vtype: VarType,
    pub lb: f64,
    pub ub: f64,
    /// Objective coefficient in the internal (minimization) sense.
    pub obj: f64,
}

/// A ranged linear constraint `lhs ≤ Σ coef·x ≤ rhs`.
#[derive(Clone, Debug)]
pub struct LinCons {
    pub name: String,
    pub lhs: f64,
    pub rhs: f64,
    pub terms: Vec<(VarId, f64)>,
}

impl LinCons {
    /// Activity at point `x`.
    pub fn activity(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * x[v.0 as usize]).sum()
    }

    /// Feasibility at `x` within `tol`.
    pub fn is_satisfied(&self, x: &[f64], tol: f64) -> bool {
        let a = self.activity(x);
        a >= self.lhs - tol && a <= self.rhs + tol
    }
}

/// A constraint integer program under construction.
///
/// The model always *minimizes internally*; [`Model::set_maximize`] flips
/// the objective sign on entry and results are reported back in the
/// user's sense.
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub name: String,
    pub(crate) vars: Vec<Var>,
    pub(crate) conss: Vec<LinCons>,
    pub(crate) maximize: bool,
    pub obj_offset: f64,
}

impl Model {
    /// Empty model with the given name.
    pub fn new(name: &str) -> Self {
        Model { name: name.to_string(), ..Default::default() }
    }

    /// Adds a variable; `obj` is in the user's objective sense.
    pub fn add_var(&mut self, name: &str, vtype: VarType, lb: f64, ub: f64, obj: f64) -> VarId {
        let (lb, ub) = match vtype {
            VarType::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        assert!(lb <= ub, "bounds crossed for {name}: [{lb}, {ub}]");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Var {
            name: format!("{}{}", name, id.0),
            vtype,
            lb,
            ub,
            obj: if self.maximize { -obj } else { obj },
        });
        id
    }

    /// Adds a ranged linear constraint.
    pub fn add_linear(&mut self, lhs: f64, rhs: f64, terms: &[(VarId, f64)]) -> usize {
        assert!(lhs <= rhs, "constraint sides crossed: [{lhs}, {rhs}]");
        let idx = self.conss.len();
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!((v.0 as usize) < self.vars.len(), "unknown variable");
            if c == 0.0 {
                continue;
            }
            if let Some(e) = merged.iter_mut().find(|(w, _)| *w == v) {
                e.1 += c;
            } else {
                merged.push((v, c));
            }
        }
        self.conss.push(LinCons { name: format!("c{idx}"), lhs, rhs, terms: merged });
        idx
    }

    /// Switches the objective sense to maximization. Must be called
    /// *before* adding variables (coefficients are negated on entry).
    pub fn set_maximize(&mut self) {
        assert!(self.vars.is_empty(), "set_maximize must precede add_var");
        self.maximize = true;
    }

    /// True if the user sense is maximization.
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Converts an internal (minimization) objective value to the user's
    /// sense.
    pub fn external_obj(&self, internal: f64) -> f64 {
        if self.maximize {
            -(internal + self.obj_offset)
        } else {
            internal + self.obj_offset
        }
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_conss(&self) -> usize {
        self.conss.len()
    }

    pub fn var(&self, v: VarId) -> &Var {
        &self.vars[v.0 as usize]
    }

    pub(crate) fn var_mut(&mut self, v: VarId) -> &mut Var {
        &mut self.vars[v.0 as usize]
    }

    pub fn cons(&self, i: usize) -> &LinCons {
        &self.conss[i]
    }

    /// Iterates over all variables with their ids.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &Var)> {
        self.vars.iter().enumerate().map(|(i, v)| (VarId(i as u32), v))
    }

    /// Iterates over all linear constraints.
    pub fn conss(&self) -> impl Iterator<Item = &LinCons> {
        self.conss.iter()
    }

    /// True if every variable with an integrality requirement takes an
    /// integral value in `x` and all linear constraints hold.
    pub fn check_solution(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (i, var) in self.vars.iter().enumerate() {
            if x[i] < var.lb - tol || x[i] > var.ub + tol {
                return false;
            }
            if var.vtype != VarType::Continuous && (x[i] - x[i].round()).abs() > tol {
                return false;
            }
        }
        self.conss.iter().all(|c| c.is_satisfied(x, tol))
    }

    /// Internal-sense objective value (minimization, no offset).
    pub(crate) fn internal_obj(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Objective value at `x` in the user's sense.
    pub fn obj_value(&self, x: &[f64]) -> f64 {
        self.external_obj(self.internal_obj(x))
    }

    /// True if every objective coefficient is integral — enables the
    /// stronger "integral objective" cutoff in the solver.
    pub fn has_integral_objective(&self) -> bool {
        self.vars.iter().all(|v| {
            (v.obj - v.obj.round()).abs() < 1e-12
                && (v.vtype != VarType::Continuous || v.obj == 0.0)
        }) && (self.obj_offset - self.obj_offset.round()).abs() < 1e-12
    }

    /// Convenience: solve this model with default plugins and no hooks.
    pub fn optimize(&self, settings: Settings) -> SolveResult {
        let mut solver = Solver::new(self.clone(), settings);
        solver.solve(&mut NoHooks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_bounds_are_clipped() {
        let mut m = Model::new("t");
        let v = m.add_var("x", VarType::Binary, -3.0, 7.0, 1.0);
        assert_eq!((m.var(v).lb, m.var(v).ub), (0.0, 1.0));
    }

    #[test]
    fn maximize_flips_objective() {
        let mut m = Model::new("t");
        m.set_maximize();
        let v = m.add_var("x", VarType::Continuous, 0.0, 1.0, 5.0);
        assert_eq!(m.var(v).obj, -5.0);
        assert_eq!(m.obj_value(&[1.0]), 5.0);
    }

    #[test]
    fn check_solution_enforces_integrality() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0, 1.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0, 1.0);
        m.add_linear(0.0, 5.0, &[(x, 1.0), (y, 1.0)]);
        assert!(m.check_solution(&[2.0, 1.5], 1e-6));
        assert!(!m.check_solution(&[2.5, 1.5], 1e-6));
        assert!(!m.check_solution(&[2.0, 4.0], 1e-6)); // row violated
    }

    #[test]
    fn integral_objective_detection() {
        let mut m = Model::new("t");
        m.add_var("x", VarType::Integer, 0.0, 1.0, 2.0);
        assert!(m.has_integral_objective());
        m.add_var("y", VarType::Integer, 0.0, 1.0, 0.5);
        assert!(!m.has_integral_objective());
    }

    #[test]
    fn linear_merges_duplicates() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0, 0.0);
        let idx = m.add_linear(0.0, 1.0, &[(x, 1.0), (x, 1.5)]);
        assert_eq!(m.cons(idx).terms, vec![(x, 2.5)]);
    }
}
