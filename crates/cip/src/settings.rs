//! Solver parameter settings and emphasis presets.
//!
//! UG's racing ramp-up (§2.2 of the paper) relies on running the same
//! solver under *different parameter settings and permutations of
//! variables* so that each racer explores a different tree. The knobs
//! gathered here are exactly the ones the racing settings generator in
//! `ugrs-glue` varies.

/// Which rule picks the branching variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BranchingRule {
    /// Most fractional variable.
    MostFractional,
    /// Pseudocost product score (SCIP-style), falling back to most
    /// fractional while pseudocosts are uninitialized.
    Pseudocost,
    /// First fractional variable in (permuted) index order.
    FirstIndex,
}

/// Node selection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NodeSelection {
    /// Best dual bound first (default).
    BestBound,
    /// Depth-first (plunging; finds incumbents early, uses little memory).
    DepthFirst,
    /// Best bound, but prefer children of the last node (plunge a little).
    Hybrid,
}

/// Emphasis presets mirroring SCIP's `set emphasis` / `easycip` settings
/// referenced by the paper's Figure 1 discussion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Emphasis {
    Default,
    /// "easycip": light presolving/separation, cheap heuristics — the
    /// emphasis most often winning the racing on CLS instances.
    EasyCip,
    /// Aggressive heuristics.
    Feasibility,
    /// Aggressive separation + propagation, fewer heuristics.
    Optimality,
}

/// All tunable parameters of the [`crate::Solver`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Settings {
    pub emphasis: Emphasis,
    pub branching: BranchingRule,
    pub node_selection: NodeSelection,
    /// Maximum separation rounds at the root node.
    pub root_sepa_rounds: usize,
    /// Maximum separation rounds at non-root nodes.
    pub node_sepa_rounds: usize,
    /// Run primal heuristics at nodes whose depth is a multiple of this
    /// (0 disables heuristics except at the root).
    pub heur_frequency: usize,
    /// Presolve fixpoint rounds (0 disables presolving).
    pub presolve_rounds: usize,
    /// Enable reduced-cost fixing.
    pub use_redcost_fixing: bool,
    /// Enable activity-based linear propagation.
    pub use_propagation: bool,
    /// Node limit (u64::MAX = unlimited).
    pub node_limit: u64,
    /// Wall-clock limit in seconds (f64::INFINITY = unlimited).
    pub time_limit: f64,
    /// Stop when gap (|primal−dual| / max(|primal|,1)) falls below this.
    pub gap_limit: f64,
    /// Seed for the variable permutation applied to tie-breaking in
    /// pricing/branching — the racing diversification device of §2.2.
    pub permutation_seed: u64,
    /// Use a registered relaxator instead of the LP relaxation
    /// (SCIP-SDP's "SDP settings"); ignored when no relaxator is present.
    pub use_relaxator: bool,
    /// LP iteration limit handed to the simplex per solve.
    pub lp_iter_limit: usize,
    /// Maximum cut rows kept in the LP; beyond this, aged-out cuts are
    /// dropped and the LP is rebuilt (SCIP's cut aging).
    pub max_cut_rows: usize,
    /// A cut is dropped at rebuild when it has been slack (zero dual) for
    /// this many consecutive LP solutions.
    pub cut_max_age: u32,
    /// Enable the LP diving heuristic (fix-and-resolve toward an integral
    /// point, SCIP's fracdiving), run alongside the other heuristics.
    pub use_diving: bool,
    /// Maximum diving depth per invocation.
    pub dive_depth: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            emphasis: Emphasis::Default,
            branching: BranchingRule::Pseudocost,
            node_selection: NodeSelection::BestBound,
            root_sepa_rounds: 50,
            node_sepa_rounds: 5,
            heur_frequency: 10,
            presolve_rounds: 5,
            use_redcost_fixing: true,
            use_propagation: true,
            node_limit: u64::MAX,
            time_limit: f64::INFINITY,
            gap_limit: 0.0,
            permutation_seed: 0,
            use_relaxator: false,
            lp_iter_limit: 5_000,
            max_cut_rows: 250,
            cut_max_age: 3,
            use_diving: true,
            dive_depth: 12,
        }
    }
}

impl Settings {
    /// Applies an emphasis preset to the dependent knobs, returning the
    /// adjusted settings (the explicit fields above keep their values
    /// unless the preset overrides them).
    pub fn with_emphasis(mut self, e: Emphasis) -> Self {
        self.emphasis = e;
        match e {
            Emphasis::Default => {}
            Emphasis::EasyCip => {
                self.presolve_rounds = 1;
                self.root_sepa_rounds = 10;
                self.node_sepa_rounds = 1;
                self.heur_frequency = 20;
            }
            Emphasis::Feasibility => {
                self.heur_frequency = 1;
                self.node_selection = NodeSelection::DepthFirst;
            }
            Emphasis::Optimality => {
                self.root_sepa_rounds = 100;
                self.node_sepa_rounds = 10;
                self.heur_frequency = 50;
            }
        }
        self
    }

    /// Seeded variant for racing diversification.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.permutation_seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emphasis_presets_change_knobs() {
        let d = Settings::default();
        let e = Settings::default().with_emphasis(Emphasis::EasyCip);
        assert!(e.root_sepa_rounds < d.root_sepa_rounds);
        assert_eq!(e.emphasis, Emphasis::EasyCip);
        let f = Settings::default().with_emphasis(Emphasis::Feasibility);
        assert_eq!(f.node_selection, NodeSelection::DepthFirst);
        assert_eq!(f.heur_frequency, 1);
    }

    #[test]
    fn seeding() {
        let s = Settings::default().with_seed(42);
        assert_eq!(s.permutation_seed, 42);
    }
}
