//! The primal-heuristic plugin engine.
//!
//! SCIP schedules each primal heuristic individually — frequency, depth
//! offset, priority, and budgets decide when a heuristic runs at a node.
//! This module reproduces that model on top of the framework's
//! [`Heuristic`] plugin point:
//!
//! * [`PrimalHeuristic`] is the scheduled plugin trait: a heuristic plus
//!   its [`HeurSchedule`] (how often, from which depth, under which call
//!   and time budgets, in which order);
//! * [`HeurEngine`] owns the registered heuristics, decides per node
//!   which are due, accounts calls/hits/time per heuristic, and reports
//!   [`HeurStats`] so a run can show which heuristic found what;
//! * legacy [`Heuristic`] plugins are adapted
//!   transparently (run every heuristic round, unlimited budget), so
//!   existing plugin sets keep working unchanged.
//!
//! The solver's main loop still gates heuristic *rounds* globally by
//! `Settings::heur_frequency`; within a round, the engine applies each
//! heuristic's own schedule. Candidates returned by heuristics are
//! validated by the framework before installation, and accepted
//! incumbents flow through `ControlHooks::on_incumbent` — which is how a
//! heuristic-found solution enters UG's incumbent exchange and reaches
//! every other ParaSolver.

use crate::plugins::{Heuristic, SolveCtx};
use std::time::{Duration, Instant};

/// When and under which budgets a [`PrimalHeuristic`] runs.
#[derive(Clone, Copy, Debug)]
pub struct HeurSchedule {
    /// Run at nodes whose depth is `depth_offset + k·frequency`;
    /// `0` means: only at `depth == depth_offset`.
    pub frequency: usize,
    /// Shallowest depth at which the heuristic may run.
    pub depth_offset: usize,
    /// Maximum calls over the whole solve (`u64::MAX` = unlimited).
    pub max_calls: u64,
    /// Total wall-clock budget across all calls; once exceeded the
    /// heuristic is retired for the rest of the solve.
    pub time_budget: Duration,
    /// Higher-priority heuristics run first within a round.
    pub priority: i32,
}

impl Default for HeurSchedule {
    fn default() -> Self {
        HeurSchedule {
            frequency: 1,
            depth_offset: 0,
            max_calls: u64::MAX,
            time_budget: Duration::MAX,
            priority: 0,
        }
    }
}

impl HeurSchedule {
    /// True when a heuristic with this schedule is due at `depth`.
    pub fn due_at(&self, depth: usize) -> bool {
        if depth < self.depth_offset {
            return false;
        }
        let rel = depth - self.depth_offset;
        if self.frequency == 0 {
            rel == 0
        } else {
            rel.is_multiple_of(self.frequency)
        }
    }
}

/// A primal heuristic with an individual schedule — the plugin trait
/// problem solvers implement to feed incumbents into the search (and,
/// under UG, into the incumbent exchange).
pub trait PrimalHeuristic: Send {
    /// Identifier shown in statistics.
    fn name(&self) -> &str;

    /// The schedule this heuristic registers under (overridable at
    /// registration time via [`HeurEngine::add_with_schedule`]).
    fn default_schedule(&self) -> HeurSchedule {
        HeurSchedule::default()
    }

    /// Produces a candidate assignment, or `None`. The framework
    /// validates the candidate before installing it.
    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>>;
}

/// Adapter running a legacy [`Heuristic`] plugin under the engine with
/// the default (always-due, unlimited) schedule.
struct LegacyHeuristic(Box<dyn Heuristic>);

impl PrimalHeuristic for LegacyHeuristic {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        self.0.run(ctx)
    }
}

/// Per-heuristic accounting, reported by [`HeurEngine::stats`].
#[derive(Clone, Debug)]
pub struct HeurStats {
    /// The heuristic's name.
    pub name: String,
    /// Times the heuristic ran.
    pub calls: u64,
    /// Candidates that were installed as improving incumbents.
    pub hits: u64,
    /// Total wall-clock time spent inside the heuristic.
    pub time: Duration,
    /// Best internal-sense objective among its installed candidates.
    pub best_obj: Option<f64>,
}

/// One registered heuristic plus its live accounting.
pub struct HeurEntry {
    heur: Box<dyn PrimalHeuristic>,
    schedule: HeurSchedule,
    calls: u64,
    hits: u64,
    spent: Duration,
}

impl HeurEntry {
    /// True when schedule and budgets allow a call at `depth`.
    fn due(&self, depth: usize) -> bool {
        self.calls < self.schedule.max_calls
            && self.spent < self.schedule.time_budget
            && self.schedule.due_at(depth)
    }

    /// Runs the heuristic, charging the call and its time.
    pub fn call(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        let start = Instant::now();
        let cand = self.heur.run(ctx);
        self.calls += 1;
        self.spent = self.spent.saturating_add(start.elapsed());
        cand
    }

    /// Credits an installed improving incumbent to this heuristic.
    pub fn credit_hit(&mut self) {
        self.hits += 1;
    }
}

/// The engine owning every registered primal heuristic.
#[derive(Default)]
pub struct HeurEngine {
    entries: Vec<HeurEntry>,
    /// Best installed objective per entry index (parallel to `entries`;
    /// kept separate so `HeurEntry` stays `Copy`-free but small).
    best: Vec<Option<f64>>,
}

impl HeurEngine {
    /// Registers a heuristic under its own default schedule.
    pub fn add(&mut self, heur: Box<dyn PrimalHeuristic>) {
        let schedule = heur.default_schedule();
        self.add_with_schedule(heur, schedule);
    }

    /// Registers a heuristic under an explicit schedule, overriding its
    /// default. Entries stay sorted by descending priority (stable, so
    /// registration order breaks ties).
    pub fn add_with_schedule(&mut self, heur: Box<dyn PrimalHeuristic>, schedule: HeurSchedule) {
        self.entries.push(HeurEntry { heur, schedule, calls: 0, hits: 0, spent: Duration::ZERO });
        self.best.push(None);
        // Stable insertion keeps equal priorities in registration order.
        let mut i = self.entries.len() - 1;
        while i > 0 && self.entries[i - 1].schedule.priority < self.entries[i].schedule.priority {
            self.entries.swap(i - 1, i);
            self.best.swap(i - 1, i);
            i -= 1;
        }
    }

    /// Registers a legacy [`Heuristic`] plugin (always-due schedule).
    pub fn add_legacy(&mut self, heur: Box<dyn Heuristic>) {
        self.add(Box::new(LegacyHeuristic(heur)));
    }

    /// Removes every registered heuristic.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.best.clear();
    }

    /// Number of registered heuristics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no heuristic is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Indices (in priority order) of the heuristics due at `depth`.
    pub fn due_indices(&self, depth: usize) -> Vec<usize> {
        (0..self.entries.len()).filter(|&i| self.entries[i].due(depth)).collect()
    }

    /// The entry at `i` (as returned by [`Self::due_indices`]).
    pub fn entry_mut(&mut self, i: usize) -> &mut HeurEntry {
        &mut self.entries[i]
    }

    /// Records that entry `i`'s candidate was installed at `obj`.
    pub fn record_hit(&mut self, i: usize, obj: f64) {
        self.entries[i].credit_hit();
        let best = &mut self.best[i];
        if best.is_none_or(|b| obj < b) {
            *best = Some(obj);
        }
    }

    /// Per-heuristic call/hit/time accounting.
    pub fn stats(&self) -> Vec<HeurStats> {
        self.entries
            .iter()
            .zip(&self.best)
            .map(|(e, best)| HeurStats {
                name: e.heur.name().to_string(),
                calls: e.calls,
                hits: e.hits,
                time: e.spent,
                best_obj: *best,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed {
        name: &'static str,
        schedule: HeurSchedule,
    }

    impl PrimalHeuristic for Fixed {
        fn name(&self) -> &str {
            self.name
        }
        fn default_schedule(&self) -> HeurSchedule {
            self.schedule
        }
        fn run(&mut self, _ctx: &mut SolveCtx) -> Option<Vec<f64>> {
            None
        }
    }

    #[test]
    fn schedule_due_at() {
        let s = HeurSchedule { frequency: 4, depth_offset: 2, ..Default::default() };
        assert!(!s.due_at(0));
        assert!(!s.due_at(1));
        assert!(s.due_at(2));
        assert!(!s.due_at(3));
        assert!(s.due_at(6));
        let root_only = HeurSchedule { frequency: 0, ..Default::default() };
        assert!(root_only.due_at(0));
        assert!(!root_only.due_at(1));
    }

    #[test]
    fn priority_orders_entries() {
        let mut eng = HeurEngine::default();
        let mk = |name, priority| {
            Box::new(Fixed { name, schedule: HeurSchedule { priority, ..Default::default() } })
        };
        eng.add(mk("low", -1));
        eng.add(mk("high", 10));
        eng.add(mk("mid", 0));
        let names: Vec<String> = eng.stats().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["high", "mid", "low"]);
        assert_eq!(eng.due_indices(0), vec![0, 1, 2]);
    }

    #[test]
    fn call_budget_retires_a_heuristic() {
        let mut eng = HeurEngine::default();
        eng.add(Box::new(Fixed {
            name: "capped",
            schedule: HeurSchedule { max_calls: 2, ..Default::default() },
        }));
        assert_eq!(eng.due_indices(0), vec![0]);
        eng.entries[0].calls = 2;
        assert!(eng.due_indices(0).is_empty(), "exhausted call budget must retire the entry");
    }

    #[test]
    fn hits_and_best_obj_are_accounted() {
        let mut eng = HeurEngine::default();
        eng.add(Box::new(Fixed { name: "h", schedule: HeurSchedule::default() }));
        eng.record_hit(0, 5.0);
        eng.record_hit(0, 3.0);
        eng.record_hit(0, 4.0);
        let s = &eng.stats()[0];
        assert_eq!(s.hits, 3);
        assert_eq!(s.best_obj, Some(3.0));
    }
}
