//! Primal solutions.

use crate::model::Model;

/// A feasible primal solution with its objective value.
///
/// The objective is stored in the *internal* (minimization, offset-free)
/// sense; use [`Model::external_obj`] for reporting.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Solution {
    pub x: Vec<f64>,
    /// Internal-sense objective value.
    pub obj: f64,
}

impl Solution {
    /// Builds a solution, computing its objective from the model.
    pub fn new(model: &Model, x: Vec<f64>) -> Self {
        let obj = model.internal_obj(&x);
        Solution { x, obj }
    }

    /// Rounds all integer variables to the nearest integer in place
    /// (useful after numerically noisy LP/SDP solves).
    pub fn round_integers(&mut self, model: &Model) {
        for (i, var) in model.vars.iter().enumerate() {
            if var.vtype != crate::VarType::Continuous {
                self.x[i] = self.x[i].round();
            }
        }
        self.obj = model.internal_obj(&self.x);
    }
}

/// Keeps the best-known solution and a bounded history of improvements
/// (objective, at-node), mirroring SCIP's primal log.
#[derive(Clone, Debug, Default)]
pub struct Incumbents {
    best: Option<Solution>,
    /// (node count at improvement, internal objective).
    pub history: Vec<(u64, f64)>,
}

impl Incumbents {
    pub fn best(&self) -> Option<&Solution> {
        self.best.as_ref()
    }

    pub fn best_obj(&self) -> Option<f64> {
        self.best.as_ref().map(|s| s.obj)
    }

    /// Installs `sol` if it improves on the incumbent (strictly, by more
    /// than `1e-9`). Returns true on improvement.
    pub fn try_install(&mut self, sol: Solution, at_node: u64) -> bool {
        let improves = match &self.best {
            None => true,
            Some(b) => sol.obj < b.obj - 1e-9,
        };
        if improves {
            self.history.push((at_node, sol.obj));
            self.best = Some(sol);
        }
        improves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, VarType};

    #[test]
    fn incumbent_keeps_best() {
        let mut m = Model::new("t");
        m.add_var("x", VarType::Continuous, 0.0, 10.0, 1.0);
        let mut inc = Incumbents::default();
        assert!(inc.try_install(Solution::new(&m, vec![5.0]), 0));
        assert!(!inc.try_install(Solution::new(&m, vec![7.0]), 1));
        assert!(inc.try_install(Solution::new(&m, vec![2.0]), 2));
        assert_eq!(inc.best_obj(), Some(2.0));
        assert_eq!(inc.history.len(), 2);
    }

    #[test]
    fn round_integers_recomputes_obj() {
        let mut m = Model::new("t");
        m.add_var("x", VarType::Integer, 0.0, 10.0, 2.0);
        let mut s = Solution::new(&m, vec![2.9999999]);
        s.round_integers(&m);
        assert_eq!(s.x[0], 3.0);
        assert_eq!(s.obj, 6.0);
    }
}
