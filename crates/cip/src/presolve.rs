//! Global presolving: the fixpoint loop the paper's *layered presolving*
//! scheme re-runs inside every ParaSolver on each received subproblem
//! (§2.2). The loop combines the built-in reductions below with any
//! registered [`crate::plugins::Presolver`] plugins.

use crate::model::Model;
use crate::propagation::{propagate_linear, PropOutcome};

/// Summary of a presolve run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Bound tightenings applied (counted per round, not per variable).
    pub rounds_with_reductions: usize,
    /// Constraints removed as redundant.
    pub removed_conss: usize,
    /// Variables fixed (lb == ub after presolve, but not before).
    pub fixed_vars: usize,
    /// Whether global infeasibility was detected.
    pub infeasible: bool,
}

/// Runs the built-in presolve loop in place: activity-based global bound
/// tightening and redundant-constraint removal, to a fixpoint (capped at
/// `max_rounds`).
pub fn presolve(model: &mut Model, max_rounds: usize) -> PresolveStats {
    let mut stats = PresolveStats::default();
    if max_rounds == 0 {
        return stats;
    }
    let fixed_before = count_fixed(model);
    for _ in 0..max_rounds {
        let mut lb: Vec<f64> = model.vars().map(|(_, v)| v.lb).collect();
        let mut ub: Vec<f64> = model.vars().map(|(_, v)| v.ub).collect();
        let out = propagate_linear(model, &mut lb, &mut ub, 3);
        match out {
            PropOutcome::Infeasible => {
                stats.infeasible = true;
                return stats;
            }
            PropOutcome::Tightened => {
                for (i, (l, u)) in lb.iter().zip(ub.iter()).enumerate() {
                    let var = model.var_mut(crate::model::VarId(i as u32));
                    var.lb = *l;
                    var.ub = *u;
                }
                stats.rounds_with_reductions += 1;
            }
            PropOutcome::Unchanged => {}
        }
        // Redundant row removal: rows that can never bind under the
        // current global bounds.
        let before = model.num_conss();
        let lbv: Vec<f64> = model.vars().map(|(_, v)| v.lb).collect();
        let ubv: Vec<f64> = model.vars().map(|(_, v)| v.ub).collect();
        model.conss.retain(|c| {
            let mut min = 0.0;
            let mut max = 0.0;
            for &(v, coef) in &c.terms {
                let (l, u) = (lbv[v.0 as usize], ubv[v.0 as usize]);
                if coef > 0.0 {
                    min += coef * l;
                    max += coef * u;
                } else {
                    min += coef * u;
                    max += coef * l;
                }
            }
            !(min >= c.lhs - 1e-9 && max <= c.rhs + 1e-9)
        });
        let removed = before - model.num_conss();
        stats.removed_conss += removed;
        if out == PropOutcome::Unchanged && removed == 0 {
            break;
        }
    }
    stats.fixed_vars = count_fixed(model).saturating_sub(fixed_before);
    stats
}

fn count_fixed(model: &Model) -> usize {
    model.vars().filter(|(_, v)| v.lb == v.ub).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, VarType};

    #[test]
    fn removes_redundant_rows() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0, 0.0);
        m.add_linear(f64::NEG_INFINITY, 100.0, &[(x, 1.0)]); // never binds
        m.add_linear(f64::NEG_INFINITY, 0.5, &[(x, 1.0)]); // absorbed into the bound
        let stats = presolve(&mut m, 3);
        // The binding row is folded into ub(x) = 0.5, after which both rows
        // are redundant and removed.
        assert_eq!(stats.removed_conss, 2);
        assert_eq!(m.num_conss(), 0);
        assert_eq!(m.var(x).ub, 0.5);
        assert!(!stats.infeasible);
    }

    #[test]
    fn tightens_and_fixes() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0, 0.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 10.0, 0.0);
        m.add_linear(0.0, 0.0, &[(x, 1.0), (y, 1.0)]); // x + y = 0 → both 0
        let stats = presolve(&mut m, 5);
        assert!(stats.fixed_vars >= 2);
        assert_eq!(m.var(x).ub, 0.0);
        assert_eq!(m.var(y).ub, 0.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0, 0.0);
        m.add_linear(3.0, f64::INFINITY, &[(x, 1.0)]);
        assert!(presolve(&mut m, 3).infeasible);
    }

    #[test]
    fn zero_rounds_is_noop() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0, 0.0);
        m.add_linear(f64::NEG_INFINITY, 100.0, &[(x, 1.0)]);
        let stats = presolve(&mut m, 0);
        assert_eq!(stats, PresolveStats::default());
        assert_eq!(m.num_conss(), 1);
    }
}
