//! A SCIP-shaped constraint integer programming (CIP) framework.
//!
//! This crate reproduces, at reduced scale, the architecture of SCIP as
//! the paper describes it (§2.1): a **branch-cut-and-bound framework with
//! a modular plugin structure**, solving constraint integer programs by
//! LP-relaxation-based branch and bound. Problem-specific solvers — the
//! Steiner solver in `ugrs-steiner` (SCIP-Jack) and the MISDP solver in
//! `ugrs-misdp` (SCIP-SDP) — are built *on top of* this framework by
//! registering plugins, exactly like SCIP applications register theirs:
//!
//! * [`plugins::ConstraintHandler`] — non-linear/combinatorial constraints
//!   enforced by lazy cuts or feasibility checks (directed Steiner cuts,
//!   SDP eigenvector cuts),
//! * [`plugins::Separator`] — cutting planes for fractional LP solutions,
//! * [`plugins::Propagator`] — domain propagation,
//! * [`plugins::Heuristic`] — primal heuristics,
//! * [`plugins::BranchRule`] — custom branching,
//! * [`plugins::Relaxator`] — alternative relaxations (the SDP relaxation
//!   of SCIP-SDP's nonlinear branch-and-bound mode),
//! * [`plugins::Presolver`] — problem-specific presolving.
//!
//! The framework itself ships default plugins: activity-based linear
//! propagation and reduced-cost fixing, rounding and diving heuristics,
//! most-fractional and pseudocost branching, and a presolving loop — so a
//! plain MIP can be solved with no user plugins at all.
//!
//! # Example: a tiny knapsack MIP
//!
//! ```
//! use ugrs_cip::{Model, Settings, VarType, SolveStatus};
//!
//! let mut m = Model::new("knapsack");
//! m.set_maximize();
//! let items = [(4.0, 12.0), (2.0, 7.0), (1.0, 4.0), (3.0, 9.0)];
//! let vars: Vec<_> = items
//!     .iter()
//!     .map(|&(_, p)| m.add_var("x", VarType::Binary, 0.0, 1.0, p))
//!     .collect();
//! let terms: Vec<_> = vars.iter().zip(&items).map(|(&v, &(w, _))| (v, w)).collect();
//! m.add_linear(f64::NEG_INFINITY, 6.0, &terms);
//! let res = m.optimize(Settings::default());
//! assert_eq!(res.status, SolveStatus::Optimal);
//! assert!((res.best_obj.unwrap() - 20.0).abs() < 1e-6);
//! ```

pub mod branching;
pub mod heurengine;
pub mod heuristics;
pub mod model;
pub mod plugins;
pub mod presolve;
pub mod propagation;
pub mod settings;
pub mod solution;
pub mod solver;
pub mod stats;
pub mod tree;

pub use heurengine::{HeurEngine, HeurSchedule, HeurStats, PrimalHeuristic};
pub use model::{LinCons, Model, VarId, VarType};
pub use plugins::{
    BranchDecision, BranchRule, ConstraintHandler, Cut, CutBuffer, EnforceResult, Heuristic,
    Presolver, PropResult, Propagator, RelaxResult, Relaxator, SepaResult, Separator, SolveCtx,
};
pub use settings::{BranchingRule, Emphasis, NodeSelection, Settings};
pub use solution::Solution;
pub use solver::{ControlHooks, NoHooks, SolveResult, SolveStatus, Solver};
pub use stats::Statistics;
pub use tree::NodeDesc;

/// Integrality tolerance: values within this distance of an integer are
/// treated as integral.
pub const INT_TOL: f64 = 1e-6;

/// General feasibility tolerance used by checks in this crate.
pub const FEAS_TOL: f64 = 1e-6;

/// Returns true if `v` is integral within [`INT_TOL`].
#[inline]
pub fn is_integral(v: f64) -> bool {
    (v - v.round()).abs() <= INT_TOL
}

/// Fractionality of a value: distance to the nearest integer.
#[inline]
pub fn fractionality(v: f64) -> f64 {
    (v - v.round()).abs()
}
