//! The branch-and-bound tree: node storage, open-node queue, and the
//! solver-independent subproblem description UG ships between ranks.

use crate::model::VarId;
use crate::settings::NodeSelection;
use std::collections::BinaryHeap;

/// A bound change relative to the parent node.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BoundChange {
    pub var: VarId,
    pub lb: f64,
    pub ub: f64,
}

/// Solver-independent description of a subproblem: the root-to-node
/// bound changes plus bookkeeping. This is exactly the object the UG
/// LoadCoordinator moves between ParaSolvers (the paper's "descriptions
/// of subproblems ... translated into a solver independent form"), and
/// what checkpointing persists.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct NodeDesc {
    /// Accumulated bound changes from the root (includes the branching
    /// decisions — the ug-0.8.6 feature the paper highlights).
    pub bound_changes: Vec<BoundChange>,
    /// Depth in the originating tree.
    pub depth: usize,
    /// Dual bound known for this subproblem (internal sense).
    pub dual_bound: f64,
}

impl NodeDesc {
    /// The root subproblem.
    pub fn root() -> Self {
        NodeDesc { bound_changes: Vec::new(), depth: 0, dual_bound: f64::NEG_INFINITY }
    }
}

/// How a node was created by branching (for pseudocost updates).
#[derive(Clone, Copy, Debug)]
pub struct BranchInfo {
    pub var: VarId,
    /// Fractional part of the branching value at the parent.
    pub frac: f64,
    /// True for the up (ceil) child.
    pub up: bool,
    /// Parent's dual bound when branching (internal sense).
    pub parent_bound: f64,
}

/// In-tree node record. Bound changes are stored as deltas against the
/// parent; the full local domain is reconstructed by walking the path.
#[derive(Clone, Debug)]
pub struct Node {
    pub id: usize,
    pub parent: Option<usize>,
    pub depth: usize,
    pub changes: Vec<BoundChange>,
    /// Dual (lower) bound inherited/computed for this node.
    pub dual_bound: f64,
    pub open: bool,
    /// Branching provenance (None for the root and injected nodes).
    pub branch_info: Option<BranchInfo>,
}

/// Priority-queue entry ordering open nodes.
#[derive(Clone, Copy, Debug)]
struct OpenEntry {
    id: usize,
    bound: f64,
    depth: usize,
}

impl PartialEq for OpenEntry {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for OpenEntry {}

/// Max-heap over "priority"; we invert bounds so the best (lowest) dual
/// bound pops first for best-bound search.
struct BestBoundOrd(OpenEntry);
impl PartialEq for BestBoundOrd {
    fn eq(&self, o: &Self) -> bool {
        self.0.id == o.0.id
    }
}
impl Eq for BestBoundOrd {}
impl PartialOrd for BestBoundOrd {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for BestBoundOrd {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // lower bound = higher priority; tie-break: deeper first, then id.
        o.0.bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.0.depth.cmp(&o.0.depth))
            .then(o.0.id.cmp(&self.0.id))
    }
}

/// The branch-and-bound tree with its open-node queue.
pub struct Tree {
    nodes: Vec<Node>,
    heap: BinaryHeap<BestBoundOrd>,
    stack: Vec<OpenEntry>,
    selection: NodeSelection,
    open_count: usize,
}

impl Tree {
    /// New tree containing only an open root node with bound `-inf`.
    pub fn new(selection: NodeSelection) -> Self {
        let mut t = Tree {
            nodes: Vec::new(),
            heap: BinaryHeap::new(),
            stack: Vec::new(),
            selection,
            open_count: 0,
        };
        t.push_node(None, Vec::new(), f64::NEG_INFINITY);
        t
    }

    /// Installs an inherited dual bound on the root (a transferred
    /// subproblem already carries a proven bound from its origin solver;
    /// descendants must never report anything weaker).
    pub fn set_root_bound(&mut self, bound: f64) {
        if bound.is_finite() && self.nodes[0].dual_bound < bound {
            self.nodes[0].dual_bound = bound;
        }
    }

    /// Adds a node and marks it open. Returns its id.
    pub fn push_node(
        &mut self,
        parent: Option<usize>,
        changes: Vec<BoundChange>,
        dual_bound: f64,
    ) -> usize {
        self.push_node_with_info(parent, changes, dual_bound, None)
    }

    /// Adds a node with branching provenance.
    pub fn push_node_with_info(
        &mut self,
        parent: Option<usize>,
        changes: Vec<BoundChange>,
        dual_bound: f64,
        branch_info: Option<BranchInfo>,
    ) -> usize {
        let id = self.nodes.len();
        let depth = parent.map_or(0, |p| self.nodes[p].depth + 1);
        self.nodes.push(Node { id, parent, depth, changes, dual_bound, open: true, branch_info });
        let e = OpenEntry { id, bound: dual_bound, depth };
        match self.selection {
            NodeSelection::BestBound | NodeSelection::Hybrid => self.heap.push(BestBoundOrd(e)),
            NodeSelection::DepthFirst => self.stack.push(e),
        }
        self.open_count += 1;
        id
    }

    /// Pops the next node to process according to the selection rule,
    /// skipping nodes whose bound is no better than `cutoff`. Pruned
    /// nodes are closed. Returns `None` when no open node remains.
    pub fn pop_best(&mut self, cutoff: f64) -> Option<usize> {
        loop {
            let e = match self.selection {
                NodeSelection::BestBound | NodeSelection::Hybrid => self.heap.pop().map(|b| b.0),
                NodeSelection::DepthFirst => self.stack.pop(),
            }?;
            if !self.nodes[e.id].open {
                continue;
            }
            self.nodes[e.id].open = false;
            self.open_count -= 1;
            if e.bound >= cutoff {
                continue; // pruned by bound
            }
            return Some(e.id);
        }
    }

    /// Removes (closes) a specific open node and returns its description —
    /// used by the UG collect mode to hand a subproblem to the
    /// LoadCoordinator. Picks the *shallowest* open node (ties broken by
    /// best bound): shallow nodes are the "heavy subproblems" with large
    /// expected subtrees, and — crucially — stealing them leaves the
    /// solver's current dive frontier intact, so deep cut/bound progress
    /// is not forever migrating between solvers.
    pub fn steal_open_node(&mut self) -> Option<usize> {
        let best = self
            .nodes
            .iter()
            .filter(|n| n.open)
            .min_by(|a, b| {
                a.depth.cmp(&b.depth).then(a.dual_bound.partial_cmp(&b.dual_bound).unwrap())
            })?
            .id;
        self.nodes[best].open = false;
        self.open_count -= 1;
        Some(best)
    }

    /// Closes all open nodes whose bound is `>= cutoff`; returns how many
    /// were pruned.
    pub fn prune_by_bound(&mut self, cutoff: f64) -> usize {
        let mut pruned = 0;
        for n in &mut self.nodes {
            if n.open && n.dual_bound >= cutoff {
                n.open = false;
                self.open_count -= 1;
                pruned += 1;
            }
        }
        pruned
    }

    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_open(&self) -> usize {
        self.open_count
    }

    /// Minimum dual bound over all open nodes (`+inf` when none).
    pub fn open_bound(&self) -> f64 {
        self.nodes.iter().filter(|n| n.open).map(|n| n.dual_bound).fold(f64::INFINITY, f64::min)
    }

    /// Accumulates the root-to-node bound changes for `id`.
    pub fn path_changes(&self, id: usize) -> Vec<BoundChange> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = &self.nodes[c];
            path.push(n.changes.clone());
            cur = n.parent;
        }
        path.reverse();
        path.into_iter().flatten().collect()
    }

    /// Builds the transferable description of node `id`.
    pub fn describe(&self, id: usize) -> NodeDesc {
        let n = &self.nodes[id];
        NodeDesc { bound_changes: self.path_changes(id), depth: n.depth, dual_bound: n.dual_bound }
    }

    /// Descriptions of all open nodes (checkpointing).
    pub fn describe_open(&self) -> Vec<NodeDesc> {
        self.nodes.iter().filter(|n| n.open).map(|n| self.describe(n.id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bc(var: u32, lb: f64, ub: f64) -> BoundChange {
        BoundChange { var: VarId(var), lb, ub }
    }

    #[test]
    fn best_bound_order() {
        let mut t = Tree::new(NodeSelection::BestBound);
        let root = t.pop_best(f64::INFINITY).unwrap();
        assert_eq!(root, 0);
        let a = t.push_node(Some(root), vec![bc(0, 0.0, 0.0)], 5.0);
        let b = t.push_node(Some(root), vec![bc(0, 1.0, 1.0)], 3.0);
        assert_eq!(t.num_open(), 2);
        assert_eq!(t.pop_best(f64::INFINITY), Some(b));
        assert_eq!(t.pop_best(f64::INFINITY), Some(a));
        assert_eq!(t.pop_best(f64::INFINITY), None);
    }

    #[test]
    fn depth_first_order() {
        let mut t = Tree::new(NodeSelection::DepthFirst);
        let root = t.pop_best(f64::INFINITY).unwrap();
        let a = t.push_node(Some(root), vec![], 1.0);
        let b = t.push_node(Some(root), vec![], 2.0);
        // LIFO: b (pushed last) first, regardless of bound.
        assert_eq!(t.pop_best(f64::INFINITY), Some(b));
        assert_eq!(t.pop_best(f64::INFINITY), Some(a));
    }

    #[test]
    fn cutoff_prunes_on_pop() {
        let mut t = Tree::new(NodeSelection::BestBound);
        let root = t.pop_best(f64::INFINITY).unwrap();
        t.push_node(Some(root), vec![], 10.0);
        let b = t.push_node(Some(root), vec![], 1.0);
        assert_eq!(t.pop_best(5.0), Some(b));
        assert_eq!(t.pop_best(5.0), None); // the 10.0 node is pruned
    }

    #[test]
    fn path_changes_accumulate() {
        let mut t = Tree::new(NodeSelection::BestBound);
        let root = t.pop_best(f64::INFINITY).unwrap();
        let a = t.push_node(Some(root), vec![bc(0, 1.0, 1.0)], 0.0);
        let b = t.push_node(Some(a), vec![bc(1, 0.0, 0.0)], 0.0);
        let path = t.path_changes(b);
        assert_eq!(path, vec![bc(0, 1.0, 1.0), bc(1, 0.0, 0.0)]);
        let d = t.describe(b);
        assert_eq!(d.depth, 2);
        assert_eq!(d.bound_changes.len(), 2);
    }

    #[test]
    fn steal_takes_best_open() {
        let mut t = Tree::new(NodeSelection::BestBound);
        let root = t.pop_best(f64::INFINITY).unwrap();
        t.push_node(Some(root), vec![], 7.0);
        let b = t.push_node(Some(root), vec![], 2.0);
        assert_eq!(t.steal_open_node(), Some(b));
        assert_eq!(t.num_open(), 1);
        // stolen node no longer pops
        assert_ne!(t.pop_best(f64::INFINITY), Some(b));
    }

    #[test]
    fn prune_by_bound_counts() {
        let mut t = Tree::new(NodeSelection::BestBound);
        let root = t.pop_best(f64::INFINITY).unwrap();
        t.push_node(Some(root), vec![], 7.0);
        t.push_node(Some(root), vec![], 2.0);
        assert_eq!(t.prune_by_bound(5.0), 1);
        assert_eq!(t.num_open(), 1);
        assert_eq!(t.open_bound(), 2.0);
    }
}
