//! Built-in primal heuristics: simple rounding and a randomized
//! round-and-repair shift. Problem-specific heuristics (SCIP-Jack's TM /
//! local search, SCIP-SDP's randomized rounding) are registered as
//! [`crate::plugins::Heuristic`] plugins by the application crates.

use crate::model::{Model, VarType};
use crate::plugins::{Heuristic, SolveCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Rounds the relaxation solution to the nearest integers; the framework
/// validates the candidate, so this heuristic may freely propose
/// infeasible points.
#[derive(Debug, Default)]
pub struct SimpleRounding;

impl Heuristic for SimpleRounding {
    fn name(&self) -> &str {
        "rounding"
    }

    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        let x = ctx.relax_x?;
        let mut cand = x.to_vec();
        for (v, var) in ctx.model.vars() {
            let j = v.0 as usize;
            if var.vtype != VarType::Continuous {
                cand[j] = cand[j].round().clamp(ctx.local_lb[j], ctx.local_ub[j]);
            }
        }
        Some(cand)
    }
}

/// Direction-aware rounding: rounds each integer variable in the
/// direction that keeps more linear constraints satisfied, then tries a
/// handful of random re-rounds (seeded by the racing permutation seed, so
/// different racers search differently).
#[derive(Debug)]
pub struct ShiftRounding {
    pub tries: usize,
}

impl Default for ShiftRounding {
    fn default() -> Self {
        ShiftRounding { tries: 4 }
    }
}

impl ShiftRounding {
    fn violations(model: &Model, x: &[f64]) -> usize {
        model.conss().filter(|c| !c.is_satisfied(x, crate::FEAS_TOL)).count()
    }
}

impl Heuristic for ShiftRounding {
    fn name(&self) -> &str {
        "shiftround"
    }

    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        let x = ctx.relax_x?;
        let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0x5151_5151);
        let mut best: Option<(usize, f64, Vec<f64>)> = None;
        for t in 0..=self.tries {
            let mut cand = x.to_vec();
            for (v, var) in ctx.model.vars() {
                let j = v.0 as usize;
                if var.vtype == VarType::Continuous {
                    continue;
                }
                let frac = cand[j] - cand[j].floor();
                let round_up =
                    if t == 0 { frac >= 0.5 } else { rng.gen_bool(frac.clamp(0.05, 0.95)) };
                cand[j] = if round_up { cand[j].ceil() } else { cand[j].floor() };
                cand[j] = cand[j].clamp(ctx.local_lb[j], ctx.local_ub[j]);
            }
            let viol = Self::violations(ctx.model, &cand);
            let obj = ctx.model.internal_obj(&cand);
            let better = match &best {
                None => true,
                Some((bv, bo, _)) => viol < *bv || (viol == *bv && obj < *bo),
            };
            if better {
                best = Some((viol, obj, cand));
            }
        }
        best.map(|(_, _, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugins::CutBuffer;

    fn run_heur(h: &mut dyn Heuristic, model: &Model, x: &[f64]) -> Option<Vec<f64>> {
        let lb: Vec<f64> = model.vars().map(|(_, v)| v.lb).collect();
        let ub: Vec<f64> = model.vars().map(|(_, v)| v.ub).collect();
        let mut cuts = CutBuffer::default();
        let mut tight = Vec::new();
        let mut ctx = SolveCtx {
            model,
            depth: 0,
            local_lb: &lb,
            local_ub: &ub,
            relax_x: Some(x),
            relax_obj: Some(model.internal_obj(x)),
            incumbent_obj: None,
            incumbent_x: None,
            reduced_costs: &[],
            cuts: &mut cuts,
            tightenings: &mut tight,
            seed: 7,
        };
        h.run(&mut ctx)
    }

    #[test]
    fn rounding_rounds_integers_only() {
        let mut m = Model::new("t");
        m.add_var("x", VarType::Integer, 0.0, 10.0, 1.0);
        m.add_var("y", VarType::Continuous, 0.0, 10.0, 1.0);
        let cand = run_heur(&mut SimpleRounding, &m, &[2.6, 3.4]).unwrap();
        assert_eq!(cand[0], 3.0);
        assert!((cand[1] - 3.4).abs() < 1e-12);
    }

    #[test]
    fn rounding_respects_local_bounds() {
        let mut m = Model::new("t");
        m.add_var("x", VarType::Integer, 0.0, 2.0, 1.0);
        let cand = run_heur(&mut SimpleRounding, &m, &[2.6]).unwrap();
        assert_eq!(cand[0], 2.0); // clamped to ub
    }

    #[test]
    fn shift_rounding_prefers_feasibility() {
        let mut m = Model::new("t");
        let x = m.add_var("x", VarType::Integer, 0.0, 1.0, 0.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 1.0, 0.0);
        m.add_linear(f64::NEG_INFINITY, 1.0, &[(x, 1.0), (y, 1.0)]);
        // Naive rounding of (0.6, 0.6) violates the row; shift rounding
        // should find a candidate with fewer violations.
        let cand = run_heur(&mut ShiftRounding::default(), &m, &[0.6, 0.6]).unwrap();
        assert!(m.cons(0).is_satisfied(&cand, 1e-9));
    }
}
