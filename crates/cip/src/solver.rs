//! The branch-cut-and-bound driver.
//!
//! One [`Solver`] solves one [`Model`] (or one subproblem of it, when UG
//! hands over a [`NodeDesc`]). External control — the hooks the UG
//! ParaSolver wrapper needs for incumbent exchange, status reporting,
//! collect-mode node export and aborts — enters through [`ControlHooks`].

use crate::branching::{select_branching_var, Pseudocosts};
use crate::heurengine::{HeurEngine, HeurSchedule, HeurStats, PrimalHeuristic};
use crate::heuristics::{ShiftRounding, SimpleRounding};
use crate::model::{Model, VarId};
use crate::plugins::*;
use crate::presolve::presolve;
use crate::propagation::{propagate_linear, redcost_fixing, PropOutcome};
use crate::settings::{NodeSelection, Settings};
use crate::solution::{Incumbents, Solution};
use crate::stats::Statistics;
use crate::tree::{BoundChange, BranchInfo, NodeDesc, Tree};
use std::collections::HashSet;
use ugrs_lp::{LpProblem, LpStatus, Simplex, SimplexParams};

/// Final status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Search space exhausted with an incumbent: proven optimal.
    Optimal,
    /// Search space exhausted without a feasible solution.
    Infeasible,
    /// The relaxation was unbounded at the root.
    Unbounded,
    /// Stopped at the node limit.
    NodeLimit,
    /// Stopped at the time limit.
    TimeLimit,
    /// Stopped at the gap limit.
    GapLimit,
    /// Aborted externally (UG termination / racing loser).
    Aborted,
}

/// Result bundle of a solve, reported in the *user's* objective sense.
#[derive(Clone, Debug)]
pub struct SolveResult {
    pub status: SolveStatus,
    /// Best objective in the user's sense, if a solution was found.
    pub best_obj: Option<f64>,
    pub best_x: Option<Vec<f64>>,
    /// Proven dual bound in the user's sense.
    pub dual_bound: f64,
    pub stats: Statistics,
}

/// Callbacks wiring a running solver to its environment (the UG
/// ParaSolver). All objective values cross this boundary in the
/// *internal* minimization sense; the glue layer converts once at the
/// edges.
pub trait ControlHooks {
    /// Polled between nodes; `true` aborts the solve.
    fn should_abort(&mut self) -> bool {
        false
    }
    /// A new incumbent was installed (internal objective, values).
    fn on_incumbent(&mut self, _obj: f64, _x: &[f64]) {}
    /// Periodic status: (dual bound, open nodes, processed nodes).
    fn on_status(&mut self, _dual_bound: f64, _open: usize, _nodes: u64) {}
    /// Offer an externally found solution (values only); polled between
    /// nodes.
    fn poll_incumbent(&mut self) -> Option<Vec<f64>> {
        None
    }
    /// True when the environment wants an open node exported (UG collect
    /// mode).
    fn want_node_export(&mut self) -> bool {
        false
    }
    /// Receives the exported node.
    fn export_node(&mut self, _desc: NodeDesc) {}
}

/// No-op hooks for standalone solving.
pub struct NoHooks;
impl ControlHooks for NoHooks {}

/// The branch-cut-and-bound solver.
pub struct Solver {
    model: Model,
    settings: Settings,
    conshdlrs: Vec<Box<dyn ConstraintHandler>>,
    separators: Vec<Box<dyn Separator>>,
    propagators: Vec<Box<dyn Propagator>>,
    heuristics: HeurEngine,
    branchrules: Vec<Box<dyn BranchRule>>,
    relaxator: Option<Box<dyn Relaxator>>,
    presolvers: Vec<Box<dyn Presolver>>,
    pcost: Pseudocosts,
    stats: Statistics,
    incumbents: Incumbents,
    cut_pool: HashSet<u64>,
    /// Cuts currently installed as LP rows, with their slack age.
    active_cuts: Vec<(Cut, u64, u32)>, // (cut, fingerprint, age)
    /// Bound changes applied before solving (subproblem mode).
    initial_changes: Vec<BoundChange>,
    /// Dual bound inherited with a transferred subproblem.
    initial_bound: f64,
}

impl Solver {
    /// Creates a solver with the built-in default plugins registered.
    pub fn new(model: Model, settings: Settings) -> Self {
        let nvars = model.num_vars();
        Solver {
            model,
            settings,
            conshdlrs: Vec::new(),
            separators: Vec::new(),
            propagators: Vec::new(),
            heuristics: {
                let mut engine = HeurEngine::default();
                engine.add_legacy(Box::new(SimpleRounding));
                engine.add_legacy(Box::new(ShiftRounding::default()));
                engine
            },
            branchrules: Vec::new(),
            relaxator: None,
            presolvers: Vec::new(),
            pcost: Pseudocosts::new(nvars),
            stats: Statistics::default(),
            incumbents: Incumbents::default(),
            cut_pool: HashSet::new(),
            active_cuts: Vec::new(),
            initial_changes: Vec::new(),
            initial_bound: f64::NEG_INFINITY,
        }
    }

    /// Creates a solver with *no* heuristics pre-registered.
    pub fn new_bare(model: Model, settings: Settings) -> Self {
        let mut s = Self::new(model, settings);
        s.heuristics.clear();
        s
    }

    pub fn add_conshdlr(&mut self, h: Box<dyn ConstraintHandler>) {
        self.conshdlrs.push(h);
    }
    pub fn add_separator(&mut self, s: Box<dyn Separator>) {
        self.separators.push(s);
    }
    pub fn add_propagator(&mut self, p: Box<dyn Propagator>) {
        self.propagators.push(p);
    }
    /// Registers a legacy [`Heuristic`] plugin (runs at every heuristic
    /// round, unlimited budget).
    pub fn add_heuristic(&mut self, h: Box<dyn Heuristic>) {
        self.heuristics.add_legacy(h);
    }
    /// Registers a scheduled [`PrimalHeuristic`] plugin under its own
    /// default schedule.
    pub fn add_primal_heuristic(&mut self, h: Box<dyn PrimalHeuristic>) {
        self.heuristics.add(h);
    }
    /// Registers a scheduled [`PrimalHeuristic`] under an explicit
    /// schedule, overriding the plugin's default.
    pub fn add_primal_heuristic_with(&mut self, h: Box<dyn PrimalHeuristic>, s: HeurSchedule) {
        self.heuristics.add_with_schedule(h, s);
    }
    /// Per-heuristic call/hit/time accounting for the solve so far.
    pub fn heur_stats(&self) -> Vec<HeurStats> {
        self.heuristics.stats()
    }
    pub fn add_branchrule(&mut self, b: Box<dyn BranchRule>) {
        self.branchrules.push(b);
    }
    pub fn set_relaxator(&mut self, r: Box<dyn Relaxator>) {
        self.relaxator = Some(r);
    }
    pub fn add_presolver(&mut self, p: Box<dyn Presolver>) {
        self.presolvers.push(p);
    }

    pub fn model(&self) -> &Model {
        &self.model
    }
    pub fn settings(&self) -> &Settings {
        &self.settings
    }
    pub fn stats(&self) -> &Statistics {
        &self.stats
    }

    /// Installs initial bound changes so that `solve` works on a
    /// subproblem — this is what a UG ParaSolver does with a received
    /// [`NodeDesc`]. Presolve then runs *again* on the restricted
    /// problem: the paper's layered presolving.
    pub fn apply_node_desc(&mut self, desc: &NodeDesc) {
        self.initial_changes = desc.bound_changes.clone();
        self.initial_bound = desc.dual_bound;
        if !desc.bound_changes.is_empty() {
            // A transferred subproblem is *not* the root of the whole
            // problem: re-separating with the full root budget on every
            // transfer would dominate the run time (this is the layered
            // presolving trade-off the paper discusses). Cap it.
            let cap = self.settings.node_sepa_rounds.max(32);
            if self.settings.root_sepa_rounds > cap {
                self.settings.root_sepa_rounds = cap;
            }
        }
        for bc in &desc.bound_changes {
            let var = self.model.var_mut(bc.var);
            var.lb = var.lb.max(bc.lb);
            var.ub = var.ub.min(bc.ub);
            if var.lb > var.ub {
                // Crossed bounds → subproblem trivially infeasible; keep a
                // consistent (empty) domain marker handled in solve().
                var.ub = var.lb - 1.0;
                return;
            }
        }
    }

    /// Seeds the solver with a known feasible solution (racing restarts
    /// in Table 3 re-run "with the best solution", which then powers
    /// presolving, propagation and heuristics).
    pub fn inject_solution(&mut self, x: Vec<f64>) -> bool {
        if !self.check_full(&x) {
            return false;
        }
        let sol = Solution::new(&self.model, x);
        self.incumbents.try_install(sol, 0)
    }

    fn check_full(&mut self, x: &[f64]) -> bool {
        if !self.model.check_solution(x, crate::FEAS_TOL) {
            return false;
        }
        let model = &self.model;
        self.conshdlrs.iter_mut().all(|h| h.check(model, x))
    }

    fn cutoff(&self) -> f64 {
        match self.incumbents.best_obj() {
            None => f64::INFINITY,
            Some(obj) => {
                if self.model.has_integral_objective() {
                    obj - 1.0 + 1e-6
                } else {
                    obj - 1e-9
                }
            }
        }
    }

    /// Runs branch-cut-and-bound. Reentrant: a second call continues from
    /// a fresh tree but keeps incumbents and pseudocosts.
    pub fn solve(&mut self, hooks: &mut dyn ControlHooks) -> SolveResult {
        self.stats = Statistics::default();
        self.stats.start();

        // Domains may have been crossed by apply_node_desc.
        if self.model.vars().any(|(_, v)| v.lb > v.ub) {
            return self.finish(SolveStatus::Infeasible);
        }

        // ---- Presolve (built-in + plugins) -------------------------------
        if self.settings.presolve_rounds > 0 {
            let ps = presolve(&mut self.model, self.settings.presolve_rounds);
            if ps.infeasible {
                return self.finish(SolveStatus::Infeasible);
            }
            let mut presolvers = std::mem::take(&mut self.presolvers);
            for p in presolvers.iter_mut() {
                if p.presolve(&mut self.model) == PresolveOutcome::Infeasible {
                    self.presolvers = presolvers;
                    return self.finish(SolveStatus::Infeasible);
                }
            }
            self.presolvers = presolvers;
        }

        // ---- Build the LP relaxation --------------------------------------
        let mut lp_prob = LpProblem::new();
        for (_, var) in self.model.vars() {
            lp_prob.add_var(var.lb, var.ub, var.obj);
        }
        for cons in self.model.conss() {
            let terms: Vec<(ugrs_lp::VarId, f64)> =
                cons.terms.iter().map(|&(v, c)| (ugrs_lp::VarId(v.0), c)).collect();
            lp_prob.add_row(cons.lhs, cons.rhs, &terms);
        }
        let base_rows = lp_prob.num_rows();
        let mut lp = Simplex::new(
            lp_prob,
            SimplexParams { iter_limit: self.settings.lp_iter_limit, ..Default::default() },
        );
        let mut lp_fresh = true;
        // Initial rows from constraint handlers (e.g. dual-ascent cuts),
        // installed as (ageable) cut rows.
        self.cut_pool.clear();
        self.active_cuts.clear();
        {
            let mut buf = CutBuffer::default();
            let mut hdlrs = std::mem::take(&mut self.conshdlrs);
            for h in hdlrs.iter_mut() {
                h.init_lp(&self.model, &mut buf);
            }
            self.conshdlrs = hdlrs;
            self.install_cuts(buf, &mut lp);
        }

        let mut tree = Tree::new(self.settings.node_selection);
        tree.set_root_bound(self.initial_bound);
        let use_relax = self.settings.use_relaxator && self.relaxator.is_some();
        let mut root_done = false;
        let mut status = SolveStatus::Optimal;
        let n = self.model.num_vars();
        let glb: Vec<f64> = self.model.vars().map(|(_, v)| v.lb).collect();
        let gub: Vec<f64> = self.model.vars().map(|(_, v)| v.ub).collect();

        'mainloop: loop {
            // ---- limits & external control --------------------------------
            if self.stats.elapsed() > self.settings.time_limit {
                status = SolveStatus::TimeLimit;
                break;
            }
            if self.stats.nodes >= self.settings.node_limit {
                status = SolveStatus::NodeLimit;
                break;
            }
            if hooks.should_abort() {
                status = SolveStatus::Aborted;
                break;
            }
            if let Some(x) = hooks.poll_incumbent() {
                if x.len() == n && self.check_full(&x) {
                    let sol = Solution::new(&self.model, x);
                    if self.incumbents.try_install(sol, self.stats.nodes) {
                        self.stats.improving_solutions += 1;
                        tree.prune_by_bound(self.cutoff());
                    }
                }
            }
            // Export only out of substantial trees: fine-grained transfers
            // would spend the run re-initializing solvers (the paper's
            // transfer counts are ~1 per 10⁵ nodes; the unit of work is a
            // subtree, not a node).
            while hooks.want_node_export() && tree.num_open() >= 6 {
                if let Some(id) = tree.steal_open_node() {
                    hooks.export_node(tree.describe(id));
                } else {
                    break;
                }
            }

            // ---- select node ----------------------------------------------
            let cutoff = self.cutoff();
            let Some(node_id) = tree.pop_best(cutoff) else {
                break; // exhausted
            };
            self.stats.nodes += 1;
            let depth = tree.node(node_id).depth;
            let binfo = tree.node(node_id).branch_info;
            let node_bound_in = tree.node(node_id).dual_bound;

            // global dual bound = min(open, this node)
            let global_bound = tree
                .open_bound()
                .min(node_bound_in)
                .min(self.incumbents.best_obj().unwrap_or(f64::INFINITY));
            self.stats.record_dual_bound(global_bound);
            if self.gap_reached() {
                status = SolveStatus::GapLimit;
                break;
            }
            // Status flows every node; the receiving side rate-limits.
            hooks.on_status(self.stats.dual_bound, tree.num_open(), self.stats.nodes);

            // ---- local domain ----------------------------------------------
            let mut lb = glb.clone();
            let mut ub = gub.clone();
            let mut local_infeasible = false;
            for bc in tree.path_changes(node_id) {
                let j = bc.var.0 as usize;
                lb[j] = lb[j].max(bc.lb);
                ub[j] = ub[j].min(bc.ub);
                if lb[j] > ub[j] {
                    local_infeasible = true;
                }
            }
            if local_infeasible {
                continue;
            }

            // ---- propagation ------------------------------------------------
            if self.settings.use_propagation {
                match propagate_linear(&self.model, &mut lb, &mut ub, 3) {
                    PropOutcome::Infeasible => continue,
                    PropOutcome::Tightened => self.stats.propagations += 1,
                    PropOutcome::Unchanged => {}
                }
            }
            if self.run_plugin_propagators(depth, &mut lb, &mut ub).is_err() {
                continue;
            }

            // ---- relaxation --------------------------------------------------
            let (mut bound, mut relax_x): (f64, Vec<f64>);
            if use_relax {
                let mut relaxator = self.relaxator.take().unwrap();
                let res = {
                    let mut cuts = CutBuffer::default();
                    let mut tight = Vec::new();
                    let mut ctx = self.ctx(depth, &lb, &ub, None, None, &[], &mut cuts, &mut tight);
                    relaxator.solve_relaxation(&mut ctx)
                };
                self.relaxator = Some(relaxator);
                self.stats.relax_solves += 1;
                match res {
                    RelaxResult::Infeasible => continue,
                    RelaxResult::Error => {
                        // fall back to pure bound inheritance + branching on
                        // the domain midpoint of some unfixed integer var
                        bound = node_bound_in;
                        relax_x = lb
                            .iter()
                            .zip(ub.iter())
                            .map(|(l, u)| 0.5 * (l.max(-1e18) + u.min(1e18)))
                            .collect();
                    }
                    RelaxResult::Bounded { bound: b, x } => {
                        bound = b.max(node_bound_in);
                        relax_x = x;
                    }
                }
            } else {
                // LP path: drop aged cuts when the LP got too big, push
                // local bounds, warm start dual simplex.
                if let Some(newlp) = self.maybe_rebuild_lp(base_rows) {
                    lp = newlp;
                    lp_fresh = true;
                }
                for j in 0..n {
                    lp.set_var_bounds(ugrs_lp::VarId(j as u32), lb[j], ub[j]);
                }
                let was_fresh = lp_fresh;
                let st = if lp_fresh {
                    lp_fresh = false;
                    lp.solve_primal()
                } else {
                    lp.solve_dual()
                };
                self.stats.lp_solves += 1;
                match st {
                    LpStatus::Infeasible => continue,
                    LpStatus::Unbounded => {
                        if depth == 0 {
                            status = SolveStatus::Unbounded;
                            break 'mainloop;
                        }
                        continue;
                    }
                    LpStatus::Numerical => continue,
                    _ => {}
                }
                let mut sol = lp.extract_solution();
                self.stats.lp_iterations += sol.iterations as u64;
                // A dual-simplex iterate is dual feasible, so its objective
                // is a valid bound even at the iteration limit; a truncated
                // *primal* solve is not.
                bound = if st == LpStatus::IterLimit && was_fresh {
                    node_bound_in
                } else {
                    sol.obj.max(node_bound_in)
                };
                relax_x = sol.x.clone();

                // ---- separation loop --------------------------------------
                let max_rounds = if depth == 0 {
                    self.settings.root_sepa_rounds
                } else {
                    self.settings.node_sepa_rounds
                };
                let mut pruned = false;
                let mut stalled_rounds = 0usize;
                for _round in 0..max_rounds {
                    if bound >= self.cutoff() {
                        pruned = true;
                        break;
                    }
                    if self.stats.elapsed() > self.settings.time_limit {
                        break;
                    }
                    let added = self.run_separation(depth, &lb, &ub, &sol.x, bound, &mut lp);
                    if added == 0 {
                        break;
                    }
                    let st = lp.solve_dual();
                    self.stats.lp_solves += 1;
                    if st == LpStatus::Infeasible {
                        pruned = true;
                        break;
                    }
                    if st == LpStatus::Numerical {
                        break;
                    }
                    sol = lp.extract_solution();
                    self.stats.lp_iterations += sol.iterations as u64;
                    let prev = bound;
                    bound = sol.obj.max(bound);
                    relax_x = sol.x.clone();
                    // Long root separation phases must still report progress
                    // (racing compares bounds *during* the root).
                    if depth == 0 {
                        self.stats.record_dual_bound(
                            bound.min(self.incumbents.best_obj().unwrap_or(f64::INFINITY)),
                        );
                        hooks.on_status(
                            self.stats.dual_bound,
                            tree.num_open() + 1,
                            self.stats.nodes,
                        );
                    }
                    // Stop when the dual bound stalls ("as long as the
                    // dual-bound can be sufficiently improved", §3.1).
                    if bound - prev < 1e-6 * (1.0 + bound.abs()) {
                        stalled_rounds += 1;
                        if stalled_rounds >= 2 {
                            break;
                        }
                    } else {
                        stalled_rounds = 0;
                    }
                }
                self.age_cuts(base_rows, &sol.row_duals);
                if pruned {
                    self.update_pseudocosts(binfo, bound);
                    continue;
                }

                // ---- reduced-cost fixing ----------------------------------
                if self.settings.use_redcost_fixing {
                    let fixed = redcost_fixing(
                        &self.model,
                        &sol.x,
                        &sol.reduced_costs,
                        bound,
                        self.cutoff(),
                        &mut lb,
                        &mut ub,
                    );
                    self.stats.redcost_fixings += fixed as u64;
                }
            }

            self.update_pseudocosts(binfo, bound);

            // The global dual bound may have improved now that this node's
            // relaxation is solved (min over this bound and all open nodes).
            let global = tree
                .open_bound()
                .min(bound)
                .min(self.incumbents.best_obj().unwrap_or(f64::INFINITY));
            self.stats.record_dual_bound(global);

            // ---- bound pruning ----------------------------------------------
            if bound >= self.cutoff() {
                continue;
            }

            // ---- integrality / enforcement ---------------------------------
            let mut enforce_rounds = 0usize;
            let feasible_candidate = loop {
                let frac_var = select_branching_var(
                    &self.model,
                    &relax_x,
                    self.settings.branching,
                    &self.pcost,
                    self.settings.permutation_seed,
                );
                if frac_var.is_some() {
                    break None; // fractional → branch below
                }
                // Integral on all integer vars: enforce constraint handlers.
                let mut all_feasible = true;
                let mut cut_added = false;
                let mut cutoff_node = false;
                {
                    let mut cuts = CutBuffer::default();
                    let mut tight = Vec::new();
                    let mut hdlrs = std::mem::take(&mut self.conshdlrs);
                    for h in hdlrs.iter_mut() {
                        let mut ctx = self.ctx(
                            depth,
                            &lb,
                            &ub,
                            Some(&relax_x),
                            Some(bound),
                            &[],
                            &mut cuts,
                            &mut tight,
                        );
                        match h.enforce(&mut ctx) {
                            EnforceResult::Feasible => {}
                            EnforceResult::AddedCuts(_) => {
                                all_feasible = false;
                                cut_added = true;
                            }
                            EnforceResult::Cutoff => {
                                all_feasible = false;
                                cutoff_node = true;
                                break;
                            }
                        }
                    }
                    self.conshdlrs = hdlrs;
                    if cut_added && !use_relax {
                        let installed = self.install_cuts(cuts, &mut lp);
                        if installed == 0 {
                            // Handlers reported cuts but all were pool
                            // duplicates: cannot make progress by cutting.
                            cutoff_node = true;
                        }
                    }
                }
                if cutoff_node {
                    break Some(false);
                }
                if all_feasible {
                    break Some(true);
                }
                if use_relax {
                    // Cuts are meaningless without an LP — prune defensively
                    // is wrong; instead treat as feasible-check failure and
                    // branch on the relaxator's most fractional variable
                    // (none exists, so prune). Documented limitation.
                    break Some(false);
                }
                enforce_rounds += 1;
                if enforce_rounds > 200 || self.stats.elapsed() > self.settings.time_limit {
                    break Some(false);
                }
                let st = lp.solve_dual();
                self.stats.lp_solves += 1;
                match st {
                    LpStatus::Infeasible => break Some(false),
                    LpStatus::Numerical => break Some(false),
                    _ => {}
                }
                let sol = lp.extract_solution();
                self.stats.lp_iterations += sol.iterations as u64;
                bound = sol.obj.max(bound);
                relax_x = sol.x;
                if bound >= self.cutoff() {
                    break Some(false);
                }
            };

            match feasible_candidate {
                Some(true) => {
                    // Install the incumbent.
                    let mut sol = Solution::new(&self.model, relax_x.clone());
                    sol.round_integers(&self.model);
                    if self.model.check_solution(&sol.x, crate::FEAS_TOL) {
                        let obj = sol.obj;
                        if self.incumbents.try_install(sol, self.stats.nodes) {
                            self.stats.improving_solutions += 1;
                            hooks.on_incumbent(obj, &self.incumbents.best().unwrap().x);
                            tree.prune_by_bound(self.cutoff());
                        }
                    }
                    if !root_done {
                        root_done = true;
                        self.stats.root_time = self.stats.elapsed();
                    }
                    continue;
                }
                Some(false) => continue,
                None => {}
            }

            // ---- heuristics --------------------------------------------------
            let freq = self.settings.heur_frequency;
            if depth == 0 || (freq > 0 && depth.is_multiple_of(freq)) {
                self.run_heuristics(depth, &lb, &ub, &relax_x, bound, hooks, &mut tree);
                if !use_relax && self.settings.use_diving {
                    self.run_diving(&lb, &ub, &relax_x, &mut lp, hooks, &mut tree);
                }
            }

            // ---- branching ---------------------------------------------------
            if !root_done {
                root_done = true;
                self.stats.root_time = self.stats.elapsed();
            }
            let decision = self.pick_branching(depth, &lb, &ub, &relax_x, bound);
            let Some(dec) = decision else {
                // No fractional variable and handlers were all feasible —
                // handled above; reaching here means a custom rule declined
                // and nothing is fractional: prune defensively.
                continue;
            };
            let j = dec.var.0 as usize;
            let frac = dec.value - dec.value.floor();
            let down = BoundChange { var: dec.var, lb: lb[j], ub: dec.value.floor() };
            let up = BoundChange { var: dec.var, lb: dec.value.floor() + 1.0, ub: ub[j] };
            let info_down = Some(BranchInfo { var: dec.var, frac, up: false, parent_bound: bound });
            let info_up = Some(BranchInfo { var: dec.var, frac, up: true, parent_bound: bound });
            // Push the preferred child last for DFS (LIFO), first for
            // best-bound (order there is bound-driven anyway).
            let dfs = self.settings.node_selection == NodeSelection::DepthFirst;
            let first_down = dec.down_first != dfs;
            if first_down {
                tree.push_node_with_info(Some(node_id), vec![down], bound, info_down);
                tree.push_node_with_info(Some(node_id), vec![up], bound, info_up);
            } else {
                tree.push_node_with_info(Some(node_id), vec![up], bound, info_up);
                tree.push_node_with_info(Some(node_id), vec![down], bound, info_down);
            }
        }

        // Exhausted tree: bound closes onto the incumbent.
        if status == SolveStatus::Optimal {
            match self.incumbents.best_obj() {
                Some(obj) => self.stats.record_dual_bound(obj),
                None => status = SolveStatus::Infeasible,
            }
        }
        self.stats.open_nodes = tree.num_open() as u64;
        self.finish(status)
    }

    /// Solves the subproblem described by `desc` (UG ParaSolver mode):
    /// bound changes are applied, then the full machinery — including
    /// another presolve round (*layered presolving*) — runs.
    pub fn solve_subproblem(
        &mut self,
        desc: &NodeDesc,
        hooks: &mut dyn ControlHooks,
    ) -> SolveResult {
        self.apply_node_desc(desc);
        self.solve(hooks)
    }

    fn gap_reached(&self) -> bool {
        if self.settings.gap_limit <= 0.0 {
            return false;
        }
        let (p, d) = (self.stats.primal_bound, self.stats.dual_bound);
        let p = self.incumbents.best_obj().unwrap_or(p);
        if !p.is_finite() || !d.is_finite() {
            return false;
        }
        (p - d).max(0.0) / p.abs().max(1e-9) < self.settings.gap_limit
    }

    #[allow(clippy::too_many_arguments)]
    fn ctx<'a>(
        &'a self,
        depth: usize,
        lb: &'a [f64],
        ub: &'a [f64],
        relax_x: Option<&'a [f64]>,
        relax_obj: Option<f64>,
        redcosts: &'a [f64],
        cuts: &'a mut CutBuffer,
        tight: &'a mut Vec<(VarId, f64, f64)>,
    ) -> SolveCtx<'a> {
        SolveCtx {
            model: &self.model,
            depth,
            local_lb: lb,
            local_ub: ub,
            relax_x,
            relax_obj,
            incumbent_obj: self.incumbents.best_obj(),
            incumbent_x: self.incumbents.best().map(|s| s.x.as_slice()),
            reduced_costs: redcosts,
            cuts,
            tightenings: tight,
            seed: self.settings.permutation_seed,
        }
    }

    fn apply_tightenings(
        tight: &[(VarId, f64, f64)],
        lb: &mut [f64],
        ub: &mut [f64],
    ) -> Result<bool, ()> {
        let mut changed = false;
        for &(v, l, u) in tight {
            let j = v.0 as usize;
            if l > lb[j] + 1e-12 {
                lb[j] = l;
                changed = true;
            }
            if u < ub[j] - 1e-12 {
                ub[j] = u;
                changed = true;
            }
            if lb[j] > ub[j] + 1e-9 {
                return Err(());
            }
            if lb[j] > ub[j] {
                lb[j] = ub[j];
            }
        }
        Ok(changed)
    }

    fn run_plugin_propagators(
        &mut self,
        depth: usize,
        lb: &mut [f64],
        ub: &mut [f64],
    ) -> Result<(), ()> {
        let mut props = std::mem::take(&mut self.propagators);
        let mut hdlrs = std::mem::take(&mut self.conshdlrs);
        let mut result = Ok(());
        'outer: for _ in 0..3 {
            let mut any = false;
            for kind in 0..2 {
                let count = if kind == 0 { props.len() } else { hdlrs.len() };
                for i in 0..count {
                    let mut cuts = CutBuffer::default();
                    let mut tight = Vec::new();
                    let pr = {
                        let mut ctx =
                            self.ctx(depth, lb, ub, None, None, &[], &mut cuts, &mut tight);
                        if kind == 0 {
                            props[i].propagate(&mut ctx)
                        } else {
                            hdlrs[i].propagate(&mut ctx)
                        }
                    };
                    match pr {
                        PropResult::Infeasible => {
                            result = Err(());
                            break 'outer;
                        }
                        PropResult::Reduced => {
                            match Self::apply_tightenings(&tight, lb, ub) {
                                Ok(c) => any |= c,
                                Err(()) => {
                                    result = Err(());
                                    break 'outer;
                                }
                            }
                            self.stats.propagations += 1;
                        }
                        PropResult::Nothing => {}
                    }
                }
            }
            if !any {
                break;
            }
        }
        self.propagators = props;
        self.conshdlrs = hdlrs;
        result
    }

    /// Runs separators and handler separation; installs surviving cuts.
    /// Returns the number of rows added to the LP.
    fn run_separation(
        &mut self,
        depth: usize,
        lb: &[f64],
        ub: &[f64],
        x: &[f64],
        bound: f64,
        lp: &mut Simplex,
    ) -> usize {
        let mut buf = CutBuffer::default();
        let mut tight = Vec::new();
        let mut seps = std::mem::take(&mut self.separators);
        for s in seps.iter_mut() {
            let mut ctx = self.ctx(depth, lb, ub, Some(x), Some(bound), &[], &mut buf, &mut tight);
            let _ = s.separate(&mut ctx);
        }
        self.separators = seps;
        let mut hdlrs = std::mem::take(&mut self.conshdlrs);
        for h in hdlrs.iter_mut() {
            let mut ctx = self.ctx(depth, lb, ub, Some(x), Some(bound), &[], &mut buf, &mut tight);
            let _ = h.separate(&mut ctx);
        }
        self.conshdlrs = hdlrs;
        self.install_cuts(buf, lp)
    }

    fn install_cuts(&mut self, buf: CutBuffer, lp: &mut Simplex) -> usize {
        let mut added = 0;
        for cut in buf.cuts {
            let fp = cut.fingerprint();
            if !self.cut_pool.insert(fp) {
                self.stats.cuts_duplicate += 1;
                continue;
            }
            let terms: Vec<(ugrs_lp::VarId, f64)> =
                cut.terms.iter().map(|&(v, c)| (ugrs_lp::VarId(v.0), c)).collect();
            lp.add_row(cut.lhs, cut.rhs, &terms);
            self.active_cuts.push((cut, fp, 0));
            self.stats.cuts_applied += 1;
            added += 1;
        }
        added
    }

    /// Ages cut rows by their duals in the last LP solution (`base_rows`
    /// model rows come first; cut rows follow in `active_cuts` order).
    fn age_cuts(&mut self, base_rows: usize, row_duals: &[f64]) {
        for (k, rec) in self.active_cuts.iter_mut().enumerate() {
            let r = base_rows + k;
            if r < row_duals.len() && row_duals[r].abs() > 1e-9 {
                rec.2 = 0;
            } else {
                rec.2 += 1;
            }
        }
    }

    /// Drops aged-out cuts and rebuilds the LP when the cut rows exceed
    /// the configured maximum. Returns a fresh simplex when a rebuild
    /// happened (the caller re-solves from scratch).
    fn maybe_rebuild_lp(&mut self, base_rows: usize) -> Option<Simplex> {
        if self.active_cuts.len() <= self.settings.max_cut_rows {
            return None;
        }
        let max_age = self.settings.cut_max_age;
        let before = self.active_cuts.len();
        let mut kept: Vec<(Cut, u64, u32)> = Vec::new();
        for rec in self.active_cuts.drain(..) {
            if rec.2 <= max_age {
                kept.push(rec);
            } else {
                self.cut_pool.remove(&rec.1);
            }
        }
        // Still too many: keep the most recently added ones.
        if kept.len() > self.settings.max_cut_rows {
            let drop_n = kept.len() - self.settings.max_cut_rows;
            for rec in kept.drain(..drop_n) {
                self.cut_pool.remove(&rec.1);
            }
        }
        self.active_cuts = kept;
        let _ = before;
        let mut lp_prob = LpProblem::new();
        for (_, var) in self.model.vars() {
            lp_prob.add_var(var.lb, var.ub, var.obj);
        }
        for cons in self.model.conss() {
            let terms: Vec<(ugrs_lp::VarId, f64)> =
                cons.terms.iter().map(|&(v, c)| (ugrs_lp::VarId(v.0), c)).collect();
            lp_prob.add_row(cons.lhs, cons.rhs, &terms);
        }
        debug_assert_eq!(lp_prob.num_rows(), base_rows);
        for (cut, _, _) in &self.active_cuts {
            let terms: Vec<(ugrs_lp::VarId, f64)> =
                cut.terms.iter().map(|&(v, c)| (ugrs_lp::VarId(v.0), c)).collect();
            lp_prob.add_row(cut.lhs, cut.rhs, &terms);
        }
        Some(Simplex::new(
            lp_prob,
            SimplexParams { iter_limit: self.settings.lp_iter_limit, ..Default::default() },
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_heuristics(
        &mut self,
        depth: usize,
        lb: &[f64],
        ub: &[f64],
        relax_x: &[f64],
        bound: f64,
        hooks: &mut dyn ControlHooks,
        tree: &mut Tree,
    ) {
        let mut engine = std::mem::take(&mut self.heuristics);
        for i in engine.due_indices(depth) {
            let cand = {
                let mut cuts = CutBuffer::default();
                let mut tight = Vec::new();
                let mut ctx =
                    self.ctx(depth, lb, ub, Some(relax_x), Some(bound), &[], &mut cuts, &mut tight);
                engine.entry_mut(i).call(&mut ctx)
            };
            if let Some(x) = cand {
                if x.len() == self.model.num_vars() && self.check_full(&x) {
                    let mut sol = Solution::new(&self.model, x);
                    sol.round_integers(&self.model);
                    let obj = sol.obj;
                    if self.incumbents.try_install(sol, self.stats.nodes) {
                        self.stats.improving_solutions += 1;
                        engine.record_hit(i, obj);
                        hooks.on_incumbent(obj, &self.incumbents.best().unwrap().x);
                        tree.prune_by_bound(self.cutoff());
                    }
                }
            }
        }
        self.heuristics = engine;
    }

    /// LP diving (SCIP's fracdiving): starting from the node's LP
    /// optimum, repeatedly fix the most fractional integer variable to
    /// its nearest integer and re-solve, hoping to land on an integral
    /// feasible point. The LP's variable bounds are freely mutated — the
    /// main loop re-installs the local domain at every node, so no
    /// restoration is needed.
    #[allow(clippy::too_many_arguments)]
    fn run_diving(
        &mut self,
        lb: &[f64],
        ub: &[f64],
        start_x: &[f64],
        lp: &mut Simplex,
        hooks: &mut dyn ControlHooks,
        tree: &mut Tree,
    ) {
        let mut x = start_x.to_vec();
        let mut dlb = lb.to_vec();
        let mut dub = ub.to_vec();
        for _ in 0..self.settings.dive_depth {
            if self.stats.elapsed() > self.settings.time_limit {
                return;
            }
            let frac = select_branching_var(
                &self.model,
                &x,
                crate::settings::BranchingRule::MostFractional,
                &self.pcost,
                self.settings.permutation_seed,
            );
            let Some((var, val)) = frac else {
                // Integral: try to install it as an incumbent.
                let mut sol = Solution::new(&self.model, x);
                sol.round_integers(&self.model);
                if self.check_full(&sol.x) {
                    let obj = sol.obj;
                    if self.incumbents.try_install(sol, self.stats.nodes) {
                        self.stats.improving_solutions += 1;
                        hooks.on_incumbent(obj, &self.incumbents.best().unwrap().x);
                        tree.prune_by_bound(self.cutoff());
                    }
                }
                return;
            };
            let j = var.0 as usize;
            let r = val.round().clamp(dlb[j], dub[j]);
            dlb[j] = r;
            dub[j] = r;
            lp.set_var_bounds(ugrs_lp::VarId(var.0), r, r);
            let st = lp.solve_dual();
            self.stats.lp_solves += 1;
            if st != LpStatus::Optimal {
                return;
            }
            let sol = lp.extract_solution();
            self.stats.lp_iterations += sol.iterations as u64;
            if sol.obj >= self.cutoff() {
                return; // dive is dominated
            }
            x = sol.x;
        }
    }

    fn pick_branching(
        &mut self,
        depth: usize,
        lb: &[f64],
        ub: &[f64],
        relax_x: &[f64],
        bound: f64,
    ) -> Option<BranchDecision> {
        let mut rules = std::mem::take(&mut self.branchrules);
        let mut picked = None;
        for r in rules.iter_mut() {
            let mut cuts = CutBuffer::default();
            let mut tight = Vec::new();
            let mut ctx =
                self.ctx(depth, lb, ub, Some(relax_x), Some(bound), &[], &mut cuts, &mut tight);
            if let Some(d) = r.branch(&mut ctx) {
                picked = Some(d);
                break;
            }
        }
        self.branchrules = rules;
        picked.or_else(|| {
            select_branching_var(
                &self.model,
                relax_x,
                self.settings.branching,
                &self.pcost,
                self.settings.permutation_seed,
            )
            .map(|(var, value)| BranchDecision {
                var,
                value,
                down_first: value - value.floor() < 0.5,
            })
        })
    }

    fn update_pseudocosts(&mut self, binfo: Option<BranchInfo>, bound: f64) {
        if let Some(bi) = binfo {
            let gain = (bound - bi.parent_bound).max(0.0);
            if gain.is_finite() {
                self.pcost.update(bi.var, bi.frac, gain, bi.up);
            }
        }
    }

    fn finish(&mut self, status: SolveStatus) -> SolveResult {
        self.stats.total_time = self.stats.elapsed();
        if self.stats.root_time == 0.0 {
            self.stats.root_time = self.stats.total_time;
        }
        self.stats.primal_bound = self.incumbents.best_obj().unwrap_or(f64::INFINITY);
        if status == SolveStatus::Optimal {
            if let Some(obj) = self.incumbents.best_obj() {
                self.stats.dual_bound = obj;
            }
        }
        if status == SolveStatus::Infeasible {
            self.stats.dual_bound = f64::INFINITY;
        }
        let best = self.incumbents.best();
        SolveResult {
            status,
            best_obj: best.map(|s| self.model.external_obj(s.obj)),
            best_x: best.map(|s| s.x.clone()),
            dual_bound: self.model.external_obj(self.stats.dual_bound),
            stats: self.stats.clone(),
        }
    }

    /// Access to the incumbent store (used by glue/tests).
    pub fn best_solution(&self) -> Option<&Solution> {
        self.incumbents.best()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarType;

    fn knapsack() -> Model {
        let mut m = Model::new("knap");
        m.set_maximize();
        let data = [(4.0, 12.0), (2.0, 7.0), (1.0, 4.0), (3.0, 9.0), (5.0, 14.0)];
        let vars: Vec<VarId> =
            data.iter().map(|&(_, p)| m.add_var("x", VarType::Binary, 0.0, 1.0, p)).collect();
        let terms: Vec<(VarId, f64)> = vars.iter().zip(&data).map(|(&v, &(w, _))| (v, w)).collect();
        m.add_linear(f64::NEG_INFINITY, 7.0, &terms);
        m
    }

    #[test]
    fn solves_knapsack_to_optimality() {
        let res = knapsack().optimize(Settings::default());
        assert_eq!(res.status, SolveStatus::Optimal);
        // capacity 7: best is items (4,12)+(2,7)+(1,4) = 23.
        assert!((res.best_obj.unwrap() - 23.0).abs() < 1e-6, "obj {:?}", res.best_obj);
        assert!((res.dual_bound - 23.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_model_detected() {
        let mut m = Model::new("inf");
        let x = m.add_var("x", VarType::Binary, 0.0, 1.0, 1.0);
        m.add_linear(2.0, f64::INFINITY, &[(x, 1.0)]);
        let res = m.optimize(Settings::default());
        assert_eq!(res.status, SolveStatus::Infeasible);
        assert!(res.best_obj.is_none());
    }

    #[test]
    fn pure_lp_model_no_branching() {
        let mut m = Model::new("lp");
        let x = m.add_var("x", VarType::Continuous, 0.0, 4.0, -1.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 4.0, -1.0);
        m.add_linear(f64::NEG_INFINITY, 5.0, &[(x, 1.0), (y, 1.0)]);
        let res = m.optimize(Settings::default());
        assert_eq!(res.status, SolveStatus::Optimal);
        assert!((res.best_obj.unwrap() + 5.0).abs() < 1e-6);
        assert_eq!(res.stats.nodes, 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y, x + y <= 3.5, integers in [0,3] → 3.
        let mut m = Model::new("t");
        m.set_maximize();
        let x = m.add_var("x", VarType::Integer, 0.0, 3.0, 1.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 3.0, 1.0);
        m.add_linear(f64::NEG_INFINITY, 3.5, &[(x, 1.0), (y, 1.0)]);
        let res = m.optimize(Settings::default());
        assert_eq!(res.status, SolveStatus::Optimal);
        assert!((res.best_obj.unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_respected() {
        let mut m = Model::new("t");
        m.set_maximize();
        // A problem needing some search: equality-constrained knapsack.
        let vars: Vec<VarId> = (0..12)
            .map(|i| m.add_var("x", VarType::Binary, 0.0, 1.0, ((i * 7) % 11) as f64 + 1.0))
            .collect();
        let terms: Vec<(VarId, f64)> =
            vars.iter().enumerate().map(|(i, &v)| (v, ((i * 5) % 9) as f64 + 1.0)).collect();
        m.add_linear(17.0, 17.0, &terms);
        let st =
            Settings { node_limit: 1, presolve_rounds: 0, heur_frequency: 0, ..Default::default() };
        let mut solver = Solver::new_bare(m, st);
        let res = solver.solve(&mut NoHooks);
        assert_eq!(res.status, SolveStatus::NodeLimit);
    }

    #[test]
    fn subproblem_mode_respects_bound_changes() {
        let m = knapsack();
        let desc = NodeDesc {
            bound_changes: vec![BoundChange { var: VarId(0), lb: 0.0, ub: 0.0 }],
            depth: 1,
            dual_bound: f64::NEG_INFINITY,
        };
        let mut solver = Solver::new(m, Settings::default());
        let res = solver.solve_subproblem(&desc, &mut NoHooks);
        assert_eq!(res.status, SolveStatus::Optimal);
        // Without item 0 (w=4, p=12): best within cap 7 is (2,7)+(5,14)=21.
        assert!((res.best_obj.unwrap() - 21.0).abs() < 1e-6, "obj {:?}", res.best_obj);
    }

    #[test]
    fn injected_solution_prunes() {
        let m = knapsack();
        let mut solver = Solver::new(m, Settings::default());
        // x = items 0,1,2 → profit 23, the optimum.
        assert!(solver.inject_solution(vec![1.0, 1.0, 1.0, 0.0, 0.0]));
        let res = solver.solve(&mut NoHooks);
        assert_eq!(res.status, SolveStatus::Optimal);
        assert!((res.best_obj.unwrap() - 23.0).abs() < 1e-6);
    }

    #[test]
    fn hooks_receive_incumbents() {
        struct Recorder {
            objs: Vec<f64>,
        }
        impl ControlHooks for Recorder {
            fn on_incumbent(&mut self, obj: f64, _x: &[f64]) {
                self.objs.push(obj);
            }
        }
        let mut hooks = Recorder { objs: Vec::new() };
        let m = knapsack();
        let mut solver = Solver::new(m, Settings::default());
        let res = solver.solve(&mut hooks);
        assert_eq!(res.status, SolveStatus::Optimal);
        assert!(!hooks.objs.is_empty());
        // internal sense: minimize −profit; last improvement = −23
        assert!((hooks.objs.last().unwrap() + 23.0).abs() < 1e-6);
    }

    #[test]
    fn abort_hook_stops_search() {
        struct AbortNow;
        impl ControlHooks for AbortNow {
            fn should_abort(&mut self) -> bool {
                true
            }
        }
        let m = knapsack();
        let mut solver = Solver::new(m, Settings::default());
        let res = solver.solve(&mut AbortNow);
        assert_eq!(res.status, SolveStatus::Aborted);
    }

    #[test]
    fn depth_first_also_finds_optimum() {
        let st = Settings { node_selection: NodeSelection::DepthFirst, ..Default::default() };
        let res = knapsack().optimize(st);
        assert_eq!(res.status, SolveStatus::Optimal);
        assert!((res.best_obj.unwrap() - 23.0).abs() < 1e-6);
    }

    #[test]
    fn different_seeds_same_answer() {
        for seed in [0u64, 1, 7, 42] {
            let st = Settings::default().with_seed(seed);
            let res = knapsack().optimize(st);
            assert_eq!(res.status, SolveStatus::Optimal);
            assert!((res.best_obj.unwrap() - 23.0).abs() < 1e-6, "seed {seed}");
        }
    }
}
