//! Solve statistics, including the quantities the paper's tables report
//! (root time, node counts, open nodes, bound trajectories).

use std::time::Instant;

/// Statistics collected during one `Solver::solve` call.
#[derive(Clone, Debug)]
pub struct Statistics {
    /// Nodes processed.
    pub nodes: u64,
    /// LP solves.
    pub lp_solves: u64,
    /// Total simplex iterations.
    pub lp_iterations: u64,
    /// Relaxator solves.
    pub relax_solves: u64,
    /// Cuts installed into the LP.
    pub cuts_applied: u64,
    /// Cuts rejected as pool duplicates.
    pub cuts_duplicate: u64,
    /// Bound tightenings applied by propagation.
    pub propagations: u64,
    /// Variables fixed by reduced-cost fixing.
    pub redcost_fixings: u64,
    /// Feasible solutions found (improving ones only).
    pub improving_solutions: u64,
    /// Wall-clock seconds spent in the root node (LP + separation +
    /// heuristics before the first branching) — Table 1's "root time".
    pub root_time: f64,
    /// Total wall-clock seconds of the solve.
    pub total_time: f64,
    /// Final dual (lower) bound, internal sense.
    pub dual_bound: f64,
    /// Final primal bound (internal sense), +inf when no solution.
    pub primal_bound: f64,
    /// Open nodes remaining when the solve stopped.
    pub open_nodes: u64,
    /// (nodes, dual bound) improvements over time, internal sense.
    pub dual_bound_history: Vec<(u64, f64)>,
    #[doc(hidden)]
    pub started: Option<Instant>,
}

impl Default for Statistics {
    fn default() -> Self {
        Statistics {
            nodes: 0,
            lp_solves: 0,
            lp_iterations: 0,
            relax_solves: 0,
            cuts_applied: 0,
            cuts_duplicate: 0,
            propagations: 0,
            redcost_fixings: 0,
            improving_solutions: 0,
            root_time: 0.0,
            total_time: 0.0,
            dual_bound: f64::NEG_INFINITY,
            primal_bound: f64::INFINITY,
            open_nodes: 0,
            dual_bound_history: Vec::new(),
            started: None,
        }
    }
}

impl Statistics {
    pub(crate) fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    pub(crate) fn elapsed(&self) -> f64 {
        self.started.map_or(0.0, |t| t.elapsed().as_secs_f64())
    }

    /// Relative primal–dual gap in percent, as the paper's Table 2
    /// reports it: `|primal − dual| / |primal| · 100` (0 when closed,
    /// +inf when either bound is missing).
    pub fn gap_percent(&self) -> f64 {
        if self.primal_bound.is_infinite() || self.dual_bound.is_infinite() {
            return f64::INFINITY;
        }
        let denom = self.primal_bound.abs().max(1e-9);
        ((self.primal_bound - self.dual_bound).max(0.0) / denom) * 100.0
    }

    pub(crate) fn record_dual_bound(&mut self, bound: f64) {
        if bound > self.dual_bound {
            self.dual_bound = bound;
            self.dual_bound_history.push((self.nodes, bound));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_computation() {
        let mut s = Statistics::default();
        assert!(s.gap_percent().is_infinite());
        s.primal_bound = 233.0;
        s.dual_bound = 230.9018;
        let g = s.gap_percent();
        assert!((g - 0.9005).abs() < 0.01, "gap = {g}"); // matches Table 2's 0.91 scale
        s.dual_bound = 233.0;
        assert_eq!(s.gap_percent(), 0.0);
    }

    #[test]
    fn dual_bound_history_monotone() {
        let mut s = Statistics::default();
        s.record_dual_bound(1.0);
        s.record_dual_bound(0.5); // ignored
        s.record_dual_bound(2.0);
        assert_eq!(s.dual_bound, 2.0);
        assert_eq!(s.dual_bound_history.len(), 2);
    }
}
