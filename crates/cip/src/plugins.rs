//! Plugin traits — the extension points problem-specific solvers hook
//! into, mirroring SCIP's constraint handlers, separators, propagators,
//! heuristics, branching rules, relaxators and presolvers.

use crate::model::{Model, VarId};

/// A globally valid cutting plane `lhs ≤ Σ terms ≤ rhs`.
///
/// Cuts handed to the framework **must be valid for the whole problem**
/// (not just the current subtree); the framework adds them to the global
/// LP. Node-local reasoning belongs in propagation (bound changes), which
/// is automatically scoped to the subtree.
#[derive(Clone, Debug)]
pub struct Cut {
    pub name: String,
    pub lhs: f64,
    pub rhs: f64,
    pub terms: Vec<(VarId, f64)>,
}

impl Cut {
    pub fn new(name: &str, lhs: f64, rhs: f64, terms: Vec<(VarId, f64)>) -> Self {
        Cut { name: name.to_string(), lhs, rhs, terms }
    }

    /// Violation of the cut at `x` (positive = violated).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let a: f64 = self.terms.iter().map(|&(v, c)| c * x[v.0 as usize]).sum();
        (self.lhs - a).max(a - self.rhs).max(0.0)
    }

    /// A collision-resistant-enough fingerprint for pool deduplication.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        let mut terms = self.terms.clone();
        terms.sort_by_key(|t| t.0);
        for (v, c) in terms {
            mix(v.0 as u64);
            mix((c * 1e6).round() as i64 as u64);
        }
        mix((self.lhs.max(-1e18) * 1e6).round() as i64 as u64);
        mix((self.rhs.min(1e18) * 1e6).round() as i64 as u64);
        h
    }
}

/// Buffer that plugins append cuts to; the solver filters against its cut
/// pool and installs survivors into the LP.
#[derive(Debug, Default)]
pub struct CutBuffer {
    pub cuts: Vec<Cut>,
}

impl CutBuffer {
    pub fn add(&mut self, cut: Cut) {
        self.cuts.push(cut);
    }

    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    pub fn len(&self) -> usize {
        self.cuts.len()
    }
}

/// The view of the solve state handed to plugins.
pub struct SolveCtx<'a> {
    /// The (presolved) model being solved.
    pub model: &'a Model,
    /// Depth of the current node (0 = root).
    pub depth: usize,
    /// Node-local lower bounds per variable.
    pub local_lb: &'a [f64],
    /// Node-local upper bounds per variable.
    pub local_ub: &'a [f64],
    /// Current relaxation solution, if one is available.
    pub relax_x: Option<&'a [f64]>,
    /// Objective value (internal sense) of the relaxation solution.
    pub relax_obj: Option<f64>,
    /// Internal-sense objective of the best incumbent, if any.
    pub incumbent_obj: Option<f64>,
    /// Best incumbent solution values, if any.
    pub incumbent_x: Option<&'a [f64]>,
    /// Reduced costs from the last LP solve (empty when unavailable).
    pub reduced_costs: &'a [f64],
    /// Buffer for cuts produced by the plugin.
    pub cuts: &'a mut CutBuffer,
    /// Bound tightenings requested by the plugin: `(var, new_lb, new_ub)`.
    /// The solver intersects them with the current local bounds.
    pub tightenings: &'a mut Vec<(VarId, f64, f64)>,
    /// Per-solver permutation seed (racing diversification).
    pub seed: u64,
}

impl SolveCtx<'_> {
    /// Convenience: request fixing `v` to `val`.
    pub fn fix_var(&mut self, v: VarId, val: f64) {
        self.tightenings.push((v, val, val));
    }

    /// Convenience: request a new lower bound for `v`.
    pub fn tighten_lb(&mut self, v: VarId, lb: f64) {
        self.tightenings.push((v, lb, f64::INFINITY));
    }

    /// Convenience: request a new upper bound for `v`.
    pub fn tighten_ub(&mut self, v: VarId, ub: f64) {
        self.tightenings.push((v, f64::NEG_INFINITY, ub));
    }
}

/// Outcome of a separation call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SepaResult {
    /// The separator chose not to run.
    DidNotRun,
    /// Ran, found nothing violated.
    NoCuts,
    /// Added this many cuts to the buffer.
    AddedCuts(usize),
}

/// Outcome of enforcing constraints on an integral relaxation solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnforceResult {
    /// The candidate satisfies this handler's constraints.
    Feasible,
    /// Violated; cuts separating the candidate were added.
    AddedCuts(usize),
    /// The whole node can be pruned.
    Cutoff,
}

/// Outcome of a propagation call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropResult {
    Nothing,
    /// Bounds were tightened (see `ctx.tightenings`).
    Reduced,
    /// Local infeasibility detected — prune the node.
    Infeasible,
}

/// Outcome of a relaxator solve.
#[derive(Clone, Debug)]
pub enum RelaxResult {
    /// Relaxation infeasible — prune.
    Infeasible,
    /// Relaxation solved: dual bound (internal sense) and its solution.
    Bounded { bound: f64, x: Vec<f64> },
    /// The relaxation solver failed; the framework falls back to the LP.
    Error,
}

/// Outcome of a presolver call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PresolveOutcome {
    Unchanged,
    Reduced,
    Infeasible,
}

/// A branching decision: split on `var` at `value` (floor/ceil children).
#[derive(Clone, Copy, Debug)]
pub struct BranchDecision {
    pub var: VarId,
    pub value: f64,
    /// Which child to explore first: `true` = down (ub = floor) first.
    pub down_first: bool,
}

/// Constraint handler: owns a constraint class that is not (fully)
/// represented by linear rows, enforced lazily.
pub trait ConstraintHandler: Send {
    fn name(&self) -> &str;

    /// Exact feasibility check of a candidate solution.
    fn check(&mut self, model: &Model, x: &[f64]) -> bool;

    /// Enforce on an integral relaxation solution. Must add separating
    /// cuts (or return `Cutoff`) when `check` would fail.
    fn enforce(&mut self, ctx: &mut SolveCtx) -> EnforceResult;

    /// Separate a fractional relaxation solution (optional).
    fn separate(&mut self, _ctx: &mut SolveCtx) -> SepaResult {
        SepaResult::DidNotRun
    }

    /// Domain propagation (optional).
    fn propagate(&mut self, _ctx: &mut SolveCtx) -> PropResult {
        PropResult::Nothing
    }

    /// Rows to install in the initial LP (e.g. SCIP-Jack's dual-ascent
    /// selected cuts).
    fn init_lp(&mut self, _model: &Model, _cuts: &mut CutBuffer) {}
}

/// Cutting-plane separator for fractional solutions.
pub trait Separator: Send {
    fn name(&self) -> &str;
    fn separate(&mut self, ctx: &mut SolveCtx) -> SepaResult;
}

/// Domain propagator.
pub trait Propagator: Send {
    fn name(&self) -> &str;
    fn propagate(&mut self, ctx: &mut SolveCtx) -> PropResult;
}

/// Primal heuristic: returns a candidate assignment (the framework
/// validates it before installing).
pub trait Heuristic: Send {
    fn name(&self) -> &str;
    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>>;
}

/// Branching rule.
pub trait BranchRule: Send {
    fn name(&self) -> &str;
    /// Returns `None` to defer to the framework's default rule.
    fn branch(&mut self, ctx: &mut SolveCtx) -> Option<BranchDecision>;
}

/// Alternative relaxation (SCIP-SDP's SDP relaxation).
pub trait Relaxator: Send {
    fn name(&self) -> &str;
    fn solve_relaxation(&mut self, ctx: &mut SolveCtx) -> RelaxResult;
}

/// Problem-specific presolver, run in the presolve fixpoint loop.
pub trait Presolver: Send {
    fn name(&self) -> &str;
    fn presolve(&mut self, model: &mut Model) -> PresolveOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_violation() {
        let c = Cut::new("t", 1.0, 2.0, vec![(VarId(0), 1.0)]);
        assert_eq!(c.violation(&[1.5]), 0.0);
        assert_eq!(c.violation(&[0.5]), 0.5);
        assert_eq!(c.violation(&[3.0]), 1.0);
    }

    #[test]
    fn fingerprint_is_order_invariant() {
        let a = Cut::new("a", 0.0, 1.0, vec![(VarId(0), 1.0), (VarId(1), 2.0)]);
        let b = Cut::new("b", 0.0, 1.0, vec![(VarId(1), 2.0), (VarId(0), 1.0)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Cut::new("c", 0.0, 2.0, vec![(VarId(1), 2.0), (VarId(0), 1.0)]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
