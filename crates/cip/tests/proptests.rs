//! Property tests: the CIP branch-and-cut solver against brute-force
//! enumeration on random binary programs, plus structural invariants.

use proptest::prelude::*;
use ugrs_cip::{Model, NodeDesc, Settings, SolveStatus, Solver, VarType};

/// `(lhs, rhs, sparse coefficients)` of a generated row.
type RandomRow = (f64, f64, Vec<(usize, f64)>);

#[derive(Clone, Debug)]
struct RandomBip {
    nvars: usize,
    obj: Vec<f64>,
    rows: Vec<RandomRow>,
}

fn random_bip() -> impl Strategy<Value = RandomBip> {
    (2usize..8, 1usize..5).prop_flat_map(|(nvars, nrows)| {
        let obj = prop::collection::vec(-5.0f64..5.0, nvars);
        let row =
            (prop::collection::vec((0..nvars, -4.0f64..4.0), 1..=nvars), -6.0f64..0.0, 0.0f64..6.0);
        let rows = prop::collection::vec(row, nrows);
        (obj, rows).prop_map(move |(obj, rows)| RandomBip {
            nvars,
            obj,
            rows: rows.into_iter().map(|(t, l, r)| (l, r, t)).collect(),
        })
    })
}

fn build(bip: &RandomBip) -> Model {
    let mut m = Model::new("prop");
    let vars: Vec<_> =
        bip.obj.iter().map(|&c| m.add_var("x", VarType::Binary, 0.0, 1.0, c)).collect();
    for (lhs, rhs, terms) in &bip.rows {
        let t: Vec<_> = terms.iter().map(|&(j, c)| (vars[j], c)).collect();
        m.add_linear(*lhs, *rhs, &t);
    }
    m
}

/// Exhaustive oracle: best objective (minimization) or None if infeasible.
fn brute_force(bip: &RandomBip) -> Option<f64> {
    let n = bip.nvars;
    let mut best: Option<f64> = None;
    'outer: for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
        for (lhs, rhs, terms) in &bip.rows {
            let a: f64 = terms.iter().map(|&(j, c)| c * x[j]).sum();
            if a < lhs - 1e-9 || a > rhs + 1e-9 {
                continue 'outer;
            }
        }
        let obj: f64 = bip.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
        if best.is_none_or(|b| obj < b) {
            best = Some(obj);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_matches_brute_force(bip in random_bip()) {
        let model = build(&bip);
        let res = model.optimize(Settings::default());
        match brute_force(&bip) {
            None => prop_assert_eq!(res.status, SolveStatus::Infeasible),
            Some(expected) => {
                prop_assert_eq!(res.status, SolveStatus::Optimal);
                let got = res.best_obj.unwrap();
                prop_assert!((got - expected).abs() < 1e-6,
                    "solver {} vs brute force {}", got, expected);
                // The reported solution must actually be feasible.
                prop_assert!(model.check_solution(res.best_x.as_ref().unwrap(), 1e-6));
                // Proven bound must close onto the optimum.
                prop_assert!((res.dual_bound - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn all_node_selections_agree(bip in random_bip()) {
        use ugrs_cip::NodeSelection;
        let model = build(&bip);
        let mut objs = Vec::new();
        for sel in [NodeSelection::BestBound, NodeSelection::DepthFirst, NodeSelection::Hybrid] {
            let st = Settings { node_selection: sel, ..Default::default() };
            let res = model.optimize(st);
            objs.push((res.status, res.best_obj));
        }
        for w in objs.windows(2) {
            prop_assert_eq!(w[0].0, w[1].0);
            match (w[0].1, w[1].1) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6),
                (None, None) => {}
                _ => prop_assert!(false, "inconsistent solutions"),
            }
        }
    }

    #[test]
    fn subproblem_union_covers_root(bip in random_bip()) {
        // Branch manually on variable 0: min over the two subproblems
        // must equal the root optimum.
        let model = build(&bip);
        let root = model.optimize(Settings::default());
        let mut objs = Vec::new();
        for v in [0.0, 1.0] {
            let desc = NodeDesc {
                bound_changes: vec![ugrs_cip::tree::BoundChange {
                    var: ugrs_cip::VarId(0),
                    lb: v,
                    ub: v,
                }],
                depth: 1,
                dual_bound: f64::NEG_INFINITY,
            };
            let mut solver = Solver::new(build(&bip), Settings::default());
            let res = solver.solve_subproblem(&desc, &mut ugrs_cip::NoHooks);
            if let Some(o) = res.best_obj {
                objs.push(o);
            }
        }
        match root.best_obj {
            Some(r) => {
                let best_child = objs.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!((r - best_child).abs() < 1e-6,
                    "root {} vs best child {}", r, best_child);
            }
            None => prop_assert!(objs.is_empty()),
        }
    }
}
