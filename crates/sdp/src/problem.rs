//! SDP problem container in the paper's dual form (8).

use ugrs_linalg::Matrix;

/// One PSD block `C − Σᵢ Aᵢ yᵢ ⪰ 0`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SdpBlock {
    pub dim: usize,
    pub c: Matrix,
    /// Coefficient matrix per variable (`None` = zero matrix).
    pub a: Vec<Option<Matrix>>,
}

impl SdpBlock {
    /// New block of dimension `dim` for `m` variables, with zero data.
    pub fn new(dim: usize, m: usize) -> Self {
        SdpBlock { dim, c: Matrix::zeros(dim, dim), a: vec![None; m] }
    }

    /// Sets the coefficient matrix of variable `i` (must be symmetric).
    pub fn set_a(&mut self, i: usize, mat: Matrix) {
        assert_eq!(mat.rows(), self.dim);
        assert!(mat.asymmetry() < 1e-9, "A_i must be symmetric");
        self.a[i] = Some(mat);
    }

    /// Evaluates `S(y) = C − Σ Aᵢ yᵢ`.
    pub fn slack(&self, y: &[f64]) -> Matrix {
        let mut s = self.c.clone();
        for (i, ai) in self.a.iter().enumerate() {
            if let Some(a) = ai {
                if y[i] != 0.0 {
                    s.add_scaled(-y[i], a).expect("block dims");
                }
            }
        }
        s
    }
}

/// A two-sided linear row `lhs ≤ aᵀy ≤ rhs`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LinRow {
    pub lhs: f64,
    pub rhs: f64,
    pub terms: Vec<(usize, f64)>,
}

impl LinRow {
    pub fn activity(&self, y: &[f64]) -> f64 {
        self.terms.iter().map(|&(i, c)| c * y[i]).sum()
    }
}

/// The full problem: `sup bᵀy` under PSD blocks, linear rows and bounds.
#[derive(Clone, Debug)]
pub struct SdpProblem {
    /// Number of variables.
    pub m: usize,
    /// Objective (maximized).
    pub b: Vec<f64>,
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    pub blocks: Vec<SdpBlock>,
    pub lin: Vec<LinRow>,
}

impl SdpProblem {
    /// New problem with `m` variables, all free objective-zero.
    pub fn new(m: usize) -> Self {
        SdpProblem {
            m,
            b: vec![0.0; m],
            lb: vec![-1e9; m],
            ub: vec![1e9; m],
            blocks: Vec::new(),
            lin: Vec::new(),
        }
    }

    pub fn add_block(&mut self, block: SdpBlock) {
        assert_eq!(block.a.len(), self.m);
        self.blocks.push(block);
    }

    pub fn add_lin_row(&mut self, lhs: f64, rhs: f64, terms: Vec<(usize, f64)>) {
        assert!(lhs <= rhs);
        self.lin.push(LinRow { lhs, rhs, terms });
    }

    /// Objective value `bᵀy`.
    pub fn obj(&self, y: &[f64]) -> f64 {
        self.b.iter().zip(y).map(|(b, y)| b * y).sum()
    }

    /// Checks feasibility of `y` within `tol` (smallest eigenvalue of
    /// every block ≥ −tol, rows and bounds within tol).
    pub fn is_feasible(&self, y: &[f64], tol: f64) -> bool {
        if y.len() != self.m {
            return false;
        }
        for (i, &yi) in y.iter().enumerate() {
            if yi < self.lb[i] - tol || yi > self.ub[i] + tol {
                return false;
            }
        }
        for row in &self.lin {
            let a = row.activity(y);
            if a < row.lhs - tol || a > row.rhs + tol {
                return false;
            }
        }
        for blk in &self.blocks {
            let s = blk.slack(y);
            match ugrs_linalg::eigen::symmetric_eigen(&s) {
                Ok(e) => {
                    if e.values[0] < -tol {
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
        true
    }

    /// The barrier degree ν (sum of block dims + finite bound/row sides):
    /// drives the duality-gap estimate of the barrier method.
    pub fn barrier_degree(&self) -> f64 {
        let mut nu = 0.0;
        for b in &self.blocks {
            nu += b.dim as f64;
        }
        for i in 0..self.m {
            if self.lb[i] > -1e8 {
                nu += 1.0;
            }
            if self.ub[i] < 1e8 {
                nu += 1.0;
            }
        }
        for r in &self.lin {
            if r.lhs > -1e8 {
                nu += 1.0;
            }
            if r.rhs < 1e8 {
                nu += 1.0;
            }
        }
        nu.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_evaluation() {
        // S(y) = I − y·E11.
        let mut blk = SdpBlock::new(2, 1);
        blk.c = Matrix::identity(2);
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        blk.set_a(0, a);
        let s = blk.slack(&[0.25]);
        assert_eq!(s[(0, 0)], 0.75);
        assert_eq!(s[(1, 1)], 1.0);
    }

    #[test]
    fn feasibility_check() {
        let mut p = SdpProblem::new(1);
        p.b = vec![1.0];
        let mut blk = SdpBlock::new(1, 1);
        blk.c = Matrix::from_rows(1, 1, vec![1.0]).unwrap();
        blk.set_a(0, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        p.add_block(blk); // 1 − y ≥ 0
        p.add_lin_row(f64::NEG_INFINITY, 0.8, vec![(0, 1.0)]);
        assert!(p.is_feasible(&[0.5], 1e-9));
        assert!(!p.is_feasible(&[0.9], 1e-9)); // row violated
        assert!(!p.is_feasible(&[1.5], 1e-9)); // block violated
    }

    #[test]
    fn barrier_degree_counts_finite_sides() {
        let mut p = SdpProblem::new(2);
        p.lb = vec![0.0, -1e12];
        p.ub = vec![1.0, 1e12];
        p.add_block(SdpBlock::new(3, 2));
        assert_eq!(p.barrier_degree(), 3.0 + 2.0);
    }
}
