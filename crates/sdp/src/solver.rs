//! The barrier solver: damped-Newton log-det barrier maximization with a
//! phase-1 feasibility search and the penalty formulation of §3.2.

use crate::problem::{SdpBlock, SdpProblem};
use ugrs_linalg::{CholeskyFactor, Matrix};

/// Solver knobs.
#[derive(Clone, Copy, Debug)]
pub struct SdpOptions {
    /// Target duality-gap estimate (ν / t).
    pub tol: f64,
    /// Barrier parameter growth factor.
    pub mu: f64,
    /// Initial barrier parameter.
    pub t0: f64,
    /// Newton iterations per centering step.
    pub max_newton: usize,
    /// Penalty coefficient Γ for [`solve_penalty`].
    pub penalty_gamma: f64,
}

impl Default for SdpOptions {
    fn default() -> Self {
        SdpOptions { tol: 1e-7, mu: 10.0, t0: 1.0, max_newton: 60, penalty_gamma: 1e5 }
    }
}

/// Termination status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdpStatus {
    Optimal,
    Infeasible,
    /// The barrier diverged towards unbounded objective.
    Unbounded,
    /// Numerical failure; the result values are unreliable. For B&B use,
    /// retry via [`solve_penalty`] (the SCIP-SDP penalty approach).
    Numerical,
}

/// Solve output.
#[derive(Clone, Debug)]
pub struct SdpResult {
    pub status: SdpStatus,
    pub y: Vec<f64>,
    /// `bᵀy` of the returned point.
    pub obj: f64,
    /// The penalty variable's value when the penalty formulation was
    /// used (`None` for plain solves).
    pub penalty_z: Option<f64>,
    /// Newton iterations spent.
    pub iterations: usize,
}

const BOUND_INF: f64 = 1e8;

/// Internal working form: linear rows folded into 1×1 blocks so that the
/// phase-1 penalty uniformly covers every conic constraint.
struct Work {
    m: usize,
    b: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    blocks: Vec<SdpBlock>,
    free: Vec<usize>,
}

impl Work {
    fn from_problem(p: &SdpProblem) -> Self {
        let mut blocks = p.blocks.clone();
        for row in &p.lin {
            // aᵀy ≤ rhs  →  1×1 block [rhs − aᵀy] ⪰ 0.
            if row.rhs < BOUND_INF {
                let mut blk = SdpBlock::new(1, p.m);
                blk.c = Matrix::from_rows(1, 1, vec![row.rhs]).unwrap();
                for &(i, c) in &row.terms {
                    blk.set_a(i, Matrix::from_rows(1, 1, vec![c]).unwrap());
                }
                blocks.push(blk);
            }
            if row.lhs > -BOUND_INF {
                let mut blk = SdpBlock::new(1, p.m);
                blk.c = Matrix::from_rows(1, 1, vec![-row.lhs]).unwrap();
                for &(i, c) in &row.terms {
                    blk.set_a(i, Matrix::from_rows(1, 1, vec![-c]).unwrap());
                }
                blocks.push(blk);
            }
        }
        let free = (0..p.m).filter(|&i| p.ub[i] - p.lb[i] > 1e-12).collect();
        Work { m: p.m, b: p.b.clone(), lb: p.lb.clone(), ub: p.ub.clone(), blocks, free }
    }

    /// Barrier degree of the working form.
    fn nu(&self) -> f64 {
        let mut nu: f64 = self.blocks.iter().map(|b| b.dim as f64).sum();
        for &i in &self.free {
            if self.lb[i] > -BOUND_INF {
                nu += 1.0;
            }
            if self.ub[i] < BOUND_INF {
                nu += 1.0;
            }
        }
        nu.max(1.0)
    }

    /// Strict feasibility (blocks PD, bounds strict) at `y`.
    fn strictly_feasible(&self, y: &[f64]) -> bool {
        for &i in &self.free {
            if self.lb[i] > -BOUND_INF && y[i] <= self.lb[i] {
                return false;
            }
            if self.ub[i] < BOUND_INF && y[i] >= self.ub[i] {
                return false;
            }
        }
        self.blocks.iter().all(|b| CholeskyFactor::new(&b.slack(y)).is_ok())
    }

    /// Barrier objective `t·bᵀy + Σ log det S + Σ log slacks`; `None`
    /// when not strictly feasible.
    fn f(&self, t: f64, y: &[f64]) -> Option<f64> {
        let mut v = t * self.b.iter().zip(y).map(|(b, y)| b * y).sum::<f64>();
        for blk in &self.blocks {
            let chol = CholeskyFactor::new(&blk.slack(y)).ok()?;
            v += chol.log_det();
        }
        for &i in &self.free {
            if self.lb[i] > -BOUND_INF {
                let s = y[i] - self.lb[i];
                if s <= 0.0 {
                    return None;
                }
                v += s.ln();
            }
            if self.ub[i] < BOUND_INF {
                let s = self.ub[i] - y[i];
                if s <= 0.0 {
                    return None;
                }
                v += s.ln();
            }
        }
        Some(v)
    }

    /// One centering: damped Newton maximization of `f(t, ·)` from `y`.
    /// Returns the Newton iterations used, or `None` on numerical failure.
    fn center(&self, t: f64, y: &mut [f64], max_newton: usize) -> Option<usize> {
        let k = self.free.len();
        if k == 0 {
            return Some(0);
        }
        let mut iters = 0;
        for _ in 0..max_newton {
            iters += 1;
            // Gradient and Hessian over the free variables.
            let mut grad = vec![0.0; k];
            for (gi, &i) in self.free.iter().enumerate() {
                grad[gi] = t * self.b[i];
                if self.lb[i] > -BOUND_INF {
                    grad[gi] += 1.0 / (y[i] - self.lb[i]);
                }
                if self.ub[i] < BOUND_INF {
                    grad[gi] -= 1.0 / (self.ub[i] - y[i]);
                }
            }
            let mut h = Matrix::zeros(k, k); // will hold −Hessian (PSD)
            for (gi, &i) in self.free.iter().enumerate() {
                let mut d = 0.0;
                if self.lb[i] > -BOUND_INF {
                    let s = y[i] - self.lb[i];
                    d += 1.0 / (s * s);
                }
                if self.ub[i] < BOUND_INF {
                    let s = self.ub[i] - y[i];
                    d += 1.0 / (s * s);
                }
                h[(gi, gi)] += d;
            }
            for blk in &self.blocks {
                let chol = CholeskyFactor::new(&blk.slack(y)).ok()?;
                // M_i = S⁻¹ A_i for the free vars present in this block.
                let mut ms: Vec<Option<Matrix>> = vec![None; k];
                for (gi, &i) in self.free.iter().enumerate() {
                    if let Some(a) = &blk.a[i] {
                        let mut m = Matrix::zeros(blk.dim, blk.dim);
                        for col in 0..blk.dim {
                            let x = chol.solve(&a.col(col)).ok()?;
                            for rowi in 0..blk.dim {
                                m[(rowi, col)] = x[rowi];
                            }
                        }
                        // grad += −tr(S⁻¹ A_i)  (d logdet/dy_i)
                        grad[gi] -= m.trace();
                        ms[gi] = Some(m);
                    }
                }
                for gi in 0..k {
                    let Some(mi) = &ms[gi] else { continue };
                    for gj in gi..k {
                        let Some(mj) = &ms[gj] else { continue };
                        // tr(M_i M_j)
                        let mut tr = 0.0;
                        for p in 0..blk.dim {
                            for q in 0..blk.dim {
                                tr += mi[(p, q)] * mj[(q, p)];
                            }
                        }
                        h[(gi, gj)] += tr;
                        if gi != gj {
                            h[(gj, gi)] += tr;
                        }
                    }
                }
            }
            // Newton direction: (−H) dx = grad.
            let hc = CholeskyFactor::new_shifted(&h, 1e-12, 1e6).ok()?;
            let dx = hc.solve(&grad).ok()?;
            let decrement: f64 = grad.iter().zip(&dx).map(|(g, d)| g * d).sum();
            if decrement < 1e-10 {
                return Some(iters);
            }
            // Backtracking line search maintaining strict feasibility.
            let f0 = self.f(t, y)?;
            let mut alpha = 1.0;
            let mut ok = false;
            for _ in 0..60 {
                let mut ytrial: Vec<f64> = y.to_vec();
                for (gi, &i) in self.free.iter().enumerate() {
                    ytrial[i] += alpha * dx[gi];
                }
                if let Some(ft) = self.f(t, &ytrial) {
                    if ft >= f0 + 0.25 * alpha * decrement.min(1e18) - 1e-12 {
                        y.copy_from_slice(&ytrial);
                        ok = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            if !ok {
                // No progress possible: accept the current center.
                return Some(iters);
            }
        }
        Some(iters)
    }

    /// Full barrier path following from a strictly feasible `y`.
    fn barrier(&self, y: &mut [f64], opts: &SdpOptions) -> Option<usize> {
        let nu = self.nu();
        let mut t = opts.t0;
        let mut total = 0;
        while nu / t > opts.tol {
            total += self.center(t, y, opts.max_newton)?;
            t *= opts.mu;
            if total > 100_000 {
                return None;
            }
        }
        total += self.center(nu / opts.tol, y, opts.max_newton)?;
        Some(total)
    }

    /// Extends this work problem with the penalty variable `z`
    /// (`S + z·I ⪰ 0`), objective `b' = (obj_scale·b, −Γ)`.
    fn penalized(&self, gamma: f64, obj_scale: f64, z_lb: f64) -> Work {
        let m = self.m + 1;
        let mut b: Vec<f64> = self.b.iter().map(|v| v * obj_scale).collect();
        b.push(-gamma);
        let mut lb = self.lb.clone();
        let mut ub = self.ub.clone();
        lb.push(z_lb);
        ub.push(1e7);
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for blk in &self.blocks {
            let mut nb = SdpBlock::new(blk.dim, m);
            nb.c = blk.c.clone();
            for i in 0..self.m {
                if let Some(a) = &blk.a[i] {
                    nb.a[i] = Some(a.clone());
                }
            }
            // A_z = −I ⇒ S' = S + z·I.
            let mut neg_i = Matrix::zeros(blk.dim, blk.dim);
            for d in 0..blk.dim {
                neg_i[(d, d)] = -1.0;
            }
            nb.a[self.m] = Some(neg_i);
            blocks.push(nb);
        }
        let mut free: Vec<usize> = self.free.clone();
        free.push(self.m);
        Work { m, b, lb, ub, blocks, free }
    }

    /// A default interior-for-bounds starting point.
    fn start_point(&self) -> Vec<f64> {
        (0..self.m)
            .map(|i| {
                let (l, u) = (self.lb[i], self.ub[i]);
                if u - l <= 1e-12 {
                    l
                } else if l > -BOUND_INF && u < BOUND_INF {
                    0.5 * (l + u)
                } else if l > -BOUND_INF {
                    l + 1.0
                } else if u < BOUND_INF {
                    u - 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Minimum over blocks of λmin(S(y)) (strictness margin).
    fn min_slack_eigen(&self, y: &[f64]) -> f64 {
        let mut worst = f64::INFINITY;
        for blk in &self.blocks {
            match ugrs_linalg::eigen::symmetric_eigen(&blk.slack(y)) {
                Ok(e) => worst = worst.min(e.values[0]),
                Err(_) => return f64::NEG_INFINITY,
            }
        }
        worst
    }
}

/// Solves the SDP: phase 1 (if the default start is not strictly
/// feasible) followed by the barrier path.
pub fn solve(p: &SdpProblem, opts: &SdpOptions) -> SdpResult {
    let w = Work::from_problem(p);
    let mut iters = 0usize;
    let mut y = w.start_point();

    if !w.strictly_feasible(&y) {
        // Phase 1: max −z  s.t. S(y) + z·I ⪰ 0, z ≥ −1. Strict original
        // feasibility ⇔ optimum has z < 0.
        let ph1 = w.penalized(1.0, 0.0, -1.0);
        let mut yz: Vec<f64> = y.clone();
        let z0 = (-w.min_slack_eigen(&y)).max(0.0) + 1.0;
        yz.push(z0.min(1e6));
        if !ph1.strictly_feasible(&yz) {
            let obj = p.obj(&y);
            return SdpResult {
                status: SdpStatus::Numerical,
                y,
                obj,
                penalty_z: None,
                iterations: 0,
            };
        }
        match ph1.barrier(&mut yz, &SdpOptions { tol: 1e-6, ..*opts }) {
            Some(it) => iters += it,
            None => {
                let obj = p.obj(&y);
                return SdpResult {
                    status: SdpStatus::Numerical,
                    y,
                    obj,
                    penalty_z: None,
                    iterations: iters,
                };
            }
        }
        let z = yz[w.m];
        if z > 1e-5 {
            return SdpResult {
                status: SdpStatus::Infeasible,
                y: yz[..w.m].to_vec(),
                obj: 0.0,
                penalty_z: Some(z),
                iterations: iters,
            };
        }
        y = yz[..w.m].to_vec();
        if !w.strictly_feasible(&y) {
            // Slater condition (practically) violated: fall back to the
            // penalty formulation, as SCIP-SDP does after branching.
            let mut res = solve_penalty(p, opts);
            res.iterations += iters;
            return res;
        }
    }

    match w.barrier(&mut y, opts) {
        Some(it) => iters += it,
        None => {
            return SdpResult {
                status: SdpStatus::Numerical,
                y: y.clone(),
                obj: p.obj(&y),
                penalty_z: None,
                iterations: iters,
            }
        }
    }
    let obj = p.obj(&y);
    let status = if obj.abs() > 1e10 { SdpStatus::Unbounded } else { SdpStatus::Optimal };
    SdpResult { status, y, obj, penalty_z: None, iterations: iters }
}

/// The penalty formulation: `sup bᵀy − Γ·z  s.t.  S_k(y) + z·I ⪰ 0,
/// z ≥ 0` — always strictly feasible, so it survives Slater-condition
/// failures introduced by branching (§3.2). When the returned `z` is
/// (near) zero the result is feasible for the original SDP.
pub fn solve_penalty(p: &SdpProblem, opts: &SdpOptions) -> SdpResult {
    let w = Work::from_problem(p);
    let pen = w.penalized(opts.penalty_gamma, 1.0, 0.0);
    let mut yz = w.start_point();
    let z0 = (-w.min_slack_eigen(&yz)).max(0.0) + 1.0;
    yz.push(z0.min(1e6));
    if !pen.strictly_feasible(&yz) {
        return SdpResult {
            status: SdpStatus::Numerical,
            y: yz[..w.m].to_vec(),
            obj: 0.0,
            penalty_z: None,
            iterations: 0,
        };
    }
    match pen.barrier(&mut yz, opts) {
        Some(iters) => {
            let z = yz[w.m].max(0.0);
            let y = yz[..w.m].to_vec();
            let obj = p.obj(&y);
            let status = if z > 1e-5 { SdpStatus::Infeasible } else { SdpStatus::Optimal };
            SdpResult { status, y, obj, penalty_z: Some(z), iterations: iters }
        }
        None => SdpResult {
            status: SdpStatus::Numerical,
            y: yz[..w.m].to_vec(),
            obj: 0.0,
            penalty_z: None,
            iterations: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SdpBlock;

    fn scalar_problem() -> SdpProblem {
        // max y s.t. 1 − y ≥ 0, y ∈ [−5, 5] → y* = 1.
        let mut p = SdpProblem::new(1);
        p.b = vec![1.0];
        p.lb = vec![-5.0];
        p.ub = vec![5.0];
        let mut blk = SdpBlock::new(1, 1);
        blk.c = Matrix::from_rows(1, 1, vec![1.0]).unwrap();
        blk.set_a(0, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        p.add_block(blk);
        p
    }

    #[test]
    fn scalar_sdp_is_lp() {
        let res = solve(&scalar_problem(), &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Optimal);
        assert!((res.obj - 1.0).abs() < 1e-4, "obj = {}", res.obj);
    }

    #[test]
    fn two_by_two_eigenvalue_constraint() {
        // max y s.t. [[2−y, 1], [1, 2−y]] ⪰ 0 → λmin = (2−y) − 1 ≥ 0 → y* = 1.
        let mut p = SdpProblem::new(1);
        p.b = vec![1.0];
        p.lb = vec![-10.0];
        p.ub = vec![10.0];
        let mut blk = SdpBlock::new(2, 1);
        blk.c = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        blk.set_a(0, Matrix::identity(2));
        p.add_block(blk);
        let res = solve(&p, &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Optimal);
        assert!((res.obj - 1.0).abs() < 1e-4, "obj = {}", res.obj);
        assert!(p.is_feasible(&res.y, 1e-6));
    }

    #[test]
    fn linear_rows_respected() {
        // max y, 1 − y ⪰ 0 but row y ≤ 0.4 binds.
        let mut p = scalar_problem();
        p.add_lin_row(f64::NEG_INFINITY, 0.4, vec![(0, 1.0)]);
        let res = solve(&p, &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Optimal);
        assert!((res.obj - 0.4).abs() < 1e-4, "obj = {}", res.obj);
    }

    #[test]
    fn off_diagonal_coupling() {
        // max y1 + y2 s.t. [[1, y1], [y1, 1]] ⪰ 0, y2 ≤ 0.5 row, bounds.
        // → y1* = 1 (PSD boundary), y2* = 0.5, obj 1.5.
        let mut p = SdpProblem::new(2);
        p.b = vec![1.0, 1.0];
        p.lb = vec![-3.0, -3.0];
        p.ub = vec![3.0, 3.0];
        let mut blk = SdpBlock::new(2, 2);
        blk.c = Matrix::identity(2);
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = -1.0;
        a[(1, 0)] = -1.0;
        blk.set_a(0, a); // C − A·y1 = [[1, y1], [y1, 1]]
        p.add_block(blk);
        p.add_lin_row(f64::NEG_INFINITY, 0.5, vec![(1, 1.0)]);
        let res = solve(&p, &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Optimal);
        assert!((res.obj - 1.5).abs() < 1e-3, "obj = {}", res.obj);
        assert!(p.is_feasible(&res.y, 1e-5));
    }

    #[test]
    fn infeasible_block_detected() {
        // −1 − 0·y ⪰ 0 is infeasible.
        let mut p = SdpProblem::new(1);
        p.b = vec![1.0];
        p.lb = vec![0.0];
        p.ub = vec![1.0];
        let mut blk = SdpBlock::new(1, 1);
        blk.c = Matrix::from_rows(1, 1, vec![-1.0]).unwrap();
        p.add_block(blk);
        let res = solve(&p, &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Infeasible);
    }

    #[test]
    fn penalty_handles_infeasibility_gracefully() {
        let mut p = SdpProblem::new(1);
        p.b = vec![1.0];
        p.lb = vec![0.0];
        p.ub = vec![1.0];
        let mut blk = SdpBlock::new(1, 1);
        blk.c = Matrix::from_rows(1, 1, vec![-2.0]).unwrap();
        p.add_block(blk);
        let res = solve_penalty(&p, &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Infeasible);
        // z must absorb the violation (≈ 2).
        assert!((res.penalty_z.unwrap() - 2.0).abs() < 1e-2);
    }

    #[test]
    fn fixed_variables_are_respected() {
        // y0 fixed to 0.3 by bounds, maximize y0 + y1 with y1 ≤ PSD cap 1.
        let mut p = SdpProblem::new(2);
        p.b = vec![1.0, 1.0];
        p.lb = vec![0.3, -5.0];
        p.ub = vec![0.3, 5.0];
        let mut blk = SdpBlock::new(1, 2);
        blk.c = Matrix::from_rows(1, 1, vec![1.0]).unwrap();
        blk.set_a(1, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        p.add_block(blk);
        let res = solve(&p, &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Optimal);
        assert!((res.y[0] - 0.3).abs() < 1e-12);
        assert!((res.obj - 1.3).abs() < 1e-4, "obj = {}", res.obj);
    }

    #[test]
    fn max_cut_style_relaxation() {
        // A classic: max Σ y_i s.t. Diag(y)... use: max y1+y2+y3 with
        // C = [[1,.5,.5],[.5,1,.5],[.5,.5,1]], A_i = e_i e_iᵀ:
        // S = C − Diag(y) ⪰ 0. Optimum pushes S to the PSD boundary.
        let mut p = SdpProblem::new(3);
        p.b = vec![1.0; 3];
        p.lb = vec![-10.0; 3];
        p.ub = vec![10.0; 3];
        let mut blk = SdpBlock::new(3, 3);
        blk.c = Matrix::from_rows(3, 3, vec![1.0, 0.5, 0.5, 0.5, 1.0, 0.5, 0.5, 0.5, 1.0]).unwrap();
        for i in 0..3 {
            let mut a = Matrix::zeros(3, 3);
            a[(i, i)] = 1.0;
            blk.set_a(i, a);
        }
        p.add_block(blk);
        let res = solve(&p, &SdpOptions::default());
        assert_eq!(res.status, SdpStatus::Optimal);
        assert!(p.is_feasible(&res.y, 1e-5));
        // By symmetry y_i = c: S = C − cI ⪰ 0 ⇔ c ≤ λmin(C) = 0.5 → obj 1.5.
        assert!((res.obj - 1.5).abs() < 1e-3, "obj = {}", res.obj);
    }
}
