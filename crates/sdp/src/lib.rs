//! Interior-point semidefinite programming solver — the Mosek stand-in
//! behind SCIP-SDP's nonlinear branch-and-bound (§3.2 of the paper).
//!
//! Problems take the paper's dual form (8):
//!
//! ```text
//! sup bᵀy   s.t.   C_k − Σᵢ A_{k,i} yᵢ ⪰ 0  (k = 1..#blocks),
//!                  lhs ≤ aᵀy ≤ rhs          (linear rows),
//!                  ℓ ≤ y ≤ u.
//! ```
//!
//! The engine is a log-det **barrier method** with damped Newton steps: it
//! maximizes `t·bᵀy + Σ log det S_k(y) + Σ log(bound slacks)` along the
//! central path, geometrically increasing `t`. The matrices here are
//! small and dense, which is exactly the regime of the CBLIB-style
//! relaxations the MISDP solver feeds it.
//!
//! Two properties the paper's solution approach depends on are
//! reproduced faithfully:
//!
//! * a **phase-1 / penalty formulation** ([`solver::solve_penalty`]):
//!   `sup bᵀy − Γ z  s.t.  S_k(y) + z·I ⪰ 0, z ≥ 0` — the device
//!   SCIP-SDP uses when branching destroys the (dual) Slater condition;
//! * strict-interior line searches with Cholesky-based PSD checks, so a
//!   returned `y` is always strictly feasible (up to tolerance).

pub mod problem;
pub mod solver;

pub use problem::{LinRow, SdpBlock, SdpProblem};
pub use solver::{solve, solve_penalty, SdpOptions, SdpResult, SdpStatus};
