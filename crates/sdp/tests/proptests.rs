//! Property tests for the SDP barrier solver: returned points must be
//! feasible, (approximately) optimal against coordinate probing, and the
//! penalty formulation must agree with the plain solve on well-posed
//! problems.

use proptest::prelude::*;
use ugrs_linalg::Matrix;
use ugrs_sdp::{solve, solve_penalty, SdpBlock, SdpOptions, SdpProblem, SdpStatus};

/// Random well-posed SDP: `C = MᵀM + I` (so y = 0 is strictly feasible),
/// random symmetric `Aᵢ`, box bounds.
#[derive(Clone, Debug)]
struct RandomSdp {
    m: usize,
    dim: usize,
    b: Vec<f64>,
    c_entries: Vec<f64>,
    a_entries: Vec<Vec<f64>>,
}

fn random_sdp() -> impl Strategy<Value = RandomSdp> {
    (1usize..4, 2usize..4).prop_flat_map(|(m, dim)| {
        let b = prop::collection::vec(-2.0f64..2.0, m);
        let c = prop::collection::vec(-1.0f64..1.0, dim * dim);
        let a = prop::collection::vec(prop::collection::vec(-1.0f64..1.0, dim * dim), m);
        (b, c, a).prop_map(move |(b, c_entries, a_entries)| RandomSdp {
            m,
            dim,
            b,
            c_entries,
            a_entries,
        })
    })
}

fn build(r: &RandomSdp) -> SdpProblem {
    let mut p = SdpProblem::new(r.m);
    p.b = r.b.clone();
    p.lb = vec![-2.0; r.m];
    p.ub = vec![2.0; r.m];
    let mraw = Matrix::from_rows(r.dim, r.dim, r.c_entries.clone()).unwrap();
    let mut c = mraw.transpose().matmul(&mraw).unwrap();
    for i in 0..r.dim {
        c[(i, i)] += 1.0;
    }
    let mut blk = SdpBlock::new(r.dim, r.m);
    blk.c = c;
    for (i, entries) in r.a_entries.iter().enumerate() {
        let mut a = Matrix::from_rows(r.dim, r.dim, entries.clone()).unwrap();
        a.symmetrize();
        blk.set_a(i, a);
    }
    p.add_block(blk);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn solution_is_feasible_and_locally_optimal(r in random_sdp()) {
        let p = build(&r);
        let res = solve(&p, &SdpOptions::default());
        prop_assert_eq!(res.status, SdpStatus::Optimal);
        prop_assert!(p.is_feasible(&res.y, 1e-5), "infeasible point returned");
        // Coordinate probing: stepping along any +/- e_i while staying
        // feasible must not improve the objective noticeably.
        for i in 0..p.m {
            for step in [0.05, -0.05] {
                let mut y = res.y.clone();
                y[i] += step;
                if p.is_feasible(&y, 1e-9) {
                    let probe = p.obj(&y);
                    prop_assert!(probe <= res.obj + 1e-3,
                        "probe {} beats reported optimum {} (var {}, step {})",
                        probe, res.obj, i, step);
                }
            }
        }
    }

    #[test]
    fn penalty_agrees_on_well_posed_problems(r in random_sdp()) {
        let p = build(&r);
        let plain = solve(&p, &SdpOptions::default());
        let pen = solve_penalty(&p, &SdpOptions::default());
        prop_assert_eq!(plain.status, SdpStatus::Optimal);
        prop_assert_eq!(pen.status, SdpStatus::Optimal);
        // With a strictly feasible problem the penalty variable vanishes
        // and the objectives agree (penalty pays a small Γ-tax, so the
        // tolerance is loose).
        prop_assert!(pen.penalty_z.unwrap_or(1.0) < 1e-3);
        prop_assert!((plain.obj - pen.obj).abs() < 1e-2,
            "plain {} vs penalty {}", plain.obj, pen.obj);
    }

    #[test]
    fn objective_beats_feasible_reference_points(r in random_sdp()) {
        let p = build(&r);
        let res = solve(&p, &SdpOptions::default());
        prop_assert_eq!(res.status, SdpStatus::Optimal);
        // y = 0 is feasible by construction; the optimum must be ≥ its value.
        let zero = vec![0.0; p.m];
        prop_assert!(p.is_feasible(&zero, 1e-9));
        prop_assert!(res.obj >= p.obj(&zero) - 1e-5);
    }
}
