//! Property tests of the strict format layer — the parser satellite of
//! the instance-zoo PR.
//!
//! Two families of properties:
//!
//! * **Round-trip**: `parse(write(x)) == x` for arbitrary valid
//!   instances (structural equality for `.stp`/`.mc`; semantic
//!   [`cbf::problems_equal`] plus writer fixed-point for CBF, whose
//!   in-memory form is not canonical).
//! * **Mutation robustness**: corrupting any single line of a valid
//!   file — garbage tokens, a deleted line, a truncated line — must
//!   yield a diagnosed [`ParseError`] or a clean parse, never a panic;
//!   garbage-token corruption in particular must be *diagnosed*, not
//!   silently misread.

use proptest::prelude::*;
use ugrs_instances::gen::{misdp_cardls, misdp_diag_box, misdp_truss};
use ugrs_instances::{cbf, maxcut, stp, MaxCutInstance, StpInstance};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Costs that survive `Display` → `parse` exactly (any finite f64
/// does; keep them positive and well-scaled like real instances).
fn arb_cost() -> impl Strategy<Value = f64> {
    (1u64..1_000_000, 0usize..3).prop_map(|(n, k)| match k {
        0 => n as f64,
        1 => n as f64 / 8.0, // exact in binary
        _ => n as f64 + 0.5,
    })
}

fn arb_stp() -> impl Strategy<Value = StpInstance> {
    (2usize..12, 0usize..1000).prop_flat_map(|(nodes, tag)| {
        let edge = (0u32..nodes as u32, 0u32..(nodes as u32 - 1), arb_cost()).prop_map(
            move |(a, b, c)| {
                // Distinct endpoints: shift b past a.
                let v = if b >= a { b + 1 } else { b };
                (a, v, c)
            },
        );
        (
            proptest::collection::vec(edge, 0..20),
            proptest::collection::vec(0u32..nodes as u32, 0..6),
        )
            .prop_map(move |(edges, mut terminals)| {
                terminals.sort_unstable();
                terminals.dedup();
                StpInstance { name: format!("p{tag}"), nodes, edges, terminals }
            })
    })
}

fn arb_mc() -> impl Strategy<Value = MaxCutInstance> {
    (2usize..12, 0usize..1000).prop_flat_map(|(n, tag)| {
        let edge = (0u32..n as u32, 0u32..(n as u32 - 1), arb_cost()).prop_map(move |(a, b, w)| {
            let v = if b >= a { b + 1 } else { b };
            (a, v, w)
        });
        proptest::collection::vec(edge, 0..16).prop_map(move |edges| MaxCutInstance {
            name: format!("m{tag}"),
            n,
            edges,
        })
    })
}

/// CBF content comes from the seeded generators — every parameter
/// combination is a structurally different, valid MISDP.
fn arb_cbf_text() -> impl Strategy<Value = String> {
    (0usize..3, 1usize..4, 0u64..50).prop_map(|(family, size, seed)| {
        let p = match family {
            0 => misdp_diag_box(size).0,
            1 => misdp_truss(2, size + 2, seed).0,
            _ => misdp_cardls(size + 1, 1, seed).0,
        };
        cbf::write_cbf(&p)
    })
}

/// Replaces line `k` (mod line count) of `text` with `garbage`.
fn mutate_line(text: &str, k: usize, garbage: &str) -> (String, usize) {
    let lines: Vec<&str> = text.lines().collect();
    let idx = k % lines.len();
    let mutated: Vec<&str> =
        lines.iter().enumerate().map(|(i, l)| if i == idx { garbage } else { *l }).collect();
    (mutated.join("\n") + "\n", idx)
}

/// Deletes line `k` (mod line count) of `text`.
fn delete_line(text: &str, k: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let idx = k % lines.len();
    let kept: Vec<&str> =
        lines.iter().enumerate().filter(|(i, _)| *i != idx).map(|(_, l)| *l).collect();
    kept.join("\n") + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stp_round_trips(inst in arb_stp()) {
        let text = inst.write();
        let back = stp::parse_stp(&text).expect("writer output must parse");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn mc_round_trips(inst in arb_mc()) {
        let text = inst.write();
        let back = maxcut::parse_mc(&text, &inst.name).expect("writer output must parse");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn cbf_round_trips(text in arb_cbf_text()) {
        let p = cbf::parse_cbf(&text, "rt").expect("writer output must parse");
        // Semantic round-trip plus writer fixed point: the writer is
        // the canonical form, so write(parse(write(p))) == write(p).
        prop_assert!(cbf::problems_equal(&p, &cbf::parse_cbf(&cbf::write_cbf(&p), "rt2").unwrap()));
        prop_assert_eq!(cbf::write_cbf(&p), text);
    }

    /// Garbage-token corruption of any single line is *diagnosed*: the
    /// parse fails with a ParseError naming a line — or, when the
    /// garbage landed inside the freeform Comment section (whose keys
    /// SteinLib leaves open), the instance data must come back
    /// untouched. Never a panic, never a silent misread.
    #[test]
    fn stp_garbage_line_is_diagnosed(inst in arb_stp(), k in 0usize..200) {
        let (text, _) = mutate_line(&inst.write(), k, "@garbage@ token%line");
        match stp::parse_stp(&text) {
            Err(err) => prop_assert!(err.line >= 1),
            Ok(back) => {
                prop_assert_eq!(back.nodes, inst.nodes);
                prop_assert_eq!(back.edges, inst.edges);
                prop_assert_eq!(back.terminals, inst.terminals);
            }
        }
    }

    #[test]
    fn mc_garbage_line_is_diagnosed(inst in arb_mc(), k in 0usize..200) {
        let (text, _) = mutate_line(&inst.write(), k, "@garbage@ token%line");
        let err = maxcut::parse_mc(&text, "x").expect_err("garbage line must not parse");
        prop_assert!(err.line >= 1);
    }

    #[test]
    fn cbf_garbage_line_is_diagnosed(text in arb_cbf_text(), k in 0usize..200) {
        let (mutated, _) = mutate_line(&text, k, "@garbage@ token%line");
        let err = cbf::parse_cbf(&mutated, "x").expect_err("garbage line must not parse");
        prop_assert!(err.line >= 1);
    }

    /// Deleting any single line never panics: the parser either
    /// diagnoses the damage or — when the line was redundant (blank,
    /// comment) — still parses cleanly.
    #[test]
    fn stp_line_deletion_never_panics(inst in arb_stp(), k in 0usize..200) {
        let _ = stp::parse_stp(&delete_line(&inst.write(), k));
    }

    #[test]
    fn mc_line_deletion_never_panics(inst in arb_mc(), k in 0usize..200) {
        let _ = maxcut::parse_mc(&delete_line(&inst.write(), k), "x");
    }

    #[test]
    fn cbf_line_deletion_never_panics(text in arb_cbf_text(), k in 0usize..200) {
        let _ = cbf::parse_cbf(&delete_line(&text, k), "x");
    }

    /// Truncating the file at any line never panics either.
    #[test]
    fn truncation_never_panics(inst in arb_stp(), mc in arb_mc(), k in 0usize..200) {
        let text = inst.write();
        let lines: Vec<&str> = text.lines().collect();
        let cut = k % lines.len();
        let _ = stp::parse_stp(&lines[..cut].join("\n"));
        let mtext = mc.write();
        let mlines: Vec<&str> = mtext.lines().collect();
        let _ = maxcut::parse_mc(&mlines[..k % mlines.len()].join("\n"), "x");
    }
}
