//! Strict max-cut `.mc` I/O — the rudy/Biq Mac edge-list format: a
//! header line `n m`, then `m` lines `u v w` with 1-based endpoints.
//! Comment lines starting with `#` are allowed anywhere.

use crate::error::{parse_finite, LineTokens, ParseError, ReadError};
use serde::{Deserialize, Serialize};

/// A weighted max-cut instance over an undirected graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxCutInstance {
    /// Instance name (not stored in the file; set from the file stem or
    /// generator).
    pub name: String,
    /// Number of vertices.
    pub n: usize,
    /// Weighted edges `(u, v, w)`, 0-based, in file order.
    pub edges: Vec<(u32, u32, f64)>,
}

impl MaxCutInstance {
    /// Sum of all edge weights (the constant `W` in the MISDP mapping:
    /// external cut value = `W −` internal objective).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.2).sum()
    }

    /// Cut value of a ±-partition given as a boolean side per vertex.
    pub fn cut_value(&self, side: &[bool]) -> f64 {
        self.edges
            .iter()
            .filter(|&&(u, v, _)| side[u as usize] != side[v as usize])
            .map(|e| e.2)
            .sum()
    }

    /// Serializes in the exact dialect [`parse_mc`] accepts.
    pub fn write(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "# max-cut instance \"{}\"", self.name.replace('"', "")).unwrap();
        writeln!(s, "{} {}", self.n, self.edges.len()).unwrap();
        for &(u, v, w) in &self.edges {
            writeln!(s, "{} {} {}", u + 1, v + 1, w).unwrap();
        }
        s
    }
}

/// Strictly parses `.mc` text; `name` labels the instance (callers pass
/// the file stem).
pub fn parse_mc(text: &str, name: &str) -> Result<MaxCutInstance, ParseError> {
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut last_line = 0;
    for (lineno, raw) in text.lines().enumerate().map(|(i, l)| (i + 1, l)) {
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = LineTokens::new(raw, lineno);
        match header {
            None => {
                let n: usize = toks.parse("vertex count")?;
                let m: usize = toks.parse("edge count")?;
                toks.finish()?;
                header = Some((n, m));
            }
            Some((n, m)) => {
                if edges.len() >= m {
                    return Err(ParseError::at_line(
                        lineno,
                        format!("more than the declared {m} edge lines"),
                    ));
                }
                let (utok, ucol) = toks.expect("edge endpoint")?;
                let u: usize = utok
                    .parse()
                    .map_err(|_| ParseError::at(lineno, ucol, format!("bad endpoint: {utok:?}")))?;
                let (vtok, vcol) = toks.expect("edge endpoint")?;
                let v: usize = vtok
                    .parse()
                    .map_err(|_| ParseError::at(lineno, vcol, format!("bad endpoint: {vtok:?}")))?;
                let w = parse_finite(&mut toks, lineno, "edge weight")?;
                toks.finish()?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(ParseError::at(
                        lineno,
                        ucol,
                        format!("endpoint out of range 1..={n}"),
                    ));
                }
                if u == v {
                    return Err(ParseError::at(lineno, ucol, "self-loop edge"));
                }
                edges.push((u as u32 - 1, v as u32 - 1, w));
            }
        }
    }
    let (n, m) =
        header.ok_or_else(|| ParseError::at_line(1, "empty file; expected `n m` header"))?;
    if edges.len() != m {
        return Err(ParseError::at_line(
            last_line,
            format!("header declares {m} edges but file has {}", edges.len()),
        ));
    }
    Ok(MaxCutInstance { name: name.to_string(), n, edges })
}

/// Reads and strictly parses an `.mc` file; the instance is named after
/// the file stem.
pub fn read_mc(path: &std::path::Path) -> Result<MaxCutInstance, ReadError> {
    let text = std::fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("maxcut");
    Ok(parse_mc(&text, name)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> MaxCutInstance {
        MaxCutInstance {
            name: "tri".into(),
            n: 3,
            edges: vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.5)],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let x = tri();
        assert_eq!(parse_mc(&x.write(), "tri").unwrap(), x);
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        let x = tri();
        assert_eq!(x.total_weight(), 6.5);
        // {0,1} vs {2}: edges (1,2) and (0,2) cross.
        assert_eq!(x.cut_value(&[false, false, true]), 5.5);
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        let err = parse_mc("3 2\n1 2 1.0\n", "x").unwrap_err();
        assert!(err.msg.contains("declares 2"), "{err}");
    }

    #[test]
    fn rejects_bad_weight_with_position() {
        let err = parse_mc("2 1\n1 2 oops\n", "x").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 0);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(parse_mc("2 1\n1 5 1.0\n", "x").unwrap_err().msg.contains("out of range"));
    }
}
