//! Seeded instance generators for the zoo: STP families (hypercube,
//! grid, incidence/PACE-2018-like sparse random), max-cut families, and
//! MISDP families (wrapping the `ugrs-misdp` generators). Every
//! generator is deterministic in its seed; families with analytically
//! known optima report them so catalogs can carry reference values.

use crate::maxcut::MaxCutInstance;
use crate::stp::StpInstance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugrs_misdp::MisdpProblem;
use ugrs_sdp::SdpBlock;
use ugrs_steiner::gen::CostScheme;
use ugrs_steiner::Graph;

/// Hypercube STP: vertices are the `2^d` bit strings, edges flip one
/// bit. With `perturbed = false` (unit costs) and terminals at `0` and
/// `2^d − 1`, the optimum is exactly `d`.
pub fn stp_hypercube(d: usize, perturbed: bool, seed: u64) -> (StpInstance, Option<f64>) {
    let scheme = if perturbed { CostScheme::Perturbed } else { CostScheme::Unit };
    let g = ugrs_steiner::gen::hypercube(d, scheme, seed);
    let name = format!("hc{d}{}-s{seed}", if perturbed { "p" } else { "u" });
    (StpInstance::from_graph(&name, &g), None)
}

/// Hypercube STP with exactly two antipodal terminals and unit costs:
/// the optimum is the Hamming distance `d`.
pub fn stp_hypercube_antipodal(d: usize) -> (StpInstance, Option<f64>) {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for u in 0..n {
        for b in 0..d {
            let v = u ^ (1 << b);
            if u < v {
                g.add_edge(u, v, 1.0);
            }
        }
    }
    g.set_terminal(0, true);
    g.set_terminal(n - 1, true);
    (StpInstance::from_graph(&format!("hc{d}-antipodal"), &g), Some(d as f64))
}

/// Grid STP on a `w × h` lattice with unit costs and terminals at the
/// two opposite corners: the optimum is the Manhattan distance
/// `(w − 1) + (h − 1)`.
pub fn stp_grid_corners(w: usize, h: usize) -> (StpInstance, Option<f64>) {
    assert!(w >= 2 && h >= 2, "grid needs at least 2×2");
    let idx = |x: usize, y: usize| y * w + x;
    let mut g = Graph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(idx(x, y), idx(x + 1, y), 1.0);
            }
            if y + 1 < h {
                g.add_edge(idx(x, y), idx(x, y + 1), 1.0);
            }
        }
    }
    g.set_terminal(idx(0, 0), true);
    g.set_terminal(idx(w - 1, h - 1), true);
    (StpInstance::from_graph(&format!("grid{w}x{h}-corners"), &g), Some((w + h - 2) as f64))
}

/// Grid STP with perturbed integer costs and `nterm` random terminals
/// (no known optimum).
pub fn stp_grid(w: usize, h: usize, nterm: usize, seed: u64) -> (StpInstance, Option<f64>) {
    assert!(w >= 2 && h >= 2 && nterm >= 2 && nterm <= w * h);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6772_6964);
    let idx = |x: usize, y: usize| y * w + x;
    let mut g = Graph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(idx(x, y), idx(x + 1, y), rng.gen_range(1..=10) as f64);
            }
            if y + 1 < h {
                g.add_edge(idx(x, y), idx(x, y + 1), rng.gen_range(1..=10) as f64);
            }
        }
    }
    let mut placed = 0;
    while placed < nterm {
        let v = rng.gen_range(0..w * h);
        if !g.is_terminal(v) {
            g.set_terminal(v, true);
            placed += 1;
        }
    }
    (StpInstance::from_graph(&format!("grid{w}x{h}t{nterm}-s{seed}"), &g), None)
}

/// PACE-2018-like sparse random STP: a random spanning tree plus
/// `extra` random chords, integer costs in `1..=10`, `nterm` random
/// terminals (no known optimum).
pub fn stp_incidence(
    n: usize,
    extra: usize,
    nterm: usize,
    seed: u64,
) -> (StpInstance, Option<f64>) {
    assert!(n >= 2 && nterm >= 2 && nterm <= n);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7061_6365);
    let mut g = Graph::new(n);
    // Random spanning tree: attach each vertex to a random earlier one.
    for v in 1..n {
        let u = rng.gen_range(0..v);
        g.add_edge(u, v, rng.gen_range(1..=10) as f64);
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < 50 * extra.max(1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u.min(v), u.max(v), rng.gen_range(1..=10) as f64);
            added += 1;
        }
    }
    let mut placed = 0;
    while placed < nterm {
        let v = rng.gen_range(0..n);
        if !g.is_terminal(v) {
            g.set_terminal(v, true);
            placed += 1;
        }
    }
    (StpInstance::from_graph(&format!("inc{n}e{extra}t{nterm}-s{seed}"), &g), None)
}

/// Star STP: `k` terminals, each tied to a central Steiner vertex at
/// cost 1 and pairwise at cost 2. The optimum is the star, cost `k`.
pub fn stp_star(k: usize) -> (StpInstance, Option<f64>) {
    assert!(k >= 3);
    let mut g = Graph::new(k + 1);
    for t in 1..=k {
        g.add_edge(0, t, 1.0);
        g.set_terminal(t, true);
        for s in t + 1..=k {
            g.add_edge(t, s, 2.0);
        }
    }
    (StpInstance::from_graph(&format!("star{k}"), &g), Some(k as f64))
}

/// Unit-weight ring max-cut on `n ≥ 3` vertices: the optimum cuts every
/// edge when `n` is even (`n`), all but one when odd (`n − 1`).
pub fn maxcut_ring(n: usize) -> (MaxCutInstance, Option<f64>) {
    assert!(n >= 3);
    let edges = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32, 1.0)).collect();
    let opt = if n.is_multiple_of(2) { n } else { n - 1 };
    (MaxCutInstance { name: format!("ring{n}"), n, edges }, Some(opt as f64))
}

/// Unit-weight complete-graph max-cut: the optimum is `⌊n²/4⌋`
/// (balanced bipartition).
pub fn maxcut_complete(n: usize) -> (MaxCutInstance, Option<f64>) {
    assert!(n >= 2);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u as u32, v as u32, 1.0));
        }
    }
    (MaxCutInstance { name: format!("k{n}"), n, edges }, Some((n * n / 4) as f64))
}

/// Random max-cut: `m` distinct random edges with integer weights in
/// `1..=10` (no known optimum).
pub fn maxcut_random(n: usize, m: usize, seed: u64) -> (MaxCutInstance, Option<f64>) {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d61_7863);
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    let mut guard = 0;
    while edges.len() < m && guard < 100 * m.max(1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && seen.insert((u.min(v), u.max(v))) {
            edges.push((u.min(v) as u32, u.max(v) as u32, rng.gen_range(1..=10) as f64));
        }
    }
    (MaxCutInstance { name: format!("rnd{n}m{m}-s{seed}"), n, edges }, None)
}

/// Tiny diagonal MISDP with a known optimum: maximize `Σ yᵢ` subject to
/// `diag(2 − y₁, …, 2 − yₖ) ⪰ 0`, `yᵢ ∈ {0, …, 5}` — the optimum is
/// `2k`.
pub fn misdp_diag_box(k: usize) -> (MisdpProblem, Option<f64>) {
    assert!(k >= 1);
    let mut p = MisdpProblem::new(&format!("diagbox{k}"), k);
    let mut blk = SdpBlock::new(k, k);
    for i in 0..k {
        p.b[i] = 1.0;
        p.lb[i] = 0.0;
        p.ub[i] = 5.0;
        p.integer[i] = true;
        blk.c[(i, i)] = 2.0;
        let mut a = ugrs_linalg::Matrix::zeros(k, k);
        a[(i, i)] = 1.0;
        blk.set_a(i, a);
    }
    p.blocks.push(blk);
    (p, Some(2.0 * k as f64))
}

/// Truss topology MISDP from the `ugrs-misdp` generator (no known
/// optimum).
pub fn misdp_truss(dim: usize, bars: usize, seed: u64) -> (MisdpProblem, Option<f64>) {
    (ugrs_misdp::gen::truss_topology(dim, bars, seed), None)
}

/// Cardinality-constrained least-squares MISDP from the `ugrs-misdp`
/// generator (no known optimum).
pub fn misdp_cardls(pdim: usize, k: usize, seed: u64) -> (MisdpProblem, Option<f64>) {
    (ugrs_misdp::gen::cardinality_ls(pdim, k, seed), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(stp_grid(3, 3, 3, 42).0, stp_grid(3, 3, 3, 42).0);
        assert_eq!(stp_incidence(10, 5, 3, 7).0, stp_incidence(10, 5, 3, 7).0);
        assert_eq!(maxcut_random(8, 12, 9).0, maxcut_random(8, 12, 9).0);
    }

    #[test]
    fn analytic_references() {
        assert_eq!(stp_hypercube_antipodal(3).1, Some(3.0));
        assert_eq!(stp_grid_corners(3, 4).1, Some(5.0));
        assert_eq!(stp_star(4).1, Some(4.0));
        assert_eq!(maxcut_ring(6).1, Some(6.0));
        assert_eq!(maxcut_ring(5).1, Some(4.0));
        assert_eq!(maxcut_complete(4).1, Some(4.0));
        assert_eq!(misdp_diag_box(2).1, Some(4.0));
    }

    #[test]
    fn generated_instances_are_wellformed() {
        let (g, _) = stp_incidence(12, 6, 4, 3);
        assert_eq!(g.terminals.len(), 4);
        let graph = g.to_graph();
        assert_eq!(graph.num_terminals(), 4);
        let (mc, _) = maxcut_random(6, 8, 1);
        assert_eq!(mc.edges.len(), 8);
        let (p, _) = misdp_diag_box(2);
        assert!(p.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[3.0, 0.0], 1e-9));
    }
}
