//! Strict CBF-lite (CBLIB subset) parsing for MISDP instances.
//!
//! The dialect is exactly what `ugrs_misdp::cbf::write_cbf` emits —
//! `VER`, `OBJSENSE`, `VAR` (F/L+/L− cones), `INT`, `BOUNDS` (extension:
//! `idx lb ub`), `OBJACOORD`, `PSDCON`, `HCOORD` (with H = −A),
//! `DCOORD` (D = C) and `LROWS` — but unlike the lenient reader in
//! `ugrs-misdp`, every rejection here is diagnosed with line and column,
//! sections may appear at most once, indices are range-checked at the
//! line that uses them, and duplicate coordinate entries are errors
//! rather than silent overwrites.

use crate::error::{parse_finite, parse_no_nan, LineTokens, ParseError, ReadError};
use std::collections::HashSet;
use ugrs_linalg::Matrix;
use ugrs_misdp::MisdpProblem;
use ugrs_sdp::{LinRow, SdpBlock};

/// Re-export of the canonical writer: generated instances are exported
/// with this and re-read by [`parse_cbf`].
pub use ugrs_misdp::cbf::write_cbf;

/// The non-comment lines of the input, with their 1-based line numbers.
struct Lines<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .collect();
        Lines { lines, pos: 0 }
    }

    fn peek_lineno(&self) -> usize {
        self.lines
            .get(self.pos)
            .map_or_else(|| self.lines.last().map_or(1, |&(n, _)| n + 1), |&(n, _)| n)
    }

    fn next(&mut self, what: &str) -> Result<(usize, &'a str), ParseError> {
        let &(n, l) = self
            .lines
            .get(self.pos)
            .ok_or_else(|| ParseError::at_line(self.peek_lineno(), format!("expected {what}")))?;
        self.pos += 1;
        Ok((n, l))
    }

    /// Next line parsed as a single `usize` count.
    fn count(&mut self, what: &str) -> Result<usize, ParseError> {
        let (lineno, line) = self.next(what)?;
        let mut toks = LineTokens::new(line, lineno);
        let n = toks.parse::<usize>(what)?;
        toks.finish()?;
        Ok(n)
    }
}

/// Strictly parses CBF-lite text; `name` labels the returned problem
/// (callers pass the file stem).
pub fn parse_cbf(text: &str, name: &str) -> Result<MisdpProblem, ParseError> {
    let mut lines = Lines::new(text);

    // VER must come first.
    let (lineno, first) = lines.next("VER section")?;
    if first.trim() != "VER" {
        return Err(ParseError::at(lineno, 1, "expected VER as the first section"));
    }
    let ver = lines.count("format version")?;
    if !(1..=4).contains(&ver) {
        return Err(ParseError::at_line(lineno + 1, format!("unsupported CBF version {ver}")));
    }

    let mut maximize = true;
    let mut m: Option<usize> = None;
    let mut integer: Vec<bool> = Vec::new();
    let mut lb: Vec<f64> = Vec::new();
    let mut ub: Vec<f64> = Vec::new();
    let mut b: Vec<f64> = Vec::new();
    let mut dims: Vec<usize> = Vec::new();
    let mut blocks: Vec<SdpBlock> = Vec::new();
    let mut amats: Vec<Vec<Option<Matrix>>> = Vec::new();
    let mut lin: Vec<LinRow> = Vec::new();
    let mut seen: HashSet<&'static str> = HashSet::new();

    let need_vars = |m: &Option<usize>, lineno: usize, sec: &str| {
        m.ok_or_else(|| ParseError::at_line(lineno, format!("{sec} before VAR")))
    };
    let mut mark = |sec: &'static str, lineno: usize| {
        if !seen.insert(sec) {
            return Err(ParseError::at_line(lineno, format!("duplicate {sec} section")));
        }
        Ok(())
    };

    while lines.pos < lines.lines.len() {
        let (lineno, header) = lines.next("a section header")?;
        let sec = header.trim();
        match sec {
            "OBJSENSE" => {
                mark("OBJSENSE", lineno)?;
                let (sl, sval) = lines.next("objective sense")?;
                maximize = match sval.trim() {
                    "MAX" => true,
                    "MIN" => false,
                    other => return Err(ParseError::at(sl, 1, format!("bad OBJSENSE {other:?}"))),
                };
            }
            "VAR" => {
                mark("VAR", lineno)?;
                let (hl, hline) = lines.next("VAR header")?;
                let mut toks = LineTokens::new(hline, hl);
                let n = toks.parse::<usize>("variable count")?;
                let ncones = toks.parse::<usize>("cone count")?;
                toks.finish()?;
                if n == 0 {
                    return Err(ParseError::at_line(hl, "VAR declares zero variables"));
                }
                m = Some(n);
                integer = vec![false; n];
                lb = vec![-1e6; n];
                ub = vec![1e6; n];
                b = vec![0.0; n];
                let mut covered = 0usize;
                for _ in 0..ncones {
                    let (cl, cline) = lines.next("a cone line")?;
                    let mut toks = LineTokens::new(cline, cl);
                    let (kind, kcol) = toks.expect("cone kind")?;
                    let len = toks.parse::<usize>("cone length")?;
                    toks.finish()?;
                    if covered + len > n {
                        return Err(ParseError::at(cl, kcol, "cones cover more than VAR count"));
                    }
                    match kind {
                        "F" => {}
                        "L+" => {
                            for v in lb.iter_mut().skip(covered).take(len) {
                                *v = 0.0;
                            }
                            for v in ub.iter_mut().skip(covered).take(len) {
                                *v = 1e9;
                            }
                        }
                        "L-" => {
                            for v in lb.iter_mut().skip(covered).take(len) {
                                *v = -1e9;
                            }
                            for v in ub.iter_mut().skip(covered).take(len) {
                                *v = 0.0;
                            }
                        }
                        other => {
                            return Err(ParseError::at(
                                cl,
                                kcol,
                                format!("unsupported cone {other:?}"),
                            ))
                        }
                    }
                    covered += len;
                }
                if covered != n {
                    return Err(ParseError::at_line(
                        hl,
                        format!("cones cover {covered} of {n} variables"),
                    ));
                }
            }
            "INT" => {
                mark("INT", lineno)?;
                let nvars = need_vars(&m, lineno, "INT")?;
                let k = lines.count("INT count")?;
                for _ in 0..k {
                    let (il, iline) = lines.next("an INT index")?;
                    let mut toks = LineTokens::new(iline, il);
                    let (tok, col) = toks.expect("variable index")?;
                    let idx: usize = tok.parse().map_err(|_| {
                        ParseError::at(il, col, format!("bad variable index: {tok:?}"))
                    })?;
                    toks.finish()?;
                    if idx >= nvars {
                        return Err(ParseError::at(il, col, format!("index {idx} >= {nvars}")));
                    }
                    if integer[idx] {
                        return Err(ParseError::at(il, col, "duplicate INT index"));
                    }
                    integer[idx] = true;
                }
            }
            "BOUNDS" => {
                mark("BOUNDS", lineno)?;
                let nvars = need_vars(&m, lineno, "BOUNDS")?;
                let k = lines.count("BOUNDS count")?;
                for _ in 0..k {
                    let (bl, bline) = lines.next("a bounds line")?;
                    let mut toks = LineTokens::new(bline, bl);
                    let (tok, col) = toks.expect("variable index")?;
                    let idx: usize = tok.parse().map_err(|_| {
                        ParseError::at(bl, col, format!("bad variable index: {tok:?}"))
                    })?;
                    let lo = parse_no_nan(&mut toks, bl, "lower bound")?;
                    let hi = parse_no_nan(&mut toks, bl, "upper bound")?;
                    toks.finish()?;
                    if idx >= nvars {
                        return Err(ParseError::at(bl, col, format!("index {idx} >= {nvars}")));
                    }
                    if lo > hi {
                        return Err(ParseError::at_line(bl, format!("empty bound [{lo}, {hi}]")));
                    }
                    lb[idx] = lo;
                    ub[idx] = hi;
                }
            }
            "OBJACOORD" => {
                mark("OBJACOORD", lineno)?;
                let nvars = need_vars(&m, lineno, "OBJACOORD")?;
                let k = lines.count("OBJACOORD count")?;
                let mut touched = HashSet::new();
                for _ in 0..k {
                    let (ol, oline) = lines.next("an objective entry")?;
                    let mut toks = LineTokens::new(oline, ol);
                    let (tok, col) = toks.expect("variable index")?;
                    let idx: usize = tok.parse().map_err(|_| {
                        ParseError::at(ol, col, format!("bad variable index: {tok:?}"))
                    })?;
                    let val = parse_finite(&mut toks, ol, "objective value")?;
                    toks.finish()?;
                    if idx >= nvars {
                        return Err(ParseError::at(ol, col, format!("index {idx} >= {nvars}")));
                    }
                    if !touched.insert(idx) {
                        return Err(ParseError::at(ol, col, "duplicate objective index"));
                    }
                    b[idx] = val;
                }
            }
            "PSDCON" => {
                mark("PSDCON", lineno)?;
                let nvars = need_vars(&m, lineno, "PSDCON")?;
                let k = lines.count("PSDCON count")?;
                for _ in 0..k {
                    let (dl, dline) = lines.next("a block dimension")?;
                    let mut toks = LineTokens::new(dline, dl);
                    let dim = toks.parse::<usize>("block dimension")?;
                    toks.finish()?;
                    if dim == 0 {
                        return Err(ParseError::at_line(dl, "zero-dimension PSD block"));
                    }
                    dims.push(dim);
                    blocks.push(SdpBlock::new(dim, nvars));
                    amats.push(vec![None; nvars]);
                }
            }
            "HCOORD" => {
                mark("HCOORD", lineno)?;
                let nvars = need_vars(&m, lineno, "HCOORD")?;
                let k = lines.count("HCOORD count")?;
                let mut touched = HashSet::new();
                for _ in 0..k {
                    let (hl, hline) = lines.next("an HCOORD entry")?;
                    let mut toks = LineTokens::new(hline, hl);
                    let (vtok, vcol) = toks.expect("variable index")?;
                    let var: usize = vtok.parse().map_err(|_| {
                        ParseError::at(hl, vcol, format!("bad variable index: {vtok:?}"))
                    })?;
                    let (btok, bcol) = toks.expect("block index")?;
                    let blk: usize = btok.parse().map_err(|_| {
                        ParseError::at(hl, bcol, format!("bad block index: {btok:?}"))
                    })?;
                    let (rtok, rcol) = toks.expect("row")?;
                    let r: usize = rtok
                        .parse()
                        .map_err(|_| ParseError::at(hl, rcol, format!("bad row: {rtok:?}")))?;
                    let (ctok, ccol) = toks.expect("col")?;
                    let c: usize = ctok
                        .parse()
                        .map_err(|_| ParseError::at(hl, ccol, format!("bad col: {ctok:?}")))?;
                    let val = parse_finite(&mut toks, hl, "coefficient")?;
                    toks.finish()?;
                    if var >= nvars {
                        return Err(ParseError::at(hl, vcol, format!("index {var} >= {nvars}")));
                    }
                    let dim = *dims.get(blk).ok_or_else(|| {
                        ParseError::at(hl, bcol, format!("block {blk} not in PSDCON"))
                    })?;
                    if r >= dim || c >= dim {
                        return Err(ParseError::at(hl, rcol, format!("entry outside {dim}×{dim}")));
                    }
                    if !touched.insert((var, blk, r.max(c), r.min(c))) {
                        return Err(ParseError::at(hl, rcol, "duplicate HCOORD entry"));
                    }
                    // H = −A.
                    let mat = amats[blk][var].get_or_insert_with(|| Matrix::zeros(dim, dim));
                    mat[(r, c)] = -val;
                    mat[(c, r)] = -val;
                }
            }
            "DCOORD" => {
                mark("DCOORD", lineno)?;
                let k = lines.count("DCOORD count")?;
                let mut touched = HashSet::new();
                for _ in 0..k {
                    let (dl, dline) = lines.next("a DCOORD entry")?;
                    let mut toks = LineTokens::new(dline, dl);
                    let (btok, bcol) = toks.expect("block index")?;
                    let blk: usize = btok.parse().map_err(|_| {
                        ParseError::at(dl, bcol, format!("bad block index: {btok:?}"))
                    })?;
                    let (rtok, rcol) = toks.expect("row")?;
                    let r: usize = rtok
                        .parse()
                        .map_err(|_| ParseError::at(dl, rcol, format!("bad row: {rtok:?}")))?;
                    let (ctok, ccol) = toks.expect("col")?;
                    let c: usize = ctok
                        .parse()
                        .map_err(|_| ParseError::at(dl, ccol, format!("bad col: {ctok:?}")))?;
                    let val = parse_finite(&mut toks, dl, "constant")?;
                    toks.finish()?;
                    let dim = *dims.get(blk).ok_or_else(|| {
                        ParseError::at(dl, bcol, format!("block {blk} not in PSDCON"))
                    })?;
                    if r >= dim || c >= dim {
                        return Err(ParseError::at(dl, rcol, format!("entry outside {dim}×{dim}")));
                    }
                    if !touched.insert((blk, r.max(c), r.min(c))) {
                        return Err(ParseError::at(dl, rcol, "duplicate DCOORD entry"));
                    }
                    blocks[blk].c[(r, c)] = val;
                    blocks[blk].c[(c, r)] = val;
                }
            }
            "LROWS" => {
                mark("LROWS", lineno)?;
                let nvars = need_vars(&m, lineno, "LROWS")?;
                let k = lines.count("LROWS count")?;
                for _ in 0..k {
                    let (ll, lline) = lines.next("a linear row")?;
                    let mut toks = LineTokens::new(lline, ll);
                    let lhs = parse_no_nan(&mut toks, ll, "row lhs")?;
                    let rhs = parse_no_nan(&mut toks, ll, "row rhs")?;
                    let nterms = toks.parse::<usize>("term count")?;
                    if lhs > rhs {
                        return Err(ParseError::at_line(ll, format!("empty row [{lhs}, {rhs}]")));
                    }
                    let mut terms = Vec::with_capacity(nterms);
                    for _ in 0..nterms {
                        let (itok, icol) = toks.expect("term index")?;
                        let idx: usize = itok.parse().map_err(|_| {
                            ParseError::at(ll, icol, format!("bad term index: {itok:?}"))
                        })?;
                        let coef = parse_finite(&mut toks, ll, "term coefficient")?;
                        if idx >= nvars {
                            return Err(ParseError::at(
                                ll,
                                icol,
                                format!("index {idx} >= {nvars}"),
                            ));
                        }
                        terms.push((idx, coef));
                    }
                    toks.finish()?;
                    lin.push(LinRow { lhs, rhs, terms });
                }
            }
            other => {
                return Err(ParseError::at(lineno, 1, format!("unsupported section {other:?}")))
            }
        }
    }

    let nvars = m.ok_or_else(|| ParseError::at_line(lines.peek_lineno(), "missing VAR section"))?;
    if !maximize {
        for v in b.iter_mut() {
            *v = -*v;
        }
    }
    let mut p = MisdpProblem::new(name, nvars);
    p.b = b;
    p.lb = lb;
    p.ub = ub;
    p.integer = integer;
    for (blk, mats) in blocks.iter_mut().zip(amats) {
        for (var, mat) in mats.into_iter().enumerate() {
            if let Some(mat) = mat {
                blk.set_a(var, mat);
            }
        }
    }
    p.blocks = blocks;
    p.lin = lin;
    Ok(p)
}

/// Reads and strictly parses a CBF-lite file; the problem is named after
/// the file stem.
pub fn read_cbf(path: &std::path::Path) -> Result<MisdpProblem, ReadError> {
    let text = std::fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("cbf");
    Ok(parse_cbf(&text, name)?)
}

/// Semantic equality of two problems (ignoring the name): same
/// variables, bounds, integrality, objective, PSD data (a `None`
/// coefficient equals a zero matrix) and linear rows.
pub fn problems_equal(a: &MisdpProblem, b: &MisdpProblem) -> bool {
    fn mat_eq(dim: usize, x: Option<&Matrix>, y: Option<&Matrix>) -> bool {
        (0..dim).all(|r| {
            (0..dim).all(|c| {
                let xv = x.map_or(0.0, |m| m[(r, c)]);
                let yv = y.map_or(0.0, |m| m[(r, c)]);
                xv == yv
            })
        })
    }
    a.m == b.m
        && a.b == b.b
        && a.lb == b.lb
        && a.ub == b.ub
        && a.integer == b.integer
        && a.blocks.len() == b.blocks.len()
        && a.blocks.iter().zip(&b.blocks).all(|(x, y)| {
            x.dim == y.dim
                && mat_eq(x.dim, Some(&x.c), Some(&y.c))
                && (0..a.m).all(|v| mat_eq(x.dim, x.a[v].as_ref(), y.a[v].as_ref()))
        })
        && a.lin.len() == b.lin.len()
        && a.lin
            .iter()
            .zip(&b.lin)
            .all(|(x, y)| x.lhs == y.lhs && x.rhs == y.rhs && x.terms == y.terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrs_misdp::gen::{cardinality_ls, truss_topology};

    #[test]
    fn round_trips_generated_instances() {
        for p in [truss_topology(3, 4, 1), cardinality_ls(3, 2, 2)] {
            let text = write_cbf(&p);
            let q = parse_cbf(&text, "rt").unwrap();
            assert!(problems_equal(&p, &q), "round trip changed {}", p.name);
            // And the canonical writer is a fixed point.
            assert_eq!(write_cbf(&q), text);
        }
    }

    #[test]
    fn agrees_with_lenient_reader() {
        let p = truss_topology(3, 4, 7);
        let text = write_cbf(&p);
        let lenient = ugrs_misdp::cbf::parse_cbf(&text).unwrap();
        let strict = parse_cbf(&text, "x").unwrap();
        assert!(problems_equal(&lenient, &strict));
    }

    #[test]
    fn rejects_missing_ver() {
        let err = parse_cbf("OBJSENSE\nMAX\n", "x").unwrap_err();
        assert!(err.msg.contains("VER"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_with_position() {
        let p = truss_topology(3, 4, 1);
        let text = write_cbf(&p);
        // Corrupt the first OBJACOORD index to an out-of-range variable.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let oa = lines.iter().position(|l| l == "OBJACOORD").unwrap();
        let first = lines[oa + 2].clone();
        let val = first.split_whitespace().nth(1).unwrap();
        lines[oa + 2] = format!("99 {val}");
        let err = parse_cbf(&lines.join("\n"), "x").unwrap_err();
        assert_eq!(err.line, oa + 3);
        assert!(err.msg.contains("99"), "{err}");
    }

    #[test]
    fn rejects_duplicate_sections() {
        let p = cardinality_ls(2, 1, 3);
        let text = write_cbf(&p);
        let dup = format!("{text}\nOBJSENSE\nMAX\nOBJSENSE\nMAX\n");
        let err = parse_cbf(&dup, "x").unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn min_objsense_flips_objective() {
        let p = cardinality_ls(2, 1, 3);
        let text = write_cbf(&p).replace("OBJSENSE\nMAX", "OBJSENSE\nMIN");
        let q = parse_cbf(&text, "x").unwrap();
        for (x, y) in p.b.iter().zip(&q.b) {
            assert_eq!(*y, -*x);
        }
    }
}
