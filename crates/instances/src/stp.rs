//! Strict SteinLib/OR-Library `.stp` I/O.
//!
//! The lenient reader in `ugrs_steiner::stp` tolerates almost anything
//! around the `Nodes`/`E`/`T` lines; this module is its opposite: a
//! section-aware parser that enforces the SteinLib skeleton (magic line,
//! `SECTION … END` blocks, declared counts matching the data lines, a
//! final `EOF`) and diagnoses every rejection with line and column. The
//! writer emits exactly the dialect the parser accepts, so
//! `parse(write(x)) == x` holds structurally — the round-trip property
//! the proptests pin down.

use crate::error::{parse_finite, LineTokens, ParseError, ReadError};
use serde::{Deserialize, Serialize};
use ugrs_steiner::Graph;

/// The SteinLib magic of format version 1.0.
pub const STP_MAGIC: &str = "33D32945 STP File, STP Format Version 1.0";

/// A parsed `.stp` instance: the file's content in file order, before
/// any reduction. Convert to a solver [`Graph`] with
/// [`StpInstance::to_graph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StpInstance {
    /// Instance name (from the Comment section; empty when absent).
    pub name: String,
    /// Number of vertices.
    pub nodes: usize,
    /// Undirected edges `(u, v, cost)`, 0-based, in file order.
    pub edges: Vec<(u32, u32, f64)>,
    /// Terminal vertices, 0-based, in file order.
    pub terminals: Vec<u32>,
}

impl StpInstance {
    /// Builds the solver graph (0-based, terminals marked).
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.nodes);
        for &(u, v, c) in &self.edges {
            g.add_edge(u as usize, v as usize, c);
        }
        for &t in &self.terminals {
            g.set_terminal(t as usize, true);
        }
        g
    }

    /// Captures a solver graph as an instance (alive edges only).
    pub fn from_graph(name: &str, g: &Graph) -> Self {
        StpInstance {
            name: name.to_string(),
            nodes: g.num_nodes(),
            edges: g
                .alive_edges()
                .map(|e| {
                    let ed = g.edge(e);
                    (ed.u, ed.v, ed.cost)
                })
                .collect(),
            terminals: g.terminals().map(|t| t as u32).collect(),
        }
    }

    /// Serializes in the exact dialect [`parse_stp`] accepts.
    pub fn write(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "{STP_MAGIC}").unwrap();
        writeln!(s).unwrap();
        writeln!(s, "SECTION Comment").unwrap();
        writeln!(s, "Name \"{}\"", self.name.replace('"', "")).unwrap();
        writeln!(s, "Creator \"ugrs-instances\"").unwrap();
        writeln!(s, "END").unwrap();
        writeln!(s).unwrap();
        writeln!(s, "SECTION Graph").unwrap();
        writeln!(s, "Nodes {}", self.nodes).unwrap();
        writeln!(s, "Edges {}", self.edges.len()).unwrap();
        for &(u, v, c) in &self.edges {
            writeln!(s, "E {} {} {}", u + 1, v + 1, c).unwrap();
        }
        writeln!(s, "END").unwrap();
        writeln!(s).unwrap();
        writeln!(s, "SECTION Terminals").unwrap();
        writeln!(s, "Terminals {}", self.terminals.len()).unwrap();
        for &t in &self.terminals {
            writeln!(s, "T {}", t + 1).unwrap();
        }
        writeln!(s, "END").unwrap();
        writeln!(s).unwrap();
        writeln!(s, "EOF").unwrap();
        s
    }
}

/// Parser state: which section we are inside, with the counts still due.
enum Section {
    None,
    Comment,
    Graph,
    Terminals,
    /// Coordinates and other SteinLib sections we accept but ignore.
    Skipped,
}

/// Strictly parses SteinLib `.stp` text. Vertices in the file are
/// 1-based; the returned instance is 0-based.
pub fn parse_stp(text: &str) -> Result<StpInstance, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, first) = lines
        .next()
        .ok_or_else(|| ParseError::at_line(1, "empty file; expected STP magic line"))?;
    if !first.trim_end().eq_ignore_ascii_case(STP_MAGIC) {
        return Err(ParseError::at(1, 1, format!("expected magic {STP_MAGIC:?}")));
    }

    let mut section = Section::None;
    let mut name = String::new();
    let mut nodes: Option<usize> = None;
    let mut edges_declared: Option<usize> = None;
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut terminals_declared: Option<usize> = None;
    let mut terminals: Vec<u32> = Vec::new();
    let mut seen_graph = false;
    let mut seen_terminals = false;
    let mut seen_eof = false;

    for (lineno, raw) in lines {
        let line = raw.trim_end();
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        if seen_eof {
            return Err(ParseError::at_line(lineno, "content after EOF"));
        }
        let mut toks = LineTokens::new(line, lineno);
        let (tag, tag_col) = toks.expect("a line tag")?;

        if matches!(section, Section::None) {
            match tag.to_ascii_uppercase().as_str() {
                "SECTION" => {
                    let (sec, col) = toks.expect("a section name")?;
                    toks.finish()?;
                    section = match sec.to_ascii_lowercase().as_str() {
                        "comment" => Section::Comment,
                        "graph" => {
                            if seen_graph {
                                return Err(ParseError::at(lineno, col, "duplicate Graph section"));
                            }
                            seen_graph = true;
                            Section::Graph
                        }
                        "terminals" => {
                            if seen_terminals {
                                return Err(ParseError::at(
                                    lineno,
                                    col,
                                    "duplicate Terminals section",
                                ));
                            }
                            seen_terminals = true;
                            Section::Terminals
                        }
                        "coordinates" | "presolve" | "maximumdegrees" => Section::Skipped,
                        other => {
                            return Err(ParseError::at(
                                lineno,
                                col,
                                format!("unknown section {other:?}"),
                            ))
                        }
                    };
                }
                "EOF" => {
                    toks.finish()?;
                    seen_eof = true;
                }
                other => {
                    return Err(ParseError::at(
                        lineno,
                        tag_col,
                        format!("expected SECTION or EOF, got {other:?}"),
                    ))
                }
            }
            continue;
        }

        if tag.eq_ignore_ascii_case("END") {
            toks.finish()?;
            match &section {
                Section::Graph => {
                    let n = nodes.ok_or_else(|| {
                        ParseError::at_line(lineno, "Graph section without Nodes")
                    })?;
                    let m = edges_declared.ok_or_else(|| {
                        ParseError::at_line(lineno, "Graph section without Edges")
                    })?;
                    if edges.len() != m {
                        return Err(ParseError::at_line(
                            lineno,
                            format!("Edges declares {m} but section has {} E lines", edges.len()),
                        ));
                    }
                    let _ = n;
                }
                Section::Terminals => {
                    let t = terminals_declared.ok_or_else(|| {
                        ParseError::at_line(lineno, "Terminals section without a Terminals count")
                    })?;
                    if terminals.len() != t {
                        return Err(ParseError::at_line(
                            lineno,
                            format!(
                                "Terminals declares {t} but section has {} T lines",
                                terminals.len()
                            ),
                        ));
                    }
                }
                _ => {}
            }
            section = Section::None;
            continue;
        }

        match section {
            Section::Comment => {
                // Key "value" lines; capture Name, ignore the rest.
                if tag.eq_ignore_ascii_case("name") {
                    let rest = line[tag_col - 1 + tag.len()..].trim();
                    name = rest.trim_matches('"').to_string();
                }
            }
            Section::Skipped => {}
            Section::Graph => match tag.to_ascii_lowercase().as_str() {
                "nodes" => {
                    if nodes.is_some() {
                        return Err(ParseError::at(lineno, tag_col, "duplicate Nodes line"));
                    }
                    nodes = Some(toks.parse::<usize>("node count")?);
                    toks.finish()?;
                }
                "edges" => {
                    if edges_declared.is_some() {
                        return Err(ParseError::at(lineno, tag_col, "duplicate Edges line"));
                    }
                    edges_declared = Some(toks.parse::<usize>("edge count")?);
                    toks.finish()?;
                }
                "e" | "a" => {
                    let n = nodes
                        .ok_or_else(|| ParseError::at(lineno, tag_col, "E line before Nodes"))?;
                    let (utok, ucol) = toks.expect("edge endpoint")?;
                    let u: usize = utok.parse().map_err(|_| {
                        ParseError::at(lineno, ucol, format!("bad endpoint: {utok:?}"))
                    })?;
                    let (vtok, vcol) = toks.expect("edge endpoint")?;
                    let v: usize = vtok.parse().map_err(|_| {
                        ParseError::at(lineno, vcol, format!("bad endpoint: {vtok:?}"))
                    })?;
                    let cost = parse_finite(&mut toks, lineno, "edge cost")?;
                    toks.finish()?;
                    if u == 0 || v == 0 || u > n || v > n {
                        return Err(ParseError::at(
                            lineno,
                            ucol,
                            format!("endpoint out of range 1..={n}"),
                        ));
                    }
                    if u == v {
                        return Err(ParseError::at(lineno, ucol, "self-loop edge"));
                    }
                    if cost < 0.0 {
                        return Err(ParseError::at_line(lineno, "negative edge cost"));
                    }
                    if edges.len() >= edges_declared.unwrap_or(usize::MAX) {
                        return Err(ParseError::at(
                            lineno,
                            tag_col,
                            "more E lines than Edges declares",
                        ));
                    }
                    edges.push((u as u32 - 1, v as u32 - 1, cost));
                }
                other => {
                    return Err(ParseError::at(
                        lineno,
                        tag_col,
                        format!("unexpected {other:?} in Graph section"),
                    ))
                }
            },
            Section::Terminals => match tag.to_ascii_lowercase().as_str() {
                "terminals" => {
                    if terminals_declared.is_some() {
                        return Err(ParseError::at(lineno, tag_col, "duplicate Terminals line"));
                    }
                    terminals_declared = Some(toks.parse::<usize>("terminal count")?);
                    toks.finish()?;
                }
                "t" => {
                    let n = nodes.ok_or_else(|| {
                        ParseError::at(lineno, tag_col, "Terminals section before Graph")
                    })?;
                    let (ttok, tcol) = toks.expect("terminal vertex")?;
                    let t: usize = ttok.parse().map_err(|_| {
                        ParseError::at(lineno, tcol, format!("bad terminal: {ttok:?}"))
                    })?;
                    toks.finish()?;
                    if t == 0 || t > n {
                        return Err(ParseError::at(
                            lineno,
                            tcol,
                            format!("terminal out of range 1..={n}"),
                        ));
                    }
                    if terminals.len() >= terminals_declared.unwrap_or(usize::MAX) {
                        return Err(ParseError::at(
                            lineno,
                            tag_col,
                            "more T lines than Terminals declares",
                        ));
                    }
                    let t0 = t as u32 - 1;
                    if terminals.contains(&t0) {
                        return Err(ParseError::at(lineno, tcol, "duplicate terminal"));
                    }
                    terminals.push(t0);
                }
                other => {
                    return Err(ParseError::at(
                        lineno,
                        tag_col,
                        format!("unexpected {other:?} in Terminals section"),
                    ))
                }
            },
            Section::None => unreachable!(),
        }
    }

    if !matches!(section, Section::None) {
        return Err(ParseError::at_line(text.lines().count(), "unterminated section"));
    }
    if !seen_eof {
        return Err(ParseError::at_line(text.lines().count(), "missing EOF line"));
    }
    let nodes = nodes.ok_or_else(|| ParseError::at_line(1, "missing Graph section"))?;
    if !seen_terminals {
        return Err(ParseError::at_line(1, "missing Terminals section"));
    }
    Ok(StpInstance { name, nodes, edges, terminals })
}

/// Reads and strictly parses an `.stp` file.
pub fn read_stp(path: &std::path::Path) -> Result<StpInstance, ReadError> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_stp(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StpInstance {
        StpInstance {
            name: "tiny".into(),
            nodes: 3,
            edges: vec![(0, 1, 1.5), (1, 2, 2.5)],
            terminals: vec![0, 2],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let x = tiny();
        assert_eq!(parse_stp(&x.write()).unwrap(), x);
    }

    #[test]
    fn graph_conversion_round_trips() {
        let g = tiny().to_graph();
        assert_eq!(StpInstance::from_graph("tiny", &g), tiny());
    }

    #[test]
    fn rejects_missing_magic() {
        let err = parse_stp("SECTION Graph\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_count_mismatch() {
        let mut text = tiny().write();
        text = text.replace("Edges 2", "Edges 3");
        let err = parse_stp(&text).unwrap_err();
        assert!(err.msg.contains("declares 3"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_endpoint_with_position() {
        let text = tiny().write().replace("E 2 3 2.5", "E 2 9 2.5");
        let err = parse_stp(&text).unwrap_err();
        assert!(err.msg.contains("out of range"), "{err}");
        assert!(err.line > 1);
    }

    #[test]
    fn rejects_garbage_cost() {
        let text = tiny().write().replace("E 1 2 1.5", "E 1 2 abc");
        let err = parse_stp(&text).unwrap_err();
        assert!(err.msg.contains("edge cost"), "{err}");
        assert!(err.col > 0);
    }

    #[test]
    fn rejects_content_after_eof() {
        let mut text = tiny().write();
        text.push_str("E 1 2 1\n");
        assert!(parse_stp(&text).unwrap_err().msg.contains("after EOF"));
    }

    #[test]
    fn rejects_nan_cost() {
        let text = tiny().write().replace("E 1 2 1.5", "E 1 2 NaN");
        assert!(parse_stp(&text).unwrap_err().msg.contains("finite"));
    }

    #[test]
    fn lenient_reader_accepts_our_output() {
        // The strict writer's dialect must stay readable by the solver's
        // lenient `.stp` reader (ugd submit uses it).
        let g = ugrs_steiner::stp::parse_stp(&tiny().write()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_terminals(), 2);
    }
}
