//! Content checksums for catalog entries: FNV-1a 64, hand-rolled so the
//! zoo needs no new dependency. Not cryptographic — it identifies *which*
//! instance a job solved, it does not authenticate it.

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a 64 of `bytes`, as a 16-digit lowercase hex string — the form
/// stored in catalog manifests, job ledgers, and telemetry journals.
pub fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Checksum of a file's raw bytes.
pub fn file_checksum(path: &std::path::Path) -> std::io::Result<String> {
    Ok(checksum_hex(&std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hex_is_stable_and_padded() {
        assert_eq!(checksum_hex(b""), "cbf29ce484222325");
        assert_eq!(checksum_hex(b"a").len(), 16);
        assert_ne!(checksum_hex(b"x"), checksum_hex(b"y"));
    }
}
