//! `ugrs-instances`: the instance zoo.
//!
//! Real-format instance I/O and generation for the three applications
//! served by the UG fleet — Steiner tree problems, mixed-integer
//! semidefinite programs, and max-cut:
//!
//! * [`stp`] — strict SteinLib/OR-Library `.stp` parsing and writing
//!   (the format of the PUC test set the paper's §4.1 experiments use);
//! * [`cbf`] — strict CBF-lite (CBLIB subset) parsing for MISDPs, the
//!   dialect `ugrs_misdp::cbf::write_cbf` emits;
//! * [`maxcut`] — the rudy/Biq Mac `.mc` edge-list format;
//! * [`gen`] — seeded generators per family (hypercube/grid/incidence
//!   STP, PACE-2018-like sparse random, max-cut rings and random
//!   graphs, MISDP wrappers), with analytic reference optima where
//!   known;
//! * [`catalog`] — the on-disk catalog: instance files plus a
//!   `manifest.json` with name, family, size, FNV-1a 64 checksum
//!   ([`checksum`]), and reference optimum.
//!
//! All parsers are *strict*: counts must match, indices are
//! range-checked, and every rejection is a [`ParseError`] naming the
//! line (and usually column) at fault — never a panic, never a silent
//! misread. The lenient readers in `ugrs-steiner`/`ugrs-misdp` remain
//! for tolerant ingestion; this crate is the validating front door the
//! `ug-instances` CLI and the serve path use.

pub mod catalog;
pub mod cbf;
pub mod checksum;
mod error;
pub mod gen;
pub mod maxcut;
pub mod stp;

pub use catalog::{Catalog, CatalogEntry, ValidationError};
pub use checksum::{checksum_hex, file_checksum, fnv1a64};
pub use error::{ParseError, ReadError};
pub use maxcut::MaxCutInstance;
pub use stp::StpInstance;
