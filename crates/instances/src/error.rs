//! Diagnosed parse errors: every rejection names the line and column it
//! happened at, so a broken instance file is debuggable from the message
//! alone.

/// A parse error at a specific position of the input text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// 1-based column (byte offset within the line) of the offending
    /// token; `0` when the whole line is at fault.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    /// Error at a whole line.
    pub fn at_line(line: usize, msg: impl Into<String>) -> Self {
        ParseError { line, col: 0, msg: msg.into() }
    }

    /// Error at a specific column of a line.
    pub fn at(line: usize, col: usize, msg: impl Into<String>) -> Self {
        ParseError { line, col, msg: msg.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

/// Reading an instance from disk: I/O or parse failure.
#[derive(Debug)]
pub enum ReadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file content was rejected by the strict parser.
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        ReadError::Parse(e)
    }
}

/// A whitespace token stream over one line, tracking columns for
/// diagnostics. Shared by all three parsers.
pub(crate) struct LineTokens<'a> {
    line: &'a str,
    lineno: usize,
    pos: usize,
}

impl<'a> LineTokens<'a> {
    pub fn new(line: &'a str, lineno: usize) -> Self {
        LineTokens { line, lineno, pos: 0 }
    }

    /// Next token with its 1-based column, or `None` at end of line.
    pub fn next(&mut self) -> Option<(&'a str, usize)> {
        let rest = &self.line[self.pos..];
        let start = rest.find(|c: char| !c.is_whitespace())?;
        let abs = self.pos + start;
        let after = &self.line[abs..];
        let len = after.find(char::is_whitespace).unwrap_or(after.len());
        self.pos = abs + len;
        Some((&self.line[abs..abs + len], abs + 1))
    }

    /// Next token, or an error naming what was expected.
    pub fn expect(&mut self, what: &str) -> Result<(&'a str, usize), ParseError> {
        self.next().ok_or_else(|| {
            ParseError::at(self.lineno, self.line.len() + 1, format!("expected {what}"))
        })
    }

    /// Next token parsed as `T`, or a diagnosed error.
    pub fn parse<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, ParseError> {
        let (tok, col) = self.expect(what)?;
        tok.parse::<T>()
            .map_err(|_| ParseError::at(self.lineno, col, format!("bad {what}: {tok:?}")))
    }

    /// Rejects trailing tokens on the line.
    pub fn finish(&mut self) -> Result<(), ParseError> {
        if let Some((tok, col)) = self.next() {
            return Err(ParseError::at(self.lineno, col, format!("unexpected trailing {tok:?}")));
        }
        Ok(())
    }
}

/// Parses an `f64` that may be `±inf` (one-sided bounds and rows) but
/// not NaN, with a diagnosed error.
pub(crate) fn parse_no_nan(
    toks: &mut LineTokens<'_>,
    lineno: usize,
    what: &str,
) -> Result<f64, ParseError> {
    let (tok, col) = toks.expect(what)?;
    let v: f64 =
        tok.parse().map_err(|_| ParseError::at(lineno, col, format!("bad {what}: {tok:?}")))?;
    if v.is_nan() {
        return Err(ParseError::at(lineno, col, format!("{what} must not be NaN")));
    }
    Ok(v)
}

/// Parses a finite `f64`, rejecting NaN/inf with a diagnosed error.
pub(crate) fn parse_finite(
    toks: &mut LineTokens<'_>,
    lineno: usize,
    what: &str,
) -> Result<f64, ParseError> {
    let (tok, col) = toks.expect(what)?;
    let v: f64 =
        tok.parse().map_err(|_| ParseError::at(lineno, col, format!("bad {what}: {tok:?}")))?;
    if !v.is_finite() {
        return Err(ParseError::at(lineno, col, format!("{what} must be finite, got {tok:?}")));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_track_columns() {
        let mut t = LineTokens::new("E  12 5", 3);
        assert_eq!(t.next(), Some(("E", 1)));
        assert_eq!(t.next(), Some(("12", 4)));
        assert_eq!(t.next(), Some(("5", 7)));
        assert_eq!(t.next(), None);
    }

    #[test]
    fn parse_reports_position() {
        let mut t = LineTokens::new("E x", 7);
        t.next().unwrap();
        let err = t.parse::<u32>("endpoint").unwrap_err();
        assert_eq!((err.line, err.col), (7, 3));
        assert!(err.msg.contains("endpoint"));
    }

    #[test]
    fn finish_rejects_trailing() {
        let mut t = LineTokens::new("1 2", 1);
        t.next().unwrap();
        t.next().unwrap();
        assert!(t.finish().is_ok());
        let mut t = LineTokens::new("1 2 3", 1);
        t.next().unwrap();
        t.next().unwrap();
        let err = t.finish().unwrap_err();
        assert_eq!(err.col, 5);
    }
}
