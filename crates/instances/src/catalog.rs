//! The on-disk instance catalog: a directory of instance files plus a
//! `manifest.json` recording, per instance, the name, family, format,
//! relative path, size, FNV-1a 64 checksum, and the reference optimum
//! when one is known. `ug-instances generate` writes catalogs,
//! `ug-instances validate` re-checksums them, and the serve-path tests
//! solve straight out of them.

use crate::checksum::checksum_hex;
use crate::error::ReadError;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a catalog directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One instance in the catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Instance name (unique within the catalog).
    pub name: String,
    /// Family label, e.g. `stp-grid`, `misdp-truss`, `maxcut-ring`.
    pub family: String,
    /// File format: `stp`, `cbf`, or `mc`.
    pub format: String,
    /// Path of the instance file, relative to the catalog directory.
    pub path: String,
    /// Primary size (STP/max-cut: vertices; MISDP: variables).
    pub nodes: usize,
    /// Secondary size (STP/max-cut: edges; MISDP: PSD blocks + rows).
    pub edges: usize,
    /// FNV-1a 64 checksum (hex) of the instance file bytes.
    pub checksum: String,
    /// Known optimal objective, when the family is analytic.
    pub reference_optimum: Option<f64>,
}

/// A catalog manifest: the entry list, versioned for forward evolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Catalog {
    /// Manifest schema version.
    pub version: u32,
    /// All instances, in generation order.
    pub entries: Vec<CatalogEntry>,
}

/// A single validation failure from [`Catalog::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// The offending entry's name.
    pub name: String,
    /// What is wrong with it.
    pub problem: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.problem)
    }
}

impl Catalog {
    /// An empty catalog at the current schema version.
    pub fn new() -> Self {
        Catalog { version: 1, entries: Vec::new() }
    }

    /// Path of the manifest inside `dir`.
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Loads `dir/manifest.json`.
    pub fn load(dir: &Path) -> Result<Self, ReadError> {
        let text = std::fs::read_to_string(Self::manifest_path(dir))?;
        serde_json::from_str(&text).map_err(|e| {
            ReadError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })
    }

    /// Writes `dir/manifest.json` (creating `dir` if needed).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(Self::manifest_path(dir), text)
    }

    /// Writes an instance file into `dir` and appends its entry.
    #[allow(clippy::too_many_arguments)]
    pub fn add(
        &mut self,
        dir: &Path,
        family: &str,
        format: &str,
        name: &str,
        content: &str,
        nodes: usize,
        edges: usize,
        reference_optimum: Option<f64>,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let file = format!("{name}.{format}");
        std::fs::write(dir.join(&file), content)?;
        self.entries.push(CatalogEntry {
            name: name.to_string(),
            family: family.to_string(),
            format: format.to_string(),
            path: file,
            nodes,
            edges,
            checksum: checksum_hex(content.as_bytes()),
            reference_optimum,
        });
        Ok(())
    }

    /// Looks up an entry by name.
    pub fn find(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Re-checksums every entry against the files in `dir` and checks
    /// that each file still parses in its declared format. Returns the
    /// number of validated entries, or every failure found.
    pub fn validate(&self, dir: &Path) -> Result<usize, Vec<ValidationError>> {
        let mut errors = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for e in &self.entries {
            if !seen.insert(&e.name) {
                errors.push(ValidationError {
                    name: e.name.clone(),
                    problem: "duplicate name".into(),
                });
                continue;
            }
            let path = dir.join(&e.path);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(err) => {
                    errors.push(ValidationError {
                        name: e.name.clone(),
                        problem: format!("unreadable {}: {err}", e.path),
                    });
                    continue;
                }
            };
            let sum = checksum_hex(&bytes);
            if sum != e.checksum {
                errors.push(ValidationError {
                    name: e.name.clone(),
                    problem: format!("checksum mismatch: manifest {} file {sum}", e.checksum),
                });
                continue;
            }
            let text = String::from_utf8_lossy(&bytes);
            let parse_err = match e.format.as_str() {
                "stp" => crate::stp::parse_stp(&text).err().map(|e| e.to_string()),
                "cbf" => crate::cbf::parse_cbf(&text, &e.name).err().map(|e| e.to_string()),
                "mc" => crate::maxcut::parse_mc(&text, &e.name).err().map(|e| e.to_string()),
                other => Some(format!("unknown format {other:?}")),
            };
            if let Some(msg) = parse_err {
                errors.push(ValidationError { name: e.name.clone(), problem: msg });
            }
        }
        if errors.is_empty() {
            Ok(self.entries.len())
        } else {
            Err(errors)
        }
    }
}

/// Generates the standard small catalog used by the CI smoke job and
/// the e2e tests: a few instances per family, seeded, with reference
/// optima where analytic.
pub fn generate_small_catalog(dir: &Path, seed: u64) -> std::io::Result<Catalog> {
    use crate::gen;
    let mut cat = Catalog::new();

    let stp = [
        ("stp-star", gen::stp_star(4)),
        ("stp-hypercube", gen::stp_hypercube_antipodal(3)),
        ("stp-hypercube", gen::stp_hypercube(3, true, seed)),
        ("stp-grid", gen::stp_grid_corners(3, 3)),
        ("stp-grid", gen::stp_grid(3, 3, 3, seed)),
        ("stp-incidence", gen::stp_incidence(12, 6, 4, seed)),
    ];
    for (family, (inst, opt)) in stp {
        let content = inst.write();
        cat.add(dir, family, "stp", &inst.name, &content, inst.nodes, inst.edges.len(), opt)?;
    }

    let mc = [
        ("maxcut-ring", gen::maxcut_ring(5)),
        ("maxcut-complete", gen::maxcut_complete(4)),
        ("maxcut-random", gen::maxcut_random(6, 8, seed)),
    ];
    for (family, (inst, opt)) in mc {
        let content = inst.write();
        cat.add(dir, family, "mc", &inst.name, &content, inst.n, inst.edges.len(), opt)?;
    }

    let misdp = [
        ("misdp-diagbox", gen::misdp_diag_box(2)),
        ("misdp-truss", gen::misdp_truss(3, 4, seed)),
        ("misdp-cardls", gen::misdp_cardls(3, 2, seed)),
    ];
    for (family, (p, opt)) in misdp {
        let content = crate::cbf::write_cbf(&p);
        let size = p.blocks.len() + p.lin.len();
        cat.add(dir, family, "cbf", &p.name.clone(), &content, p.m, size, opt)?;
    }

    cat.save(dir)?;
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ugrs-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn small_catalog_round_trips_and_validates() {
        let dir = tmpdir("roundtrip");
        let cat = generate_small_catalog(&dir, 11).unwrap();
        assert!(cat.entries.len() >= 9);
        let loaded = Catalog::load(&dir).unwrap();
        assert_eq!(loaded, cat);
        assert_eq!(loaded.validate(&dir).unwrap(), cat.entries.len());
        assert!(loaded.find("star4").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_catches_tampering() {
        let dir = tmpdir("tamper");
        let cat = generate_small_catalog(&dir, 11).unwrap();
        let victim = &cat.entries[0];
        let path = dir.join(&victim.path);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push('\n');
        text.push('x');
        std::fs::write(&path, text).unwrap();
        let errors = cat.validate(&dir).unwrap_err();
        assert!(errors.iter().any(|e| e.name == victim.name && e.problem.contains("checksum")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = tmpdir("det1");
        let d2 = tmpdir("det2");
        let c1 = generate_small_catalog(&d1, 5).unwrap();
        let c2 = generate_small_catalog(&d2, 5).unwrap();
        assert_eq!(c1, c2);
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }
}
