//! CIP plugins implementing SCIP-Jack's branch-and-cut core on the
//! flow-balance directed cut formulation (Formulation 1 of the paper).
//!
//! The IP model built by [`build_model`]:
//!
//! * binary arc variables `y_a` for both orientations of every alive
//!   edge (objective = arc cost),
//! * binary coupling variables `z_v = y(δ⁻(v))` for non-terminals — these
//!   make *vertex branching* a pure bound change (`z_v = 0` deletes the
//!   vertex, `z_v = 1` adds it as a quasi-terminal), which is how the
//!   branching-decision transfer of ug-0.8.6 (§4.1) is reproduced without
//!   node-local constraints,
//! * in-degree rows `y(δ⁻(t)) = 1` for terminals, `y(δ⁻(r)) = 0`,
//! * flow-balance rows (5) `z_v ≤ y(δ⁺(v))` and (6) `y_a ≤ z_v`
//!   for out-arcs of non-terminals,
//! * antiparallel rows `y_a + y_ā ≤ 1`.
//!
//! The directed cut constraints (4) are exponentially many and live in
//! [`DirectedCutHandler`], separated by max-flow/min-cut both for
//! fractional LP solutions and integral candidates.

use crate::dualascent::{arc_dijkstra, dist_to_terminals, dual_ascent};
use crate::graph::Graph;
use crate::heur::{key_vertex_local_search, local_search, lp_biased_weights, tm_best};
use crate::maxflow::MaxFlow;
use crate::sap::SapGraph;
use crate::tree::SteinerTree;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ugrs_cip::{
    BranchDecision, BranchRule, ConstraintHandler, Cut, CutBuffer, EnforceResult, HeurSchedule,
    Heuristic, Model, PrimalHeuristic, PropResult, SepaResult, SolveCtx, VarId, VarType,
};

/// Shared immutable data tying the CIP model to the Steiner instance.
#[derive(Debug)]
pub struct SpgData {
    pub graph: Graph,
    pub sap: SapGraph,
    /// CIP variable per SAP arc.
    pub arc_var: Vec<VarId>,
    /// Coupling variable per vertex (None for terminals/the root/dead).
    pub node_var: Vec<Option<VarId>>,
    pub root: usize,
}

impl SpgData {
    /// Undirected LP value per arena edge: `y_a + y_ā`.
    pub fn edge_lp_values(&self, x: &[f64]) -> Vec<f64> {
        let mut vals = vec![0.0; self.graph.edges.len()];
        for (i, arc) in self.sap.arcs.iter().enumerate() {
            vals[arc.edge as usize] += x[self.arc_var[i].0 as usize];
        }
        vals
    }

    /// Converts a Steiner tree on the (reduced) graph into a full model
    /// assignment (arcs oriented away from the root, couplings set).
    pub fn tree_to_assignment(&self, model: &Model, tree: &SteinerTree) -> Option<Vec<f64>> {
        let mut x = vec![0.0; model.num_vars()];
        // Adjacency over tree edges.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.graph.num_nodes()];
        for &e in &tree.edges {
            let ed = self.graph.edge(e);
            adj[ed.u as usize].push(e);
            adj[ed.v as usize].push(e);
        }
        let mut seen = vec![false; self.graph.num_nodes()];
        let mut stack = vec![self.root];
        seen[self.root] = true;
        while let Some(v) = stack.pop() {
            for &e in &adj[v] {
                let w = self.graph.edge(e).other(v as u32) as usize;
                if seen[w] {
                    continue;
                }
                seen[w] = true;
                // Find the SAP arc v → w for edge e.
                let arc = self.sap.out[v].iter().copied().find(|&a| {
                    self.sap.arcs[a as usize].edge == e
                        && self.sap.arcs[a as usize].head as usize == w
                })?;
                x[self.arc_var[arc as usize].0 as usize] = 1.0;
                if let Some(z) = self.node_var[w] {
                    x[z.0 as usize] = 1.0;
                }
                stack.push(w);
            }
        }
        // All terminals must have been reached.
        for t in self.graph.terminals() {
            if !seen[t] {
                return None;
            }
        }
        Some(x)
    }

    /// Extracts the chosen edges (arena ids) from a model assignment.
    pub fn assignment_to_edges(&self, x: &[f64]) -> Vec<u32> {
        let mut edges = Vec::new();
        for (i, arc) in self.sap.arcs.iter().enumerate() {
            if x[self.arc_var[i].0 as usize] > 0.5 {
                edges.push(arc.edge);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

/// Builds the CIP model and the shared data for a (reduced) graph.
/// Panics if the graph has fewer than 2 terminals (those instances are
/// solved by reduction alone).
///
/// The model always carries the in-degree rows, the `z` couplings and
/// the aggregated flow-balance rows (5). The per-arc rows (6) and the
/// antiparallel rows are *strengthenings* (the paper notes (6) does not
/// change the LP bound but can speed up branch-and-cut); with our dense
/// LP basis they cost more rows than they save, so [`build_model`] omits
/// them — [`build_model_strong`] keeps them for the ablation bench.
pub fn build_model(g: &Graph) -> (Model, Arc<SpgData>) {
    build_model_opts(g, SapGraph::pick_root(g), false)
}

/// Like [`build_model`] with an explicitly chosen root terminal (needed
/// by problem-class transformations whose gadgets assume a fixed root).
pub fn build_model_rooted(g: &Graph, root: usize) -> (Model, Arc<SpgData>) {
    build_model_opts(g, root, false)
}

/// Variant including the per-arc rows (6) and antiparallel rows.
pub fn build_model_strong(g: &Graph) -> (Model, Arc<SpgData>) {
    build_model_opts(g, SapGraph::pick_root(g), true)
}

fn build_model_opts(g: &Graph, root: usize, strong_rows: bool) -> (Model, Arc<SpgData>) {
    assert!(g.num_terminals() >= 2, "build_model needs ≥ 2 terminals");
    assert!(g.is_terminal(root), "root must be a terminal");
    let sap = SapGraph::from_graph(g, root);
    let mut model = Model::new("spg");
    let arc_var: Vec<VarId> =
        sap.arcs.iter().map(|a| model.add_var("y", VarType::Binary, 0.0, 1.0, a.cost)).collect();
    let mut node_var: Vec<Option<VarId>> = vec![None; sap.n];
    for (v, nv) in node_var.iter_mut().enumerate() {
        if sap.node_alive[v] && !sap.terminal[v] {
            *nv = Some(model.add_var("z", VarType::Binary, 0.0, 1.0, 0.0));
        }
    }
    // In-degree rows.
    for (v, nv) in node_var.iter().enumerate() {
        if !sap.node_alive[v] {
            continue;
        }
        let in_terms: Vec<(VarId, f64)> =
            sap.inc[v].iter().map(|&a| (arc_var[a as usize], 1.0)).collect();
        if v == root {
            if !in_terms.is_empty() {
                model.add_linear(0.0, 0.0, &in_terms);
            }
        } else if sap.terminal[v] {
            model.add_linear(1.0, 1.0, &in_terms);
        } else {
            let z = nv.unwrap();
            let mut terms = in_terms;
            terms.push((z, -1.0));
            model.add_linear(0.0, 0.0, &terms);
            // Flow balance (5): z_v ≤ y(δ⁺(v)).
            let mut fb: Vec<(VarId, f64)> =
                sap.out[v].iter().map(|&a| (arc_var[a as usize], 1.0)).collect();
            fb.push((z, -1.0));
            model.add_linear(0.0, f64::INFINITY, &fb);
            if strong_rows {
                // (6): each out-arc needs the coupling: y_a ≤ z_v.
                for &a in &sap.out[v] {
                    model.add_linear(0.0, f64::INFINITY, &[(z, 1.0), (arc_var[a as usize], -1.0)]);
                }
            }
        }
    }
    if strong_rows {
        // Antiparallel arcs exclude each other.
        for e in 0..sap.num_arcs() / 2 {
            let a = 2 * e as u32;
            model.add_linear(
                f64::NEG_INFINITY,
                1.0,
                &[(arc_var[a as usize], 1.0), (arc_var[(a + 1) as usize], 1.0)],
            );
        }
    }
    let data = Arc::new(SpgData { graph: g.clone(), sap, arc_var, node_var, root });
    (model, data)
}

/// Registers the full SCIP-Jack plugin set on a solver for the model
/// built by [`build_model`].
pub fn register_plugins(
    solver: &mut ugrs_cip::Solver,
    data: Arc<SpgData>,
    in_tree_reductions: bool,
) {
    register_plugins_with_hits(solver, data, in_tree_reductions, None);
}

/// [`register_plugins`] plus an externally observable hit counter for
/// the key-vertex heuristic (incremented when it improves its start
/// tree). Pass `None` to disable counting.
pub fn register_plugins_with_hits(
    solver: &mut ugrs_cip::Solver,
    data: Arc<SpgData>,
    in_tree_reductions: bool,
    keyvertex_hits: Option<Arc<AtomicU64>>,
) {
    solver.add_conshdlr(Box::new(DirectedCutHandler::new(data.clone(), in_tree_reductions)));
    solver.add_heuristic(Box::new(TmHeuristic { data: data.clone() }));
    solver.add_primal_heuristic(Box::new(KeyVertexHeuristic {
        data: data.clone(),
        hits: keyvertex_hits,
    }));
    solver.add_branchrule(Box::new(VertexBranching { data }));
}

/// The directed cut constraint handler: separation by max-flow, exact
/// feasibility checking, dual-ascent initial rows, and dual-ascent-based
/// in-tree reductions ("extended reductions deep in the B&B tree").
pub struct DirectedCutHandler {
    data: Arc<SpgData>,
    /// Max cuts added per separation round.
    max_cuts_per_round: usize,
    /// Enable dual-ascent propagation at depth > 0.
    in_tree_reductions: bool,
    round_robin: usize,
}

impl DirectedCutHandler {
    pub fn new(data: Arc<SpgData>, in_tree_reductions: bool) -> Self {
        DirectedCutHandler { data, max_cuts_per_round: 25, in_tree_reductions, round_robin: 0 }
    }

    /// Runs min-cut separation against the capacities in `x`; adds up to
    /// `max_cuts` violated cuts to `buf`. Returns the number added.
    fn separate_cuts(&mut self, x: &[f64], buf: &mut CutBuffer, max_cuts: usize) -> usize {
        let d = &self.data;
        let sinks: Vec<usize> = d.sap.sinks().collect();
        if sinks.is_empty() {
            return 0;
        }
        let mut added = 0;
        let k = sinks.len();
        for i in 0..k {
            if added >= max_cuts {
                break;
            }
            let t = sinks[(self.round_robin + i) % k];
            let mut mf = MaxFlow::new(d.sap.n);
            let mut arc_ids: Vec<(usize, u32)> = Vec::with_capacity(d.sap.num_arcs());
            for (ai, arc) in d.sap.arcs.iter().enumerate() {
                let cap = x[d.arc_var[ai].0 as usize].max(0.0);
                let id = mf.add_arc(arc.tail as usize, arc.head as usize, cap);
                arc_ids.push((id, ai as u32));
            }
            let flow = mf.max_flow(d.root, t, 1.0);
            if flow >= 1.0 - 1e-6 {
                continue;
            }
            let source_side = mf.min_cut_source_side(d.root);
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for (ai, arc) in d.sap.arcs.iter().enumerate() {
                if source_side[arc.tail as usize] && !source_side[arc.head as usize] {
                    terms.push((d.arc_var[ai], 1.0));
                }
            }
            if terms.is_empty() {
                continue;
            }
            buf.add(Cut::new("dircut", 1.0, f64::INFINITY, terms));
            added += 1;
        }
        self.round_robin = (self.round_robin + 1) % k.max(1);
        added
    }
}

impl ConstraintHandler for DirectedCutHandler {
    fn name(&self) -> &str {
        "steiner-directed-cut"
    }

    fn check(&mut self, _model: &Model, x: &[f64]) -> bool {
        // Every terminal reachable from the root via arcs with y = 1.
        let d = &self.data;
        let mut seen = vec![false; d.sap.n];
        let mut stack = vec![d.root];
        seen[d.root] = true;
        while let Some(v) = stack.pop() {
            for &a in &d.sap.out[v] {
                if x[d.arc_var[a as usize].0 as usize] > 0.5 {
                    let w = d.sap.arcs[a as usize].head as usize;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        d.sap.sinks().all(|t| seen[t])
    }

    fn enforce(&mut self, ctx: &mut SolveCtx) -> EnforceResult {
        let x = ctx.relax_x.expect("enforce needs a relaxation solution");
        let x = x.to_vec();
        let mut buf = CutBuffer::default();
        let n = self.separate_cuts(&x, &mut buf, self.max_cuts_per_round);
        if n == 0 {
            return EnforceResult::Feasible;
        }
        for c in buf.cuts {
            ctx.cuts.add(c);
        }
        EnforceResult::AddedCuts(n)
    }

    fn separate(&mut self, ctx: &mut SolveCtx) -> SepaResult {
        let Some(x) = ctx.relax_x else {
            return SepaResult::DidNotRun;
        };
        let x = x.to_vec();
        let mut buf = CutBuffer::default();
        let n = self.separate_cuts(&x, &mut buf, self.max_cuts_per_round);
        for c in buf.cuts {
            ctx.cuts.add(c);
        }
        if n == 0 {
            SepaResult::NoCuts
        } else {
            SepaResult::AddedCuts(n)
        }
    }

    fn init_lp(&mut self, _model: &Model, cuts: &mut CutBuffer) {
        // Dual-ascent cuts as the initial rows (§3.1: "a dual-ascent
        // heuristic to select a set of constraints from (4) to be
        // included into the initial LP").
        let d = &self.data;
        let da = dual_ascent(&d.sap, 32);
        for mask in &da.cuts {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for (ai, arc) in d.sap.arcs.iter().enumerate() {
                if !mask[arc.tail as usize] && mask[arc.head as usize] {
                    terms.push((d.arc_var[ai], 1.0));
                }
            }
            if !terms.is_empty() {
                cuts.add(Cut::new("da-cut", 1.0, f64::INFINITY, terms));
            }
        }
    }

    fn propagate(&mut self, ctx: &mut SolveCtx) -> PropResult {
        // In-tree dual-ascent reductions: on down-branched subproblems
        // (vertices deleted via z_v = 0), rebuild the reduced SAP and use
        // the DA bound + reduced costs to prune or fix arcs — the paper's
        // "extended reduction ... on these modified graphs" effect.
        if !self.in_tree_reductions || ctx.depth == 0 || !ctx.depth.is_multiple_of(4) {
            return PropResult::Nothing;
        }
        let Some(cutoff) = ctx.incumbent_obj else {
            return PropResult::Nothing;
        };
        let d = &self.data;
        // Only sound when nothing is forced *into* the solution locally.
        for (i, _) in d.sap.arcs.iter().enumerate() {
            if ctx.local_lb[d.arc_var[i].0 as usize] > 0.5 {
                return PropResult::Nothing;
            }
        }
        for v in 0..d.sap.n {
            if let Some(z) = d.node_var[v] {
                if ctx.local_lb[z.0 as usize] > 0.5 {
                    return PropResult::Nothing;
                }
            }
        }
        // Build the locally reduced view.
        let big = 1e12;
        let mut local_sap = d.sap.clone();
        for v in 0..local_sap.n {
            if let Some(z) = d.node_var[v] {
                if ctx.local_ub[z.0 as usize] < 0.5 {
                    local_sap.node_alive[v] = false;
                }
            }
        }
        for (i, arc) in local_sap.arcs.iter_mut().enumerate() {
            if ctx.local_ub[d.arc_var[i].0 as usize] < 0.5 {
                arc.cost = big; // excluded arc
            }
        }
        let da = dual_ascent(&local_sap, 0);
        if da.bound >= big {
            return PropResult::Infeasible; // some terminal got disconnected
        }
        // A child solution must *improve* on the incumbent; with integral
        // costs that means being cheaper by at least 1.
        let threshold = if integral_costs(&d.graph) { cutoff - 1.0 + 1e-6 } else { cutoff - 1e-9 };
        if da.bound > threshold {
            return PropResult::Infeasible;
        }
        // Arc fixing by reduced cost (the restricted extended test's base
        // form, applied in-tree).
        let dfr = arc_dijkstra(&local_sap, &da.redcost, d.root);
        let dtt = dist_to_terminals(&local_sap, &da.redcost);
        let mut fixed = 0;
        for (i, arc) in local_sap.arcs.iter().enumerate() {
            let var = d.arc_var[i];
            if ctx.local_ub[var.0 as usize] < 0.5 {
                continue;
            }
            let t = arc.tail as usize;
            let h = arc.head as usize;
            if !local_sap.node_alive[t] || !local_sap.node_alive[h] {
                continue;
            }
            if da.bound + dfr[t] + da.redcost[i] + dtt[h] > threshold {
                ctx.tighten_ub(var, 0.0);
                fixed += 1;
            }
        }
        if fixed > 0 {
            PropResult::Reduced
        } else {
            PropResult::Nothing
        }
    }
}

fn integral_costs(g: &Graph) -> bool {
    g.alive_edges().all(|e| {
        let c = g.edge(e).cost;
        (c - c.round()).abs() < 1e-12
    })
}

/// The TM heuristic as a CIP plugin, biased by the LP solution.
pub struct TmHeuristic {
    pub data: Arc<SpgData>,
}

impl Heuristic for TmHeuristic {
    fn name(&self) -> &str {
        "steiner-tm"
    }

    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        let x = ctx.relax_x?;
        let d = &self.data;
        let edge_lp = d.edge_lp_values(x);
        let weights = lp_biased_weights(&d.graph, &edge_lp);
        let tree = tm_best(&d.graph, 3, &weights)?;
        let tree = local_search(&d.graph, &tree, 2);
        d.tree_to_assignment(ctx.model, &tree)
    }
}

/// The Uchoa–Werneck-style key-vertex local search as a scheduled
/// [`PrimalHeuristic`]: polishes the current incumbent tree (or, absent
/// one, an LP-biased TM start) with key-path exchange, key-vertex
/// elimination, and single-vertex insertion moves. Improving trees are
/// returned to the framework, installed as incumbents, and — under UG —
/// broadcast through the incumbent exchange.
pub struct KeyVertexHeuristic {
    /// Shared instance data.
    pub data: Arc<SpgData>,
    /// Incremented whenever the search strictly improves its start tree;
    /// lets tests observe heuristic-found incumbents from outside.
    pub hits: Option<Arc<AtomicU64>>,
}

impl KeyVertexHeuristic {
    /// Builds the start tree: the incumbent when one exists, else a
    /// cheap LP-biased TM tree.
    fn start_tree(&self, ctx: &SolveCtx) -> Option<SteinerTree> {
        let d = &self.data;
        if let Some(inc) = ctx.incumbent_x {
            let edges = d.assignment_to_edges(inc);
            if !edges.is_empty() {
                let tree = SteinerTree::new(&d.graph, edges).pruned(&d.graph);
                if tree.is_valid(&d.graph) {
                    return Some(tree);
                }
            }
        }
        let x = ctx.relax_x?;
        let edge_lp = d.edge_lp_values(x);
        let weights = lp_biased_weights(&d.graph, &edge_lp);
        tm_best(&d.graph, 2, &weights)
    }
}

impl PrimalHeuristic for KeyVertexHeuristic {
    fn name(&self) -> &str {
        "steiner-keyvertex"
    }

    fn default_schedule(&self) -> HeurSchedule {
        HeurSchedule {
            // Every other depth: the search is heavier than TM, and
            // polishing the same incumbent at every node is wasted work.
            frequency: 2,
            max_calls: 512,
            // Below TM so it polishes what TM (priority 0) just found.
            priority: -1,
            ..HeurSchedule::default()
        }
    }

    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        let start = self.start_tree(ctx)?;
        let polished = key_vertex_local_search(&self.data.graph, &start, 8);
        if polished.cost >= start.cost - 1e-9 && ctx.incumbent_x.is_some() {
            // Incumbent already key-vertex-optimal: nothing new to offer.
            return None;
        }
        if polished.cost < start.cost - 1e-9 {
            if let Some(h) = &self.hits {
                h.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.data.tree_to_assignment(ctx.model, &polished)
    }
}

/// Vertex branching: pick the non-terminal whose coupling variable is
/// most fractional (ties broken toward high degree). Falls back to the
/// framework default (arc branching) when all couplings are integral.
pub struct VertexBranching {
    pub data: Arc<SpgData>,
}

impl BranchRule for VertexBranching {
    fn name(&self) -> &str {
        "steiner-vertex"
    }

    fn branch(&mut self, ctx: &mut SolveCtx) -> Option<BranchDecision> {
        let x = ctx.relax_x?;
        let d = &self.data;
        let mut best: Option<(VarId, f64, f64)> = None; // (var, val, score)
        for v in 0..d.sap.n {
            let Some(z) = d.node_var[v] else { continue };
            let val = x[z.0 as usize];
            let frac = (val - val.round()).abs();
            if frac <= 1e-6 {
                continue;
            }
            let score = frac * (1.0 + d.graph.degree(v) as f64 / 8.0);
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((z, val, score));
            }
        }
        best.map(|(var, value, _)| BranchDecision {
            var,
            value,
            // Explore the "add as terminal" side first: it tends to find
            // solutions; deletion shrinks the graph for the other child.
            down_first: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{code_covering, CostScheme};
    use ugrs_cip::{Settings, SolveStatus, Solver};

    fn solve_graph(g: &Graph) -> (f64, ugrs_cip::SolveResult, Arc<SpgData>) {
        let (model, data) = build_model(g);
        let mut solver = Solver::new(model, Settings::default());
        register_plugins(&mut solver, data.clone(), true);
        let res = solver.solve(&mut ugrs_cip::NoHooks);
        (res.best_obj.unwrap_or(f64::NAN), res, data)
    }

    #[test]
    fn solves_star_instance() {
        // Optimal tree uses the Steiner center: cost 6.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 4.0);
        g.add_edge(1, 2, 4.0);
        g.add_edge(0, 2, 4.0);
        g.add_edge(0, 3, 2.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(2, 3, 2.0);
        g.set_terminal(0, true);
        g.set_terminal(1, true);
        g.set_terminal(2, true);
        let (obj, res, data) = solve_graph(&g);
        assert_eq!(res.status, SolveStatus::Optimal);
        assert!((obj - 6.0).abs() < 1e-6, "obj = {obj}");
        // Extract and validate the tree.
        let edges = data.assignment_to_edges(&res.best_x.unwrap());
        let tree = SteinerTree::new(&g, edges);
        assert!(tree.is_valid(&g));
        assert!((tree.cost - 6.0).abs() < 1e-6);
    }

    #[test]
    fn solves_small_code_covering() {
        let g = code_covering(2, 3, 4, CostScheme::Perturbed, 5);
        let (obj, res, data) = solve_graph(&g);
        assert_eq!(res.status, SolveStatus::Optimal);
        let edges = data.assignment_to_edges(&res.best_x.unwrap());
        let tree = SteinerTree::new(&g, edges);
        assert!(tree.is_valid(&g));
        assert!((tree.cost - obj).abs() < 1e-6);
        // Cross-check with brute force.
        let brute = brute(&g);
        assert!((obj - brute).abs() < 1e-6, "obj {obj} vs brute {brute}");
    }

    fn brute(g: &Graph) -> f64 {
        // Enumerate vertex subsets containing the terminals; MST each.
        let opt_vertices: Vec<usize> = g.alive_nodes().filter(|&v| !g.is_terminal(v)).collect();
        let k = opt_vertices.len();
        assert!(k <= 16);
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << k) {
            let mut in_set: Vec<bool> =
                (0..g.num_nodes()).map(|v| g.is_node_alive(v) && g.is_terminal(v)).collect();
            for (i, &v) in opt_vertices.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    in_set[v] = true;
                }
            }
            if let Some(t) = crate::heur::tree_from_vertices(g, &in_set) {
                best = best.min(t.cost);
            }
        }
        best
    }

    #[test]
    fn tree_assignment_round_trip() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let (model, data) = build_model(&g);
        let tree = SteinerTree::new(&g, vec![0, 1]);
        let x = data.tree_to_assignment(&model, &tree).unwrap();
        let edges = data.assignment_to_edges(&x);
        assert_eq!(edges, vec![0, 1]);
        assert!(model.check_solution(&x, 1e-6), "assignment must satisfy the rows");
    }
}
