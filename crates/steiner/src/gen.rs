//! PUC-like instance generators.
//!
//! The PUC benchmark [Rosseti et al. 2001] — "widely regarded as the most
//! difficult Steiner tree test set" — consists of three families, which
//! we generate at configurable (laptop) scale with deterministic seeds:
//!
//! * **hypercube (`hc{d}{u|p}`)** — the d-dimensional hypercube graph;
//!   terminals are the even-parity vertices. `u` = unit costs, `p` =
//!   perturbed integer costs.
//! * **code covering (`cc{d}-{k}{u|p}`)** — the Hamming graph H(d, k)
//!   (words of length d over a k-ary alphabet, edges between words at
//!   Hamming distance 1) with a random terminal subset.
//! * **bipartite (`bip{n}{u|p}`)** — bipartite-flavoured instances with a
//!   terminal side, a Steiner side, and sparse random connections.
//!
//! These preserve what makes PUC hard for B&C solvers: high symmetry,
//! small integrality gaps, and near-immunity to presolve reductions.

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cost scheme of a PUC-like instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostScheme {
    /// All edges cost 1 (the `u` instances).
    Unit,
    /// Small perturbed integer costs (the `p` instances).
    Perturbed,
}

fn edge_cost(scheme: CostScheme, rng: &mut SmallRng) -> f64 {
    match scheme {
        CostScheme::Unit => 1.0,
        CostScheme::Perturbed => rng.gen_range(100..=110) as f64,
    }
}

/// Generates a `hc{d}`-like hypercube instance: 2^d vertices, d·2^(d−1)
/// edges, terminals = even-parity vertices.
pub fn hypercube(d: usize, scheme: CostScheme, seed: u64) -> Graph {
    assert!((2..=16).contains(&d));
    let n = 1usize << d;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6863_7075);
    let mut g = Graph::new(n);
    for v in 0..n {
        for b in 0..d {
            let w = v ^ (1 << b);
            if w > v {
                g.add_edge(v, w, edge_cost(scheme, &mut rng));
            }
        }
    }
    for v in 0..n {
        if (v as u32).count_ones().is_multiple_of(2) {
            g.set_terminal(v, true);
        }
    }
    g
}

/// Like [`hypercube`], but keeps only every `stride`-th even-parity
/// vertex as a terminal — a knob to tune hardness between the trivial
/// `hc4` and the open-instance-hard `hc5+` regimes while preserving the
/// family's structure.
pub fn hypercube_sparse_terminals(d: usize, stride: usize, scheme: CostScheme, seed: u64) -> Graph {
    assert!(stride >= 1);
    let mut g = hypercube(d, scheme, seed);
    let terms: Vec<usize> = g.terminals().collect();
    for (i, t) in terms.into_iter().enumerate() {
        if i % stride != 0 {
            g.set_terminal(t, false);
        }
    }
    g
}

/// Generates a `cc{d}-{k}`-like code-covering instance on the Hamming
/// graph H(d, k) with `num_terminals` random terminals.
pub fn code_covering(
    d: usize,
    k: usize,
    num_terminals: usize,
    scheme: CostScheme,
    seed: u64,
) -> Graph {
    assert!(k >= 2 && d >= 2);
    let n = k.pow(d as u32);
    assert!(n <= 1 << 20, "instance too large");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6363_7075);
    let mut g = Graph::new(n);
    // Words are numbers base k; neighbours differ in one digit.
    for v in 0..n {
        let mut place = 1usize;
        for _pos in 0..d {
            let digit = (v / place) % k;
            for nd in 0..k {
                if nd > digit {
                    let w = v + (nd - digit) * place;
                    g.add_edge(v, w, edge_cost(scheme, &mut rng));
                }
            }
            place *= k;
        }
    }
    // Random terminal subset (distinct).
    let mut picked = std::collections::HashSet::new();
    let want = num_terminals.min(n);
    while picked.len() < want {
        picked.insert(rng.gen_range(0..n));
    }
    for t in picked {
        g.set_terminal(t, true);
    }
    g
}

/// Generates a `bip{n}`-like bipartite instance: `n_term` terminal
/// vertices, `n_steiner` Steiner vertices, each terminal linked to
/// `links` random Steiner vertices and the Steiner side sparsely
/// interconnected.
pub fn bipartite(
    n_term: usize,
    n_steiner: usize,
    links: usize,
    scheme: CostScheme,
    seed: u64,
) -> Graph {
    let n = n_term + n_steiner;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6269_7075);
    let mut g = Graph::new(n);
    let mut seen = std::collections::HashSet::new();
    for t in 0..n_term {
        let mut made = 0;
        let mut guard = 0;
        while made < links && guard < 50 * links {
            guard += 1;
            let s = n_term + rng.gen_range(0..n_steiner);
            if seen.insert((t, s)) {
                g.add_edge(t, s, edge_cost(scheme, &mut rng));
                made += 1;
            }
        }
        g.set_terminal(t, true);
    }
    // Steiner-side ring + random chords keep the instance connected.
    for i in 0..n_steiner {
        let u = n_term + i;
        let v = n_term + (i + 1) % n_steiner;
        if u != v && seen.insert((u.min(v), u.max(v))) {
            g.add_edge(u, v, edge_cost(scheme, &mut rng));
        }
    }
    for _ in 0..n_steiner {
        let u = n_term + rng.gen_range(0..n_steiner);
        let v = n_term + rng.gen_range(0..n_steiner);
        if u != v && seen.insert((u.min(v), u.max(v))) {
            g.add_edge(u, v, edge_cost(scheme, &mut rng));
        }
    }
    g
}

/// The named instance set mirroring Table 1's five PUC instances at
/// reduced scale: `(paper name, generated analogue)`.
pub fn table1_instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("cc3-4p*", code_covering(3, 4, 8, CostScheme::Perturbed, 1)),
        ("cc3-5u*", code_covering(3, 5, 12, CostScheme::Unit, 2)),
        ("cc5-3p*", code_covering(5, 3, 18, CostScheme::Perturbed, 3)),
        ("hc7p*", hypercube(6, CostScheme::Perturbed, 4)),
        ("hc7u*", hypercube(6, CostScheme::Unit, 5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4, CostScheme::Unit, 7);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_alive_edges(), 4 * 8);
        assert_eq!(g.num_terminals(), 8); // even-parity half
        assert!(g.terminals_connected());
    }

    #[test]
    fn hypercube_unit_costs() {
        let g = hypercube(3, CostScheme::Unit, 7);
        assert!(g.alive_edges().all(|e| g.edge(e).cost == 1.0));
    }

    #[test]
    fn hypercube_perturbed_costs_in_range() {
        let g = hypercube(3, CostScheme::Perturbed, 7);
        assert!(g.alive_edges().all(|e| (100.0..=110.0).contains(&g.edge(e).cost)));
    }

    #[test]
    fn code_covering_shape() {
        let g = code_covering(3, 3, 6, CostScheme::Unit, 9);
        assert_eq!(g.num_nodes(), 27);
        // H(3,3): each vertex has d(k-1) = 6 neighbours → 27*6/2 = 81 edges.
        assert_eq!(g.num_alive_edges(), 81);
        assert_eq!(g.num_terminals(), 6);
        assert!(g.terminals_connected());
    }

    #[test]
    fn bipartite_connected_terminals() {
        let g = bipartite(6, 10, 3, CostScheme::Unit, 11);
        assert_eq!(g.num_terminals(), 6);
        assert!(g.terminals_connected());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = code_covering(3, 3, 6, CostScheme::Perturbed, 42);
        let b = code_covering(3, 3, 6, CostScheme::Perturbed, 42);
        assert_eq!(a.num_alive_edges(), b.num_alive_edges());
        let ea: Vec<f64> = a.alive_edges().map(|e| a.edge(e).cost).collect();
        let eb: Vec<f64> = b.alive_edges().map(|e| b.edge(e).cost).collect();
        assert_eq!(ea, eb);
        let ta: Vec<usize> = a.terminals().collect();
        let tb: Vec<usize> = b.terminals().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn table1_set_is_well_formed() {
        for (name, g) in table1_instances() {
            assert!(g.num_terminals() >= 2, "{name}");
            assert!(g.terminals_connected(), "{name}");
        }
    }
}
