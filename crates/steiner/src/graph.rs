//! Undirected graph with terminals, supporting the destructive updates
//! the reduction loop needs (edge/vertex deletion, degree-2 path merges,
//! terminal contractions) while keeping enough provenance to expand a
//! solution on the reduced graph back to original edges.

/// Edge provenance: how a (possibly reduced-graph) edge maps to original
/// edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EdgeOrigin {
    /// An edge of the original input graph (with its original id).
    Original(u32),
    /// Degree-2 merge of two arena edges (recursively expandable).
    Merged(u32, u32),
}

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Edge {
    pub u: u32,
    pub v: u32,
    pub cost: f64,
    pub alive: bool,
    pub origin: EdgeOrigin,
}

impl Edge {
    /// The endpoint opposite to `x`.
    #[inline]
    pub fn other(&self, x: u32) -> u32 {
        if self.u == x {
            self.v
        } else {
            self.u
        }
    }
}

/// Undirected Steiner problem graph. Edges live in an append-only arena;
/// deletion and merging toggle `alive` flags so provenance stays intact.
/// Serde derives make the (reduced) instance shippable to distributed
/// worker processes, which rebuild their models from it.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    pub(crate) edges: Vec<Edge>,
    adj: Vec<Vec<u32>>,
    terminal: Vec<bool>,
    node_alive: Vec<bool>,
    num_terminals: usize,
    /// Cost fixed into every solution by contractions of mandatory edges.
    pub fixed_cost: f64,
    /// Original edge ids fixed into every solution by contractions.
    pub fixed_edges: Vec<u32>,
    /// Number of edges of the *original* instance (before any reduction).
    original_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            terminal: vec![false; n],
            node_alive: vec![true; n],
            num_terminals: 0,
            fixed_cost: 0.0,
            fixed_edges: Vec::new(),
            original_edges: 0,
        }
    }

    /// Adds an (original) edge; returns its id. Call only during instance
    /// construction, before reductions.
    pub fn add_edge(&mut self, u: usize, v: usize, cost: f64) -> u32 {
        assert!(u != v, "self-loops are not allowed");
        assert!(cost >= 0.0, "SPG requires non-negative costs");
        let id = self.edges.len() as u32;
        self.edges.push(Edge {
            u: u as u32,
            v: v as u32,
            cost,
            alive: true,
            origin: EdgeOrigin::Original(id),
        });
        self.adj[u].push(id);
        self.adj[v].push(id);
        self.original_edges = self.edges.len();
        id
    }

    pub(crate) fn add_derived_edge(
        &mut self,
        u: u32,
        v: u32,
        cost: f64,
        origin: EdgeOrigin,
    ) -> u32 {
        let id = self.edges.len() as u32;
        self.edges.push(Edge { u, v, cost, alive: true, origin });
        self.adj[u as usize].push(id);
        self.adj[v as usize].push(id);
        id
    }

    pub fn set_terminal(&mut self, v: usize, is_terminal: bool) {
        if self.terminal[v] != is_terminal {
            self.terminal[v] = is_terminal;
            if is_terminal {
                self.num_terminals += 1;
            } else {
                self.num_terminals -= 1;
            }
        }
    }

    #[inline]
    pub fn is_terminal(&self, v: usize) -> bool {
        self.terminal[v]
    }

    #[inline]
    pub fn is_node_alive(&self, v: usize) -> bool {
        self.node_alive[v]
    }

    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Count of alive vertices.
    pub fn num_alive_nodes(&self) -> usize {
        self.node_alive.iter().filter(|a| **a).count()
    }

    pub fn num_terminals(&self) -> usize {
        self.num_terminals
    }

    /// Count of alive edges.
    pub fn num_alive_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.alive).count()
    }

    /// Number of edges in the original (unreduced) instance.
    pub fn num_original_edges(&self) -> usize {
        self.original_edges
    }

    pub fn edge(&self, id: u32) -> &Edge {
        &self.edges[id as usize]
    }

    /// Alive incident edges of `v`.
    pub fn incident(&self, v: usize) -> impl Iterator<Item = u32> + '_ {
        self.adj[v].iter().copied().filter(move |&e| self.edges[e as usize].alive)
    }

    /// Alive degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.incident(v).count()
    }

    /// Iterator over ids of alive edges.
    pub fn alive_edges(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.edges.len() as u32).filter(move |&e| self.edges[e as usize].alive)
    }

    /// Iterator over alive vertices.
    pub fn alive_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_nodes()).filter(move |&v| self.node_alive[v])
    }

    /// Terminals (alive).
    pub fn terminals(&self) -> impl Iterator<Item = usize> + '_ {
        self.alive_nodes().filter(move |&v| self.terminal[v])
    }

    pub fn delete_edge(&mut self, id: u32) {
        self.edges[id as usize].alive = false;
    }

    /// Deletes a vertex together with its incident edges. Panics on
    /// terminals — deleting a terminal would change the problem.
    pub fn delete_node(&mut self, v: usize) {
        assert!(!self.terminal[v], "cannot delete a terminal");
        let ids: Vec<u32> = self.incident(v).collect();
        for e in ids {
            self.delete_edge(e);
        }
        self.node_alive[v] = false;
    }

    /// Contracts edge `id`, merging its endpoint `from` into `into`,
    /// *fixing the edge into every solution* (used when an edge is proven
    /// mandatory, e.g. the single edge of a degree-1 terminal). Updates
    /// terminal status and removes the costlier of any parallel pair.
    pub fn contract_fixing_edge(&mut self, id: u32, into: u32, from: u32) {
        let e = self.edges[id as usize].clone();
        assert!(e.alive && ((e.u == into && e.v == from) || (e.v == into && e.u == from)));
        self.fixed_cost += e.cost;
        let origs = self.expand_edge(id);
        self.fixed_edges.extend(origs);
        self.delete_edge(id);
        // Move `from`'s edges onto `into`.
        let moved: Vec<u32> = self.incident(from as usize).collect();
        for me in moved {
            let (u, v) = (self.edges[me as usize].u, self.edges[me as usize].v);
            let other = if u == from { v } else { u };
            if other == into {
                // Parallel to the contracted edge: drop it (its cost would
                // only ever add to a cycle).
                self.delete_edge(me);
                continue;
            }
            if self.edges[me as usize].u == from {
                self.edges[me as usize].u = into;
            } else {
                self.edges[me as usize].v = into;
            }
            self.adj[into as usize].push(me);
        }
        self.adj[from as usize].clear();
        if self.terminal[from as usize] {
            self.set_terminal(from as usize, false);
            self.set_terminal(into as usize, true);
        }
        self.node_alive[from as usize] = false;
        self.dedup_parallel(into as usize);
    }

    /// Keeps only the cheapest edge between `v` and each neighbor.
    pub(crate) fn dedup_parallel(&mut self, v: usize) {
        use std::collections::HashMap;
        let mut best: HashMap<u32, u32> = HashMap::new();
        let ids: Vec<u32> = self.incident(v).collect();
        for e in ids {
            let other = self.edges[e as usize].other(v as u32);
            match best.get(&other) {
                None => {
                    best.insert(other, e);
                }
                Some(&prev) => {
                    if self.edges[e as usize].cost < self.edges[prev as usize].cost {
                        self.delete_edge(prev);
                        best.insert(other, e);
                    } else {
                        self.delete_edge(e);
                    }
                }
            }
        }
    }

    /// Replaces the two edges of a degree-2 non-terminal `v` by a single
    /// merged edge (path reduction). Returns the new edge id, or `None`
    /// when a cheaper parallel edge already exists (then `v`'s edges are
    /// simply deleted).
    pub fn merge_degree2(&mut self, v: usize) -> Option<u32> {
        assert!(!self.terminal[v]);
        let inc: Vec<u32> = self.incident(v).collect();
        assert_eq!(inc.len(), 2);
        let (e1, e2) = (inc[0], inc[1]);
        let a = self.edges[e1 as usize].other(v as u32);
        let b = self.edges[e2 as usize].other(v as u32);
        let cost = self.edges[e1 as usize].cost + self.edges[e2 as usize].cost;
        self.delete_edge(e1);
        self.delete_edge(e2);
        self.node_alive[v] = false;
        if a == b {
            return None; // the two edges were parallel via v: a pure cycle
        }
        // If an existing a-b edge is at most as expensive, drop the path.
        let existing = self.incident(a as usize).find(|&e| self.edges[e as usize].other(a) == b);
        if let Some(existing) = existing {
            if self.edges[existing as usize].cost <= cost {
                return None;
            }
            self.delete_edge(existing);
        }
        Some(self.add_derived_edge(a, b, cost, EdgeOrigin::Merged(e1, e2)))
    }

    /// Expands arena edge `id` to the original edge ids it represents.
    pub fn expand_edge(&self, id: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_originals(id, &mut |o| out.push(o));
        out
    }

    fn collect_originals(&self, id: u32, f: &mut impl FnMut(u32)) {
        match self.edges[id as usize].origin {
            EdgeOrigin::Original(o) => f(o),
            EdgeOrigin::Merged(a, b) => {
                self.collect_originals(a, f);
                self.collect_originals(b, f);
            }
        }
    }

    /// Total cost of a set of *original* edge ids (utility for checks).
    pub fn original_cost(&self, edge_ids: &[u32]) -> f64 {
        edge_ids.iter().map(|&e| self.edges[e as usize].cost).sum()
    }

    /// True if the alive graph connects all terminals (sanity check for
    /// generators and reductions).
    pub fn terminals_connected(&self) -> bool {
        let Some(start) = self.terminals().next() else {
            return true;
        };
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for e in self.incident(v) {
                let w = self.edges[e as usize].other(v as u32) as usize;
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        self.terminals().all(|t| seen[t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        // 0 - 1 - 2 - 3 with terminals 0, 3.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.set_terminal(0, true);
        g.set_terminal(3, true);
        g
    }

    #[test]
    fn basic_accessors() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_alive_edges(), 3);
        assert_eq!(g.num_terminals(), 2);
        assert_eq!(g.degree(1), 2);
        assert!(g.terminals_connected());
    }

    #[test]
    fn delete_node_removes_incident_edges() {
        let mut g = path_graph();
        g.delete_node(1);
        assert_eq!(g.num_alive_edges(), 1);
        assert!(!g.is_node_alive(1));
        assert!(!g.terminals_connected());
    }

    #[test]
    fn degree2_merge_creates_merged_edge() {
        let mut g = path_graph();
        let ne = g.merge_degree2(1).unwrap();
        assert_eq!(g.edge(ne).cost, 3.0);
        assert_eq!(g.expand_edge(ne), vec![0, 1]);
        assert!(g.terminals_connected());
        // Merge again through vertex 2: path 0-3 of cost 6.
        let ne2 = g.merge_degree2(2).unwrap();
        assert_eq!(g.edge(ne2).cost, 6.0);
        let mut ex = g.expand_edge(ne2);
        ex.sort();
        assert_eq!(ex, vec![0, 1, 2]);
    }

    #[test]
    fn degree2_merge_respects_cheaper_parallel() {
        // Triangle 0-1-2 plus cheap direct edge 0-2.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 5.0);
        let _direct = g.add_edge(0, 2, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        assert!(g.merge_degree2(1).is_none());
        assert_eq!(g.num_alive_edges(), 1);
        assert!(g.terminals_connected());
    }

    #[test]
    fn contract_fixes_edge_and_inherits_terminal() {
        let mut g = path_graph();
        // Terminal 0 has degree 1 → its edge (id 0) is mandatory.
        g.contract_fixing_edge(0, 1, 0);
        assert_eq!(g.fixed_cost, 1.0);
        assert_eq!(g.fixed_edges, vec![0]);
        assert!(g.is_terminal(1));
        assert!(!g.is_node_alive(0));
        assert_eq!(g.num_terminals(), 2);
        assert!(g.terminals_connected());
    }

    #[test]
    fn contract_dedups_parallel_edges() {
        // Triangle: contracting 0-1 creates parallel (1,2)+(0,2) → keep min.
        let mut g = Graph::new(3);
        let e01 = g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 5.0);
        g.add_edge(0, 2, 3.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        g.contract_fixing_edge(e01, 1, 0);
        assert_eq!(g.num_alive_edges(), 1);
        let e = g.alive_edges().next().unwrap();
        assert_eq!(g.edge(e).cost, 3.0);
    }
}
