//! Reduction techniques (§3.1: "extremely important ... often more than
//! 90% of the edges can be deleted"). Implemented here:
//!
//! * **degree tests** — delete degree-0/1 non-terminals, contract the
//!   mandatory edge of a degree-1 terminal, merge degree-2 non-terminals,
//! * **NNT test** — contract a terminal's cheapest incident edge when it
//!   leads to another terminal,
//! * **SD / alternative-path test** — delete an edge when a not-longer
//!   alternative path exists (bounded Dijkstra),
//! * **dual-ascent bound tests** — delete vertices/edges whose inclusion
//!   forces the reduced-cost lower bound past an upper bound,
//! * **restricted extended reduction** — the depth-1 extension of the
//!   dual-ascent arc test, our honest miniature of the "extended
//!   reduction techniques" \[54\] whose initial implementation the paper
//!   credits for solving bip52u.

use crate::dualascent::{arc_dijkstra, dist_to_terminals, dual_ascent};
use crate::graph::Graph;
use crate::heur::{real_weights, tm_best};
use crate::sap::SapGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Knobs of the reduction loop.
#[derive(Clone, Debug)]
pub struct ReduceParams {
    /// Vertex-scan limit of the bounded Dijkstra in the SD test.
    pub sd_scan_limit: usize,
    /// Enable dual-ascent bound-based tests.
    pub use_da: bool,
    /// Enable the restricted extended reduction (depth-1 extension).
    pub extended: bool,
    /// Outer loop passes.
    pub rounds: usize,
    /// Known upper bound on the *current graph's* optimum (excluding
    /// `fixed_cost`); when absent a TM bound is computed internally.
    pub upper_bound: Option<f64>,
}

impl Default for ReduceParams {
    fn default() -> Self {
        ReduceParams {
            sd_scan_limit: 400,
            use_da: true,
            extended: true,
            rounds: 8,
            upper_bound: None,
        }
    }
}

/// Per-technique reduction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceStats {
    pub degree_deleted: usize,
    pub degree_contracted: usize,
    pub degree_merged: usize,
    pub nnt_contracted: usize,
    pub sd_deleted: usize,
    pub da_nodes_deleted: usize,
    pub da_edges_deleted: usize,
    pub ext_edges_deleted: usize,
    pub rounds_run: usize,
}

impl ReduceStats {
    pub fn total_eliminations(&self) -> usize {
        self.degree_deleted
            + self.degree_contracted
            + self.degree_merged
            + self.nnt_contracted
            + self.sd_deleted
            + self.da_nodes_deleted
            + self.da_edges_deleted
            + self.ext_edges_deleted
    }
}

/// Runs the reduction loop in place. The graph's `fixed_cost` /
/// `fixed_edges` accumulate mandatory parts of the solution.
pub fn reduce(g: &mut Graph, params: &ReduceParams) -> ReduceStats {
    let mut stats = ReduceStats::default();
    for _ in 0..params.rounds {
        let mut changed = false;
        changed |= degree_tests(g, &mut stats);
        changed |= nnt_test(g, &mut stats);
        changed |= sd_test(g, params.sd_scan_limit, &mut stats);
        if params.use_da && g.num_terminals() >= 2 {
            changed |= da_tests(g, params, &mut stats);
        }
        stats.rounds_run += 1;
        if !changed {
            break;
        }
    }
    stats
}

/// Degree-based tests to a fixpoint. Returns true if anything changed.
pub fn degree_tests(g: &mut Graph, stats: &mut ReduceStats) -> bool {
    let mut any = false;
    loop {
        let mut changed = false;
        for v in 0..g.num_nodes() {
            if !g.is_node_alive(v) {
                continue;
            }
            let deg = g.degree(v);
            if g.num_terminals() <= 1 {
                break;
            }
            if !g.is_terminal(v) {
                match deg {
                    0 => {
                        g.delete_node(v);
                        stats.degree_deleted += 1;
                        changed = true;
                    }
                    1 => {
                        g.delete_node(v);
                        stats.degree_deleted += 1;
                        changed = true;
                    }
                    2 => {
                        g.merge_degree2(v);
                        stats.degree_merged += 1;
                        changed = true;
                    }
                    _ => {}
                }
            } else if deg == 1 {
                // Mandatory edge of a degree-1 terminal.
                let e = g.incident(v).next().unwrap();
                let u = g.edge(e).other(v as u32);
                g.contract_fixing_edge(e, u, v as u32);
                stats.degree_contracted += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        any = true;
    }
    any
}

/// Nearest-neighbour-terminal test: an edge joining two terminals that is
/// the cheapest incident edge of *both* endpoints lies in at least one
/// optimal solution (swap argument: adding it to an optimal tree closes a
/// cycle through both terminals, and the cycle's other edge at either
/// endpoint is at least as expensive) and can be contracted.
fn nnt_test(g: &mut Graph, stats: &mut ReduceStats) -> bool {
    let mut any = false;
    loop {
        if g.num_terminals() <= 1 {
            return any;
        }
        let mut action: Option<(u32, u32, u32)> = None;
        'scan: for t in g.terminals() {
            let mut cheapest: Option<u32> = None;
            for e in g.incident(t) {
                if cheapest.is_none_or(|c| g.edge(e).cost < g.edge(c).cost) {
                    cheapest = Some(e);
                }
            }
            let Some(e) = cheapest else { continue };
            let u = g.edge(e).other(t as u32) as usize;
            if !g.is_terminal(u) {
                continue;
            }
            // e must also be minimal at u.
            let min_u = g.incident(u).map(|f| g.edge(f).cost).fold(f64::INFINITY, f64::min);
            if g.edge(e).cost <= min_u + 1e-12 {
                action = Some((e, u as u32, t as u32));
                break 'scan;
            }
        }
        match action {
            Some((e, into, from)) => {
                g.contract_fixing_edge(e, into, from);
                stats.nnt_contracted += 1;
                any = true;
            }
            None => return any,
        }
    }
}

#[derive(PartialEq)]
struct Hi(f64, u32);
impl Eq for Hi {}
impl PartialOrd for Hi {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Hi {
    fn cmp(&self, o: &Self) -> Ordering {
        o.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal).then(o.1.cmp(&self.1))
    }
}

/// Alternative-path (special distance, restricted) test: edge `(u,v,c)`
/// is deleted when a different u–v path of length ≤ c exists. The
/// Dijkstra is bounded by distance `c` and `scan_limit` settled vertices.
pub fn sd_test(g: &mut Graph, scan_limit: usize, stats: &mut ReduceStats) -> bool {
    let mut any = false;
    let edges: Vec<u32> = g.alive_edges().collect();
    for e in edges {
        if !g.edge(e).alive {
            continue;
        }
        let (u, v, c) = {
            let ed = g.edge(e);
            (ed.u as usize, ed.v as usize, ed.cost)
        };
        // Bounded Dijkstra from u avoiding e.
        let mut dist = std::collections::HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(u, 0.0);
        heap.push(Hi(0.0, u as u32));
        let mut settled = 0usize;
        let mut found = false;
        while let Some(Hi(d, x)) = heap.pop() {
            let x = x as usize;
            if d > *dist.get(&x).unwrap_or(&f64::INFINITY) + 1e-15 {
                continue;
            }
            if x == v {
                found = d <= c + 1e-12;
                break;
            }
            settled += 1;
            if settled > scan_limit || d > c + 1e-12 {
                break;
            }
            for ne in g.incident(x) {
                if ne == e {
                    continue;
                }
                let w = g.edge(ne).other(x as u32) as usize;
                let nd = d + g.edge(ne).cost;
                if nd <= c + 1e-12 && nd < *dist.get(&w).unwrap_or(&f64::INFINITY) - 1e-15 {
                    dist.insert(w, nd);
                    heap.push(Hi(nd, w as u32));
                }
            }
        }
        if found {
            g.delete_edge(e);
            stats.sd_deleted += 1;
            any = true;
        }
    }
    any
}

/// Dual-ascent bound-based vertex/arc tests plus the restricted extended
/// test. Needs ≥ 2 terminals.
fn da_tests(g: &mut Graph, params: &ReduceParams, stats: &mut ReduceStats) -> bool {
    let ub = match params.upper_bound {
        Some(u) => u,
        None => match tm_best(g, 4, &real_weights(g)) {
            Some(t) => t.cost,
            None => return false, // disconnected; degree tests will clean up
        },
    };
    let root = SapGraph::pick_root(g);
    let sap = SapGraph::from_graph(g, root);
    let da = dual_ascent(&sap, 16);
    if !da.bound.is_finite() {
        return false;
    }
    let dfr = arc_dijkstra(&sap, &da.redcost, root);
    let dtt = dist_to_terminals(&sap, &da.redcost);
    let lb = da.bound;
    let tol = 1e-9;
    let mut any = false;

    // Vertex test.
    let nodes: Vec<usize> = g.alive_nodes().filter(|&v| !g.is_terminal(v)).collect();
    for v in nodes {
        if dfr[v] + dtt[v] + lb > ub + tol {
            g.delete_node(v);
            stats.da_nodes_deleted += 1;
            any = true;
        }
    }
    // Arc/edge tests (both directions must be excludable) + extended.
    let edges: Vec<u32> = g.alive_edges().collect();
    for e in edges {
        if !g.edge(e).alive {
            continue;
        }
        let a1 = find_arc(&sap, e, g.edge(e).u, g.edge(e).v);
        let a2 = find_arc(&sap, e, g.edge(e).v, g.edge(e).u);
        let (Some(a1), Some(a2)) = (a1, a2) else { continue };
        let excl1 = arc_excludable(g, &sap, &da.redcost, &dfr, &dtt, lb, ub, a1, params.extended);
        if !excl1 {
            continue;
        }
        let excl2 = arc_excludable(g, &sap, &da.redcost, &dfr, &dtt, lb, ub, a2, params.extended);
        if excl2 {
            g.delete_edge(e);
            stats.da_edges_deleted += 1;
            any = true;
        }
    }
    any
}

fn find_arc(sap: &SapGraph, edge: u32, tail: u32, head: u32) -> Option<u32> {
    sap.out[tail as usize]
        .iter()
        .copied()
        .find(|&a| sap.arcs[a as usize].edge == edge && sap.arcs[a as usize].head == head)
}

/// Can arc `a` be excluded from every optimal arborescence? Base test:
/// `lb + d̃(r→tail) + c̃(a) + d̃(head→T) > ub`. The *extended* variant
/// replaces `d̃(head→T)` for non-terminal heads by the best depth-1
/// continuation `min_{w≠tail} c̃(head→w) + d̃(w→T)` — valid because a
/// non-terminal head must continue toward a terminal via an arc other
/// than the reverse of `a`.
#[allow(clippy::too_many_arguments)]
fn arc_excludable(
    g: &Graph,
    sap: &SapGraph,
    redcost: &[f64],
    dfr: &[f64],
    dtt: &[f64],
    lb: f64,
    ub: f64,
    a: u32,
    extended: bool,
) -> bool {
    let arc = &sap.arcs[a as usize];
    let tail = arc.tail as usize;
    let head = arc.head as usize;
    let base = lb + dfr[tail] + redcost[a as usize];
    let tol = 1e-9;
    if base + dtt[head] > ub + tol {
        return true;
    }
    if !extended || g.is_terminal(head) {
        return false;
    }
    // Extended: every continuation out of `head` (other than back to
    // `tail`) must break the bound.
    let mut cont = f64::INFINITY;
    for &oa in &sap.out[head] {
        let oarc = &sap.arcs[oa as usize];
        if oarc.head as usize == tail {
            continue;
        }
        cont = cont.min(redcost[oa as usize] + dtt[oarc.head as usize]);
    }
    base + cont > ub + tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree1_chain_collapses() {
        // 0(T) - 1 - 2 - 3(T), plus dangling 4 off vertex 1.
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(1, 4, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(3, true);
        let mut st = ReduceStats::default();
        degree_tests(&mut g, &mut st);
        // The whole terminal path contracts away: the instance is solved
        // by degree tests alone with the optimal cost fixed (the dangling
        // vertex 4 becomes irrelevant once ≤ 1 terminal remains).
        assert!(g.num_terminals() <= 1);
        assert_eq!(g.fixed_cost, 3.0);
        assert!(st.degree_contracted >= 1);
        assert!(g.terminals_connected());
    }

    #[test]
    fn degree1_terminal_contracts_and_fixes() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 7.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let mut st = ReduceStats::default();
        degree_tests(&mut g, &mut st);
        // Both terminals have degree 1: everything is mandatory.
        assert_eq!(g.fixed_cost, 12.0);
        assert!(g.num_terminals() <= 1);
    }

    #[test]
    fn sd_deletes_dominated_edge() {
        // Triangle where 0-2 (cost 5) is dominated by 0-1-2 (cost 3).
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        let dominated = g.add_edge(0, 2, 5.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let mut st = ReduceStats::default();
        assert!(sd_test(&mut g, 100, &mut st));
        assert!(!g.edge(dominated).alive);
        assert_eq!(st.sd_deleted, 1);
    }

    #[test]
    fn sd_keeps_needed_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        let direct = g.add_edge(0, 2, 2.5); // cheaper than the path
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let mut st = ReduceStats::default();
        sd_test(&mut g, 100, &mut st);
        assert!(g.edge(direct).alive);
    }

    #[test]
    fn full_reduce_solves_easy_instance() {
        // A path instance reduces to nothing: the optimum is fully fixed.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.set_terminal(0, true);
        g.set_terminal(3, true);
        let stats = reduce(&mut g, &ReduceParams::default());
        assert!(stats.total_eliminations() > 0);
        assert!(g.num_terminals() <= 1);
        assert_eq!(g.fixed_cost, 6.0);
    }

    #[test]
    fn da_tests_delete_hopeless_vertices() {
        // Terminals 0,1 joined by a cost-1 edge; vertex 2 hangs far away
        // with two expensive edges (degree 2, so degree tests alone would
        // merge rather than delete — DA bound test should kill it).
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 10.0);
        g.add_edge(1, 2, 10.0);
        g.set_terminal(0, true);
        g.set_terminal(1, true);
        let params = ReduceParams { rounds: 2, ..Default::default() };
        let stats = reduce(&mut g, &params);
        assert!(!g.is_node_alive(2) || g.degree(2) == 0);
        assert!(stats.total_eliminations() > 0);
    }

    #[test]
    fn reductions_preserve_optimum() {
        // Verify on a small instance by brute force: optimum before ==
        // fixed_cost + optimum after.
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        g.add_edge(0, 3, 1.0);
        g.add_edge(3, 4, 4.0);
        g.add_edge(4, 2, 1.0);
        g.add_edge(1, 5, 1.0);
        g.add_edge(5, 2, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let brute_before = brute_force_opt(&g);
        let stats = reduce(&mut g, &ReduceParams::default());
        let _ = stats;
        let after = if g.num_terminals() <= 1 { 0.0 } else { brute_force_opt(&g) };
        assert!(
            (brute_before - (g.fixed_cost + after)).abs() < 1e-9,
            "before {brute_before}, fixed {} + after {after}",
            g.fixed_cost
        );
    }

    /// Exponential-time exact SPG oracle for tiny graphs: try all edge
    /// subsets.
    fn brute_force_opt(g: &Graph) -> f64 {
        let edges: Vec<u32> = g.alive_edges().collect();
        let m = edges.len();
        assert!(m <= 20);
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << m) {
            let subset: Vec<u32> =
                (0..m).filter(|i| mask >> i & 1 == 1).map(|i| edges[i]).collect();
            let t = crate::tree::SteinerTree::new(g, subset);
            if t.is_valid(g) && t.cost < best {
                best = t.cost;
            }
        }
        best
    }
}
