//! A SCIP-Jack-style solver for the Steiner tree problem in graphs (SPG).
//!
//! Following §3.1 of the paper, the solver combines three ingredient
//! classes:
//!
//! 1. **Reduction techniques** ([`reduce`]) — degree tests, alternative-
//!    path (special distance) tests, dual-ascent bound-based tests and a
//!    restricted implementation of *extended* reduction techniques,
//!    applied both in presolving and (through the constraint handler's
//!    propagation) deep in the branch-and-bound tree, where branching has
//!    reshaped the graph — the effect the paper exploits to solve
//!    previously unsolved PUC instances.
//! 2. **Heuristics** ([`heur`]) — the repeated-shortest-path TM heuristic
//!    (optionally biased by LP values), MST-pruning, and a vertex
//!    insertion/elimination local search.
//! 3. **Branch-and-cut** ([`plugins`]) — the problem is transformed to the
//!    Steiner arborescence problem ([`sap`]) and solved on the
//!    flow-balance directed cut formulation (Formulation 1 of the paper):
//!    violated directed cuts (4) are separated by max-flow/min-cut
//!    ([`maxflow`]), flow-balance rows (5)/(6) are part of the initial
//!    model, and branching happens on *vertices* via the coupling
//!    variables `z_v = y(δ⁻(v))`.
//!
//! The [`solver::SteinerSolver`] facade wires everything into the
//! `ugrs-cip` framework; `ugrs-glue` exposes the same plugin set to UG for
//! the parallel runs of §4.1.
//!
//! Instances can be read from SteinLib `.stp` files ([`stp`]) or generated
//! as PUC-like families ([`gen`]): hypercube `hc`, code covering `cc` and
//! bipartite `bip` instances.

pub mod dualascent;
pub mod gen;
pub mod graph;
pub mod heur;
pub mod maxflow;
pub mod plugins;
pub mod reduce;
pub mod sap;
pub mod solver;
pub mod stp;
pub mod tree;
pub mod util;
pub mod variants;

pub use graph::Graph;
pub use solver::{SteinerOptions, SteinerResult, SteinerSolver};
pub use tree::SteinerTree;
