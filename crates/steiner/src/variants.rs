//! Problem-class transformations — the SCIP-Jack versatility story
//! (§1: "by far the most versatile solver participating in the DIMACS
//! Challenge, being able to solve the SPG and 10 related problems";
//! §3.1: "SCIP-Jack transforms all problem classes to the Steiner
//! arborescence problem, sometimes with additional constraints").
//!
//! Implemented here: the **prize-collecting Steiner tree problem**
//! (PCSTP), rooted and unrooted. Given prizes `p(v) ≥ 0` and edge costs
//! `c`, minimize `c(E(S)) + Σ_{v ∉ S} p(v)` over trees `S` (containing
//! the root, in the rooted variant).
//!
//! The rooted transformation adds, for every vertex `v` with `p(v) > 0`,
//! a gadget terminal `t_v` with arcs `v → t_v` of cost `0` and
//! `r → t_v` of cost `p(v)` — and **no arcs out of `t_v`** (otherwise
//! `t_v` would act as a cost-`p(v)` shortcut into the graph). An
//! arborescence then pays `p(v)` exactly for the vertices it does not
//! span. The directedness is expressed as root-level variable fixings
//! on the SAP model (`y_a = 0` for arcs leaving gadget terminals), so
//! the whole branch-and-cut machinery — including UG parallelization of
//! the resulting model — applies unchanged; graph-level reductions are
//! skipped because they reason about the undirected relaxation.

use crate::graph::Graph;
use crate::solver::SteinerOptions;
use crate::tree::SteinerTree;
use ugrs_cip::SolveStatus;

/// A prize-collecting Steiner tree instance.
#[derive(Clone, Debug)]
pub struct PcstpInstance {
    /// The underlying graph; terminals are ignored (prizes rule).
    pub graph: Graph,
    /// Non-negative prize per vertex (0 = plain optional vertex).
    pub prizes: Vec<f64>,
}

/// Result of a PCSTP solve.
#[derive(Clone, Debug)]
pub struct PcstpResult {
    pub status: SolveStatus,
    /// Chosen tree edges (original graph ids; empty tree = only the root).
    pub tree_edges: Vec<u32>,
    /// Vertices spanned by the tree.
    pub spanned: Vec<usize>,
    /// Objective `c(E(S)) + Σ_{v∉S} p(v)`.
    pub objective: Option<f64>,
    /// Proven lower bound on the objective.
    pub dual_bound: f64,
}

impl PcstpInstance {
    pub fn new(graph: Graph, prizes: Vec<f64>) -> Self {
        assert_eq!(prizes.len(), graph.num_nodes());
        assert!(prizes.iter().all(|p| *p >= 0.0), "prizes must be non-negative");
        PcstpInstance { graph, prizes }
    }

    /// Objective of a candidate tree (edge set over the original graph,
    /// spanning `root` when non-empty).
    pub fn objective_of(&self, edges: &[u32], root: usize) -> f64 {
        let tree = SteinerTree::new(&self.graph, edges.to_vec());
        let mut spanned = vec![false; self.graph.num_nodes()];
        spanned[root] = true;
        for &e in edges {
            let ed = self.graph.edge(e);
            spanned[ed.u as usize] = true;
            spanned[ed.v as usize] = true;
        }
        let missed: f64 = (0..self.graph.num_nodes())
            .filter(|&v| self.graph.is_node_alive(v) && !spanned[v])
            .map(|v| self.prizes[v])
            .sum();
        tree.cost + missed
    }

    /// Builds the rooted transformation: the augmented SPG whose optimal
    /// Steiner tree encodes the optimal prize-collecting tree. Returns
    /// `(augmented graph, gadget vertex of each prized vertex)`.
    pub fn rooted_transformation(&self, root: usize) -> (Graph, Vec<Option<usize>>) {
        let n = self.graph.num_nodes();
        let prized: Vec<usize> = (0..n)
            .filter(|&v| self.graph.is_node_alive(v) && self.prizes[v] > 0.0 && v != root)
            .collect();
        let mut g = Graph::new(n + prized.len());
        for e in self.graph.alive_edges() {
            let ed = self.graph.edge(e);
            g.add_edge(ed.u as usize, ed.v as usize, ed.cost);
        }
        let mut gadget: Vec<Option<usize>> = vec![None; n];
        for (k, &v) in prized.iter().enumerate() {
            let t = n + k;
            g.add_edge(v, t, 0.0);
            g.add_edge(root, t, self.prizes[v]);
            g.set_terminal(t, true);
            gadget[v] = Some(t);
        }
        g.set_terminal(root, true);
        (g, gadget)
    }

    /// Solves the rooted PCSTP exactly.
    pub fn solve_rooted(&self, root: usize, options: SteinerOptions) -> PcstpResult {
        assert!(self.graph.is_node_alive(root));
        let n = self.graph.num_nodes();
        let (aug, gadget) = self.rooted_transformation(root);
        // Degenerate case: nothing prized → the empty tree is optimal.
        if aug.num_terminals() <= 1 {
            return PcstpResult {
                status: SolveStatus::Optimal,
                tree_edges: Vec::new(),
                spanned: vec![root],
                objective: Some(0.0),
                dual_bound: 0.0,
            };
        }
        // Build the SAP model directly and make the gadget directed: no
        // arcs may leave a gadget terminal.
        let (model, data) = crate::plugins::build_model_rooted(&aug, root);
        let mut changes = Vec::new();
        for t in gadget.iter().flatten() {
            for &a in &data.sap.out[*t] {
                changes.push(ugrs_cip::tree::BoundChange {
                    var: data.arc_var[a as usize],
                    lb: 0.0,
                    ub: 0.0,
                });
            }
        }
        let desc =
            ugrs_cip::NodeDesc { bound_changes: changes, depth: 0, dual_bound: f64::NEG_INFINITY };
        let mut solver = ugrs_cip::Solver::new(model, options.settings.clone());
        crate::plugins::register_plugins(&mut solver, data.clone(), options.in_tree_reductions);
        let res = solver.solve_subproblem(&desc, &mut ugrs_cip::NoHooks);
        let Some(x) = res.best_x else {
            return PcstpResult {
                status: res.status,
                tree_edges: Vec::new(),
                spanned: Vec::new(),
                objective: None,
                dual_bound: res.dual_bound,
            };
        };
        // Original edges = chosen augmented edges between original vertices
        // (the augmented graph adds the original edges first, in order, so
        // their arena ids coincide).
        let mut tree_edges = Vec::new();
        let mut spanned = vec![false; n];
        spanned[root] = true;
        for e in data.assignment_to_edges(&x) {
            let ed = aug.edge(e);
            let (u, v) = (ed.u as usize, ed.v as usize);
            if u < n && v < n {
                tree_edges.push(e);
                spanned[u] = true;
                spanned[v] = true;
            }
        }
        let objective = Some(self.objective_of(&tree_edges, root));
        PcstpResult {
            status: res.status,
            tree_edges,
            spanned: (0..n).filter(|&v| spanned[v]).collect(),
            objective,
            dual_bound: res.dual_bound,
        }
    }

    /// Solves the unrooted PCSTP exactly by trying every prized vertex as
    /// the root (plus the empty solution). Exponential-free but `O(k)`
    /// rooted solves — fine at benchmark scale; SCIP-Jack's single-run
    /// transformation with a degree constraint on the artificial root is
    /// noted as future work in DESIGN.md.
    pub fn solve_unrooted(&self, options: SteinerOptions) -> PcstpResult {
        let n = self.graph.num_nodes();
        let total_prize: f64 =
            (0..n).filter(|&v| self.graph.is_node_alive(v)).map(|v| self.prizes[v]).sum();
        // Empty solution: collect nothing, pay every prize.
        let mut best = PcstpResult {
            status: SolveStatus::Optimal,
            tree_edges: Vec::new(),
            spanned: Vec::new(),
            objective: Some(total_prize),
            dual_bound: total_prize,
        };
        for v in 0..n {
            if !self.graph.is_node_alive(v) || self.prizes[v] <= 0.0 {
                continue;
            }
            // Rooting at v: v is in the tree, so its own prize is never
            // paid; the rooted objective is directly comparable.
            let r = self.solve_rooted(v, options.clone());
            let r_status = r.status;
            if let Some(obj) = r.objective {
                if obj < best.objective.unwrap() - 1e-9 {
                    best = r;
                }
            }
            if r_status != SolveStatus::Optimal && best.status == SolveStatus::Optimal {
                best.status = r_status; // propagate "not proven" outward
            }
        }
        best.dual_bound = best.objective.unwrap_or(f64::INFINITY).min(best.dual_bound);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force PCSTP oracle: enumerate vertex subsets containing the
    /// root, build an MST over each, prune, and price.
    fn brute_rooted(inst: &PcstpInstance, root: usize) -> f64 {
        let n = inst.graph.num_nodes();
        assert!(n <= 16);
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            if mask >> root & 1 == 0 {
                continue;
            }
            let in_set: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
            // The induced subgraph must connect the chosen set.
            let forest = crate::util::mst_on_subset(&inst.graph, &in_set);
            let mut uf = crate::util::UnionFind::new(n);
            for &e in &forest {
                let ed = inst.graph.edge(e);
                uf.union(ed.u as usize, ed.v as usize);
            }
            let chosen: Vec<usize> = (0..n).filter(|&v| in_set[v]).collect();
            if !chosen.iter().all(|&v| uf.same(root, v)) {
                continue;
            }
            let cost: f64 = forest.iter().map(|&e| inst.graph.edge(e).cost).sum();
            let missed: f64 = (0..n).filter(|&v| !in_set[v]).map(|v| inst.prizes[v]).sum();
            best = best.min(cost + missed);
        }
        best
    }

    fn line_instance() -> PcstpInstance {
        // 0 - 1 - 2 - 3 with costs 2,2,5; prizes [0, 3, 1, 10].
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 5.0);
        PcstpInstance::new(g, vec![0.0, 3.0, 1.0, 10.0])
    }

    #[test]
    fn rooted_matches_brute_force() {
        let inst = line_instance();
        for root in 0..4 {
            let expected = brute_rooted(&inst, root);
            let res = inst.solve_rooted(root, SteinerOptions::default());
            assert_eq!(res.status, SolveStatus::Optimal, "root {root}");
            let got = res.objective.unwrap();
            assert!((got - expected).abs() < 1e-6, "root {root}: {got} vs {expected}");
        }
    }

    #[test]
    fn prizes_decide_inclusion() {
        let inst = line_instance();
        // Root 0: collecting prize 10 at vertex 3 costs path 2+2+5 = 9 < 10,
        // and picking up 1 & 2's prizes on the way is free. Expected: span
        // everything, objective 9.
        let res = inst.solve_rooted(0, SteinerOptions::default());
        assert!((res.objective.unwrap() - 9.0).abs() < 1e-6);
        assert_eq!(res.spanned, vec![0, 1, 2, 3]);
    }

    #[test]
    fn expensive_vertices_are_skipped() {
        // Prize 1 at distance 5: not worth it.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5.0);
        let inst = PcstpInstance::new(g, vec![0.0, 1.0]);
        let res = inst.solve_rooted(0, SteinerOptions::default());
        assert!((res.objective.unwrap() - 1.0).abs() < 1e-9); // pay the prize
        assert!(res.tree_edges.is_empty());
    }

    #[test]
    fn unrooted_picks_best_root() {
        let inst = line_instance();
        let res = inst.solve_unrooted(SteinerOptions::default());
        let expected =
            (0..4).map(|r| brute_rooted(&inst, r)).fold((14.0f64).min(f64::INFINITY), f64::min); // 14 = pay all prizes
        assert!((res.objective.unwrap() - expected).abs() < 1e-6);
    }

    #[test]
    fn empty_solution_wins_when_prizes_are_tiny() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 100.0);
        g.add_edge(1, 2, 100.0);
        let inst = PcstpInstance::new(g, vec![0.1, 0.1, 0.1]);
        let res = inst.solve_unrooted(SteinerOptions::default());
        // Spanning anything costs ≥ 100; staying home pays 0.3... but a
        // single-vertex "tree" (root only) still collects that root's
        // prize: best = 0.2.
        assert!((res.objective.unwrap() - 0.2).abs() < 1e-6, "{:?}", res.objective);
    }
}
