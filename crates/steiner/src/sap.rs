//! Steiner arborescence (SAP) view: the bidirected transformation that
//! SCIP-Jack applies to every problem class (§3.1). Each alive undirected
//! edge becomes two antiparallel arcs; a root terminal is chosen, and the
//! directed cut formulation is solved on this view.

use crate::graph::Graph;

/// A directed arc of the SAP view.
#[derive(Clone, Copy, Debug)]
pub struct Arc {
    pub tail: u32,
    pub head: u32,
    pub cost: f64,
    /// The undirected arena edge this arc came from.
    pub edge: u32,
}

/// Compact directed view of an alive [`Graph`].
#[derive(Clone, Debug)]
pub struct SapGraph {
    pub n: usize,
    pub root: usize,
    pub arcs: Vec<Arc>,
    pub out: Vec<Vec<u32>>,
    pub inc: Vec<Vec<u32>>,
    pub terminal: Vec<bool>,
    /// Alive-vertex mask carried over from the graph.
    pub node_alive: Vec<bool>,
}

impl SapGraph {
    /// Builds the bidirected view rooted at `root` (must be a terminal).
    pub fn from_graph(g: &Graph, root: usize) -> Self {
        assert!(g.is_terminal(root), "root must be a terminal");
        let n = g.num_nodes();
        let mut arcs = Vec::with_capacity(2 * g.num_alive_edges());
        let mut out = vec![Vec::new(); n];
        let mut inc = vec![Vec::new(); n];
        for e in g.alive_edges() {
            let ed = g.edge(e);
            let a1 = arcs.len() as u32;
            arcs.push(Arc { tail: ed.u, head: ed.v, cost: ed.cost, edge: e });
            out[ed.u as usize].push(a1);
            inc[ed.v as usize].push(a1);
            let a2 = arcs.len() as u32;
            arcs.push(Arc { tail: ed.v, head: ed.u, cost: ed.cost, edge: e });
            out[ed.v as usize].push(a2);
            inc[ed.u as usize].push(a2);
        }
        let terminal = (0..n).map(|v| g.is_node_alive(v) && g.is_terminal(v)).collect();
        let node_alive = (0..n).map(|v| g.is_node_alive(v)).collect();
        SapGraph { n, root, arcs, out, inc, terminal, node_alive }
    }

    /// Picks a root terminal: the alive terminal of maximum degree (a
    /// common SCIP-Jack default — a high-degree root strengthens the
    /// directed formulation).
    pub fn pick_root(g: &Graph) -> usize {
        g.terminals()
            .max_by_key(|&t| g.degree(t))
            .expect("instance must have at least one terminal")
    }

    /// The antiparallel partner of arc `a` (arcs are created in pairs).
    #[inline]
    pub fn reverse(&self, a: u32) -> u32 {
        a ^ 1
    }

    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Terminals other than the root.
    pub fn sinks(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&v| self.terminal[v] && v != self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(0, 2, 4.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        g
    }

    #[test]
    fn bidirects_all_alive_edges() {
        let g = triangle();
        let sap = SapGraph::from_graph(&g, 0);
        assert_eq!(sap.num_arcs(), 6);
        assert_eq!(sap.out[0].len(), 2);
        assert_eq!(sap.inc[0].len(), 2);
        assert_eq!(sap.sinks().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn reverse_pairs() {
        let g = triangle();
        let sap = SapGraph::from_graph(&g, 0);
        for a in 0..sap.num_arcs() as u32 {
            let r = sap.reverse(a);
            assert_eq!(sap.arcs[a as usize].tail, sap.arcs[r as usize].head);
            assert_eq!(sap.arcs[a as usize].edge, sap.arcs[r as usize].edge);
        }
    }

    #[test]
    fn dead_edges_excluded() {
        let mut g = triangle();
        g.delete_edge(2);
        let sap = SapGraph::from_graph(&g, 0);
        assert_eq!(sap.num_arcs(), 4);
    }

    #[test]
    fn root_pick_prefers_high_degree() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(0, 3, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(1, true);
        assert_eq!(SapGraph::pick_root(&g), 0);
    }
}
