//! Dinic max-flow / min-cut on small directed graphs with real-valued
//! capacities — the separation engine for the directed cut constraints
//! (4) of Formulation 1: violated cuts are exactly min cuts of value
//! < 1 in the LP-solution-capacitated SAP graph.

/// A max-flow problem instance. Arcs are directed; reverse (residual)
/// arcs are managed internally.
pub struct MaxFlow {
    n: usize,
    /// per arc: (head, capacity); arcs stored in pairs (forward, residual).
    head: Vec<u32>,
    cap: Vec<f64>,
    adj: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

const EPS: f64 = 1e-9;

impl MaxFlow {
    pub fn new(n: usize) -> Self {
        MaxFlow {
            n,
            head: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Adds a directed arc `u → v` with capacity `cap`; returns its index.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: f64) -> usize {
        let id = self.head.len();
        self.head.push(v as u32);
        self.cap.push(cap.max(0.0));
        self.adj[u].push(id as u32);
        self.head.push(u as u32);
        self.cap.push(0.0);
        self.adj[v].push(id as u32 + 1);
        id
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &a in &self.adj[v] {
                let a = a as usize;
                let w = self.head[a] as usize;
                if self.cap[a] > EPS && self.level[w] < 0 {
                    self.level[w] = self.level[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let a = self.adj[v][self.iter[v]] as usize;
            let w = self.head[a] as usize;
            if self.cap[a] > EPS && self.level[w] == self.level[v] + 1 {
                let d = self.dfs(w, t, f.min(self.cap[a]));
                if d > EPS {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    /// Computes the max flow from `s` to `t`, capped at `limit` (pass
    /// `f64::INFINITY` for the true max flow). The cap matters for
    /// separation: once the flow reaches 1 the cut cannot be violated,
    /// so we stop early.
    pub fn max_flow(&mut self, s: usize, t: usize, limit: f64) -> f64 {
        assert_ne!(s, t);
        let mut flow = 0.0;
        while flow < limit - EPS && self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, limit - flow);
                if f <= EPS {
                    break;
                }
                flow += f;
                if flow >= limit - EPS {
                    break;
                }
            }
        }
        flow
    }

    /// After `max_flow`, the source side of a min cut: vertices reachable
    /// from `s` in the residual network.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for &a in &self.adj[v] {
                let a = a as usize;
                let w = self.head[a] as usize;
                if self.cap[a] > EPS && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_network() {
        // s=0, t=3; two disjoint paths of caps 2 and 3 → max flow 5.
        let mut mf = MaxFlow::new(4);
        mf.add_arc(0, 1, 2.0);
        mf.add_arc(1, 3, 2.0);
        mf.add_arc(0, 2, 3.0);
        mf.add_arc(2, 3, 3.0);
        assert!((mf.max_flow(0, 3, f64::INFINITY) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_respected() {
        let mut mf = MaxFlow::new(3);
        mf.add_arc(0, 1, 10.0);
        mf.add_arc(1, 2, 0.5);
        assert!((mf.max_flow(0, 2, f64::INFINITY) - 0.5).abs() < 1e-9);
        let cut = mf.min_cut_source_side(0);
        assert_eq!(cut, vec![true, true, false]);
    }

    #[test]
    fn limit_stops_early() {
        let mut mf = MaxFlow::new(2);
        mf.add_arc(0, 1, 100.0);
        let f = mf.max_flow(0, 1, 1.0);
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_separates_s_from_t() {
        // Diamond with a weak middle edge.
        let mut mf = MaxFlow::new(4);
        mf.add_arc(0, 1, 1.0);
        mf.add_arc(0, 2, 1.0);
        mf.add_arc(1, 3, 0.25);
        mf.add_arc(2, 3, 0.25);
        let f = mf.max_flow(0, 3, f64::INFINITY);
        assert!((f - 0.5).abs() < 1e-9);
        let cut = mf.min_cut_source_side(0);
        assert!(cut[0] && !cut[3]);
        assert!(cut[1] && cut[2]);
    }

    #[test]
    fn flow_conservation_via_value() {
        // Max-flow equals min-cut: brute-check a tiny random-ish graph.
        let mut mf = MaxFlow::new(5);
        mf.add_arc(0, 1, 1.5);
        mf.add_arc(0, 2, 2.0);
        mf.add_arc(1, 3, 1.0);
        mf.add_arc(2, 3, 1.0);
        mf.add_arc(1, 2, 0.5);
        mf.add_arc(3, 4, 1.75);
        let f = mf.max_flow(0, 4, f64::INFINITY);
        assert!((f - 1.75).abs() < 1e-9); // bottleneck at 3→4
    }
}
