//! Steiner tree (solution) representation, validation and pruning.

use crate::graph::Graph;
use crate::util::UnionFind;

/// A candidate Steiner tree: a set of alive arena edge ids of a graph.
#[derive(Clone, Debug, Default)]
pub struct SteinerTree {
    pub edges: Vec<u32>,
    pub cost: f64,
}

impl SteinerTree {
    /// Builds a tree from edge ids, computing the cost from `g`.
    pub fn new(g: &Graph, mut edges: Vec<u32>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let cost = edges.iter().map(|&e| g.edge(e).cost).sum();
        SteinerTree { edges, cost }
    }

    /// Checks that the edge set forms a tree (acyclic, connected on its
    /// support) containing all alive terminals of `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        let mut uf = UnionFind::new(g.num_nodes());
        let mut used_nodes = std::collections::HashSet::new();
        for &e in &self.edges {
            let ed = g.edge(e);
            if !uf.union(ed.u as usize, ed.v as usize) {
                return false; // cycle
            }
            used_nodes.insert(ed.u as usize);
            used_nodes.insert(ed.v as usize);
        }
        let mut terms = g.terminals();
        let Some(first) = terms.next() else {
            return true;
        };
        if !used_nodes.contains(&first) && g.terminals().count() > 1 {
            return false;
        }
        for t in g.terminals() {
            if t != first && (!used_nodes.contains(&t) || !uf.same(first, t)) {
                return false;
            }
        }
        true
    }

    /// Removes non-terminal leaves iteratively (the classic prune step);
    /// returns the pruned tree.
    pub fn pruned(&self, g: &Graph) -> SteinerTree {
        let n = g.num_nodes();
        let mut deg = vec![0usize; n];
        let mut alive: Vec<bool> = vec![true; self.edges.len()];
        for &e in &self.edges {
            let ed = g.edge(e);
            deg[ed.u as usize] += 1;
            deg[ed.v as usize] += 1;
        }
        loop {
            let mut removed = false;
            for (i, &e) in self.edges.iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                let ed = g.edge(e);
                for endpoint in [ed.u as usize, ed.v as usize] {
                    if deg[endpoint] == 1 && !g.is_terminal(endpoint) {
                        alive[i] = false;
                        deg[ed.u as usize] -= 1;
                        deg[ed.v as usize] -= 1;
                        removed = true;
                        break;
                    }
                }
            }
            if !removed {
                break;
            }
        }
        let kept: Vec<u32> =
            self.edges.iter().zip(&alive).filter(|(_, a)| **a).map(|(&e, _)| e).collect();
        SteinerTree::new(g, kept)
    }

    /// Vertices spanned by the tree.
    pub fn vertices(&self, g: &Graph) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        for &e in &self.edges {
            let ed = g.edge(e);
            seen.insert(ed.u as usize);
            seen.insert(ed.v as usize);
        }
        let mut v: Vec<usize> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Graph {
        // center 0, leaves 1..4; terminals 1, 2.
        let mut g = Graph::new(5);
        for v in 1..5 {
            g.add_edge(0, v, v as f64);
        }
        g.set_terminal(1, true);
        g.set_terminal(2, true);
        g
    }

    #[test]
    fn validity_checks() {
        let g = star();
        let good = SteinerTree::new(&g, vec![0, 1]); // 0-1, 0-2
        assert!(good.is_valid(&g));
        assert_eq!(good.cost, 3.0);
        let disconnected = SteinerTree::new(&g, vec![0]); // misses terminal 2
        assert!(!disconnected.is_valid(&g));
    }

    #[test]
    fn cycles_are_invalid() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        g.set_terminal(0, true);
        let cyc = SteinerTree::new(&g, vec![0, 1, 2]);
        assert!(!cyc.is_valid(&g));
    }

    #[test]
    fn pruning_removes_useless_leaves() {
        let g = star();
        let bloated = SteinerTree::new(&g, vec![0, 1, 2, 3]); // includes leaves 3, 4
        let pruned = bloated.pruned(&g);
        assert_eq!(pruned.cost, 3.0);
        assert_eq!(pruned.edges, vec![0, 1]);
        assert!(pruned.is_valid(&g));
    }

    #[test]
    fn pruning_cascades_along_paths() {
        // Path 0(T) - 1 - 2 - 3, plus branch 1 - 4 - 5 (all non-terminal).
        let mut g = Graph::new(6);
        let e01 = g.add_edge(0, 1, 1.0);
        let e12 = g.add_edge(1, 2, 1.0);
        let _e23 = g.add_edge(2, 3, 1.0);
        let e14 = g.add_edge(1, 4, 1.0);
        let e45 = g.add_edge(4, 5, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let t = SteinerTree::new(&g, vec![e01, e12, e14, e45]);
        let p = t.pruned(&g);
        assert_eq!(p.edges, vec![e01, e12]);
        assert_eq!(p.cost, 2.0);
    }

    #[test]
    fn vertices_listed() {
        let g = star();
        let t = SteinerTree::new(&g, vec![0, 1]);
        assert_eq!(t.vertices(&g), vec![0, 1, 2]);
    }
}
