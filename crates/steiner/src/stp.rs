//! SteinLib `.stp` format I/O (the format of the PUC test set the paper's
//! §4.1 experiments run on).

use crate::graph::Graph;

/// Errors when reading `.stp` data.
#[derive(Debug)]
pub enum StpError {
    Io(std::io::Error),
    Parse(String),
}

impl std::fmt::Display for StpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StpError::Io(e) => write!(f, "io error: {e}"),
            StpError::Parse(s) => write!(f, "parse error: {s}"),
        }
    }
}
impl std::error::Error for StpError {}

impl From<std::io::Error> for StpError {
    fn from(e: std::io::Error) -> Self {
        StpError::Io(e)
    }
}

/// Parses SteinLib `.stp` text (sections `Graph` with `Nodes`/`Edges`/`E`
/// lines and `Terminals` with `T` lines). Vertices in the file are
/// 1-based; the returned graph is 0-based.
pub fn parse_stp(text: &str) -> Result<Graph, StpError> {
    let mut nodes: Option<usize> = None;
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut terminals: Vec<usize> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let Some(tag) = it.next() else { continue };
        match tag.to_ascii_lowercase().as_str() {
            "nodes" => {
                let n: usize = it
                    .next()
                    .ok_or_else(|| StpError::Parse("Nodes needs a count".into()))?
                    .parse()
                    .map_err(|e| StpError::Parse(format!("bad node count: {e}")))?;
                nodes = Some(n);
            }
            "e" | "a" => {
                let u: usize = it
                    .next()
                    .ok_or_else(|| StpError::Parse("E needs endpoints".into()))?
                    .parse()
                    .map_err(|e| StpError::Parse(format!("bad endpoint: {e}")))?;
                let v: usize = it
                    .next()
                    .ok_or_else(|| StpError::Parse("E needs endpoints".into()))?
                    .parse()
                    .map_err(|e| StpError::Parse(format!("bad endpoint: {e}")))?;
                let c: f64 = it
                    .next()
                    .ok_or_else(|| StpError::Parse("E needs a cost".into()))?
                    .parse()
                    .map_err(|e| StpError::Parse(format!("bad cost: {e}")))?;
                if u == 0 || v == 0 {
                    return Err(StpError::Parse("stp vertices are 1-based".into()));
                }
                edges.push((u - 1, v - 1, c));
            }
            "t" => {
                let t: usize = it
                    .next()
                    .ok_or_else(|| StpError::Parse("T needs a vertex".into()))?
                    .parse()
                    .map_err(|e| StpError::Parse(format!("bad terminal: {e}")))?;
                if t == 0 {
                    return Err(StpError::Parse("stp vertices are 1-based".into()));
                }
                terminals.push(t - 1);
            }
            _ => {} // headers, SECTION/END, comments, coordinates...
        }
    }
    let n = nodes.ok_or_else(|| StpError::Parse("missing Nodes line".into()))?;
    let mut g = Graph::new(n);
    for (u, v, c) in edges {
        if u >= n || v >= n {
            return Err(StpError::Parse(format!("edge endpoint out of range: {u} {v}")));
        }
        if u != v {
            g.add_edge(u, v, c);
        }
    }
    for t in terminals {
        if t >= n {
            return Err(StpError::Parse(format!("terminal out of range: {t}")));
        }
        g.set_terminal(t, true);
    }
    Ok(g)
}

/// Reads an `.stp` file from disk.
pub fn read_stp(path: &std::path::Path) -> Result<Graph, StpError> {
    let text = std::fs::read_to_string(path)?;
    parse_stp(&text)
}

/// Writes a graph in `.stp` format.
pub fn write_stp(g: &Graph, name: &str) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "33D32945 STP File, STP Format Version 1.0").unwrap();
    writeln!(s, "SECTION Comment").unwrap();
    writeln!(s, "Name    \"{name}\"").unwrap();
    writeln!(s, "Creator \"ugrs\"").unwrap();
    writeln!(s, "END\n").unwrap();
    writeln!(s, "SECTION Graph").unwrap();
    writeln!(s, "Nodes {}", g.num_nodes()).unwrap();
    writeln!(s, "Edges {}", g.num_alive_edges()).unwrap();
    for e in g.alive_edges() {
        let ed = g.edge(e);
        writeln!(s, "E {} {} {}", ed.u + 1, ed.v + 1, ed.cost).unwrap();
    }
    writeln!(s, "END\n").unwrap();
    writeln!(s, "SECTION Terminals").unwrap();
    writeln!(s, "Terminals {}", g.num_terminals()).unwrap();
    for t in g.terminals() {
        writeln!(s, "T {}", t + 1).unwrap();
    }
    writeln!(s, "END\n").unwrap();
    writeln!(s, "EOF").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"33D32945 STP File, STP Format Version 1.0
SECTION Comment
Name "tiny"
END

SECTION Graph
Nodes 3
Edges 2
E 1 2 1.5
E 2 3 2.5
END

SECTION Terminals
Terminals 2
T 1
T 3
END

EOF
"#;

    #[test]
    fn parses_sample() {
        let g = parse_stp(SAMPLE).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_alive_edges(), 2);
        assert_eq!(g.num_terminals(), 2);
        assert!(g.is_terminal(0) && g.is_terminal(2));
        assert_eq!(g.edge(0).cost, 1.5);
    }

    #[test]
    fn round_trip() {
        let g = parse_stp(SAMPLE).unwrap();
        let text = write_stp(&g, "tiny");
        let g2 = parse_stp(&text).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_alive_edges(), g.num_alive_edges());
        assert_eq!(g2.num_terminals(), g.num_terminals());
    }

    #[test]
    fn rejects_zero_based() {
        assert!(parse_stp("Nodes 2\nE 0 1 1.0\n").is_err());
    }

    #[test]
    fn rejects_missing_nodes() {
        assert!(parse_stp("E 1 2 1.0\n").is_err());
    }

    #[test]
    fn ignores_unknown_sections() {
        let text = "SECTION Comment\nRemark \"x\"\nEND\nNodes 2\nE 1 2 3\nT 1\nT 2\n";
        let g = parse_stp(text).unwrap();
        assert_eq!(g.num_alive_edges(), 1);
    }
}
