//! The SCIP-Jack-style solver facade: presolve-reduce the graph, build
//! the branch-and-cut model, solve, and map the solution back to the
//! original instance.

use crate::graph::Graph;
use crate::heur::{local_search, real_weights, tm_best};
use crate::plugins::{build_model, register_plugins, SpgData};
use crate::reduce::{reduce, ReduceParams, ReduceStats};
use crate::tree::SteinerTree;
use std::sync::Arc;
use ugrs_cip::{ControlHooks, NoHooks, Settings, SolveStatus, Solver as CipSolver};

/// Options of a Steiner solve.
#[derive(Clone, Debug)]
pub struct SteinerOptions {
    /// Graph-level presolve reductions.
    pub reduce: ReduceParams,
    /// Settings of the underlying CIP solver.
    pub settings: Settings,
    /// Apply dual-ascent reductions inside the tree (the paper's
    /// extended-reductions-deep-in-the-tree effect).
    pub in_tree_reductions: bool,
    /// Skip graph reductions entirely (for ablation benches).
    pub skip_reductions: bool,
}

impl Default for SteinerOptions {
    fn default() -> Self {
        SteinerOptions {
            reduce: ReduceParams::default(),
            settings: Settings::default(),
            in_tree_reductions: true,
            skip_reductions: false,
        }
    }
}

/// Result of a Steiner solve, expressed on the *original* instance.
#[derive(Clone, Debug)]
pub struct SteinerResult {
    pub status: SolveStatus,
    /// Optimal/best tree in original edge ids (None if none found).
    pub tree: Option<SteinerTree>,
    /// Its total cost (including reduction-fixed edges).
    pub best_cost: Option<f64>,
    /// Proven lower bound on the optimum.
    pub dual_bound: f64,
    pub reduce_stats: ReduceStats,
    pub cip_stats: Option<ugrs_cip::Statistics>,
}

/// What [`SteinerSolver::prepare`] yields when presolve does not finish
/// the job: the CIP model, the plugin data, the reduced graph, and the
/// reduction statistics.
pub type PreparedModel = (ugrs_cip::Model, Arc<SpgData>, Graph, ReduceStats);

/// High-level solver: owns the original instance and the reduced working
/// copy.
pub struct SteinerSolver {
    original: Graph,
    options: SteinerOptions,
}

impl SteinerSolver {
    pub fn new(graph: Graph, options: SteinerOptions) -> Self {
        SteinerSolver { original: graph, options }
    }

    pub fn original(&self) -> &Graph {
        &self.original
    }

    /// Presolves the graph and builds the CIP model + plugin data, for
    /// callers that drive the CIP solver themselves (the UG glue).
    /// The `Err` case means reductions solved the instance outright.
    pub fn prepare(&self) -> Result<PreparedModel, Box<(Graph, ReduceStats)>> {
        let mut g = self.original.clone();
        let stats = if self.options.skip_reductions {
            ReduceStats::default()
        } else {
            reduce(&mut g, &self.options.reduce)
        };
        if g.num_terminals() < 2 {
            return Err(Box::new((g, stats)));
        }
        let (model, data) = build_model(&g);
        Ok((model, data, g, stats))
    }

    /// Full solve with no external control.
    pub fn solve(&mut self) -> SteinerResult {
        self.solve_hooked(&mut NoHooks)
    }

    /// Solve with UG control hooks.
    pub fn solve_hooked(&mut self, hooks: &mut dyn ControlHooks) -> SteinerResult {
        match self.prepare() {
            Err(presolved) => {
                let (g, stats) = *presolved;
                // Reductions solved the instance: the fixed edges are the
                // solution.
                let tree = SteinerTree::new(&self.original, g.fixed_edges.clone());
                let cost = tree.cost;
                debug_assert!((cost - g.fixed_cost).abs() < 1e-6);
                let valid = tree.is_valid(&self.original);
                SteinerResult {
                    status: if valid { SolveStatus::Optimal } else { SolveStatus::Infeasible },
                    best_cost: valid.then_some(cost),
                    tree: valid.then_some(tree),
                    dual_bound: cost,
                    reduce_stats: stats,
                    cip_stats: None,
                }
            }
            Ok((model, data, g, stats)) => {
                let mut solver = CipSolver::new(model, self.options.settings.clone());
                register_plugins(&mut solver, data.clone(), self.options.in_tree_reductions);
                // Seed with a TM + local search solution (the paper: dual
                // ascent / heuristics provide the initial incumbent).
                if let Some(t0) = tm_best(&g, 4, &real_weights(&g)) {
                    let t0 = local_search(&g, &t0, 3);
                    if let Some(x) = data.tree_to_assignment(solver.model(), &t0) {
                        solver.inject_solution(x);
                    }
                }
                let res = solver.solve(hooks);
                let (tree, best_cost) = match res.best_x {
                    Some(ref x) => {
                        let reduced_edges = data.assignment_to_edges(x);
                        // Expand reduced edges to original ids and add the
                        // reduction-fixed edges.
                        let mut orig: Vec<u32> = g.fixed_edges.clone();
                        for e in reduced_edges {
                            orig.extend(g.expand_edge(e));
                        }
                        let t = SteinerTree::new(&self.original, orig).pruned(&self.original);
                        let c = t.cost;
                        if t.is_valid(&self.original) {
                            (Some(t), Some(c))
                        } else {
                            (None, None)
                        }
                    }
                    None => (None, None),
                };
                SteinerResult {
                    status: res.status,
                    tree,
                    best_cost,
                    dual_bound: res.dual_bound + g.fixed_cost,
                    reduce_stats: stats,
                    cip_stats: Some(res.stats),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{bipartite, code_covering, hypercube, CostScheme};

    #[test]
    fn path_instance_solved_by_reduction() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.set_terminal(0, true);
        g.set_terminal(3, true);
        let mut s = SteinerSolver::new(g, SteinerOptions::default());
        let res = s.solve();
        assert_eq!(res.status, SolveStatus::Optimal);
        assert_eq!(res.best_cost, Some(6.0));
        assert!(res.cip_stats.is_none(), "should not need B&B");
        let t = res.tree.unwrap();
        assert!(t.is_valid(s.original()));
    }

    #[test]
    fn hypercube_instance_end_to_end() {
        let g = hypercube(3, CostScheme::Unit, 1);
        let mut s = SteinerSolver::new(g.clone(), SteinerOptions::default());
        let res = s.solve();
        assert_eq!(res.status, SolveStatus::Optimal);
        let t = res.tree.unwrap();
        assert!(t.is_valid(&g));
        assert!((t.cost - res.best_cost.unwrap()).abs() < 1e-9);
        // hc3 unit: 4 even-parity terminals; connecting them costs ≥ 5 is
        // impossible to assert exactly here — instead check bound closure.
        assert!((res.dual_bound - res.best_cost.unwrap()).abs() < 1e-6);
    }

    #[test]
    fn with_and_without_reductions_agree() {
        let g = code_covering(2, 3, 4, CostScheme::Perturbed, 13);
        let mut with = SteinerSolver::new(g.clone(), SteinerOptions::default());
        let r1 = with.solve();
        let mut without =
            SteinerSolver::new(g, SteinerOptions { skip_reductions: true, ..Default::default() });
        let r2 = without.solve();
        assert_eq!(r1.status, SolveStatus::Optimal);
        assert_eq!(r2.status, SolveStatus::Optimal);
        let (c1, c2) = (r1.best_cost.unwrap(), r2.best_cost.unwrap());
        assert!((c1 - c2).abs() < 1e-6, "reduced {c1} vs unreduced {c2}");
    }

    #[test]
    fn bipartite_instance_end_to_end() {
        let g = bipartite(4, 6, 2, CostScheme::Unit, 3);
        let mut s = SteinerSolver::new(g.clone(), SteinerOptions::default());
        let res = s.solve();
        assert_eq!(res.status, SolveStatus::Optimal);
        let t = res.tree.unwrap();
        assert!(t.is_valid(&g));
    }
}
