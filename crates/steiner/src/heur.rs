//! Primal heuristics of the SCIP-Jack kind (§3.1): the repeated
//! shortest-path **TM heuristic** (Takahashi–Matsuyama) with optional
//! edge-weight biasing (used LP-guided inside branch-and-cut), MST
//! pruning, and a vertex insertion/elimination local search.

use crate::graph::Graph;
use crate::tree::SteinerTree;
use crate::util::{mst_on_subset, UnionFind};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Hi(f64, u32);
impl Eq for Hi {}
impl PartialOrd for Hi {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Hi {
    fn cmp(&self, o: &Self) -> Ordering {
        o.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal).then(o.1.cmp(&self.1))
    }
}

/// Multi-source Dijkstra with per-edge weights; returns (dist, pred_edge).
fn dijkstra_from_set(
    g: &Graph,
    sources: impl Iterator<Item = usize>,
    weights: &[f64],
) -> (Vec<f64>, Vec<u32>) {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    for s in sources {
        dist[s] = 0.0;
        heap.push(Hi(0.0, s as u32));
    }
    while let Some(Hi(d, v)) = heap.pop() {
        let v = v as usize;
        if d > dist[v] {
            continue;
        }
        for e in g.incident(v) {
            let w = g.edge(e).other(v as u32) as usize;
            let nd = d + weights[e as usize];
            if nd < dist[w] - 1e-15 {
                dist[w] = nd;
                pred[w] = e;
                heap.push(Hi(nd, w as u32));
            }
        }
    }
    (dist, pred)
}

/// Builds a pruned Steiner tree spanning the terminals using only the
/// vertices in `in_set` (must contain all terminals). Returns `None`
/// when the terminals are not connected within the subset.
pub fn tree_from_vertices(g: &Graph, in_set: &[bool]) -> Option<SteinerTree> {
    let forest = mst_on_subset(g, in_set);
    // Check terminal connectivity within the forest.
    let mut uf = UnionFind::new(g.num_nodes());
    for &e in &forest {
        let ed = g.edge(e);
        uf.union(ed.u as usize, ed.v as usize);
    }
    let mut terms = g.terminals();
    if let Some(first) = terms.next() {
        for t in terms {
            if !uf.same(first, t) {
                return None;
            }
        }
    }
    Some(SteinerTree::new(g, forest).pruned(g))
}

/// The TM (repeated shortest path) construction heuristic from a given
/// start terminal, walking shortest paths under `weights` but pricing the
/// final tree with real costs. Returns `None` if some terminal is
/// unreachable.
pub fn tm_from(g: &Graph, start: usize, weights: &[f64]) -> Option<SteinerTree> {
    let n = g.num_nodes();
    let mut in_tree = vec![false; n];
    in_tree[start] = true;
    let mut remaining: usize = g.terminals().filter(|&t| t != start).count();
    while remaining > 0 {
        let (dist, pred) = dijkstra_from_set(g, (0..n).filter(|&v| in_tree[v]), weights);
        // Nearest unconnected terminal.
        let t = g
            .terminals()
            .filter(|&t| !in_tree[t])
            .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).unwrap_or(Ordering::Equal))?;
        if !dist[t].is_finite() {
            return None;
        }
        // Walk the path back into the tree.
        let mut v = t;
        while !in_tree[v] {
            in_tree[v] = true;
            let e = pred[v];
            if e == u32::MAX {
                break;
            }
            v = g.edge(e).other(v as u32) as usize;
        }
        remaining -= 1;
    }
    tree_from_vertices(g, &in_tree)
}

/// Runs TM from several start terminals (up to `starts`) and returns the
/// best tree found, if any.
pub fn tm_best(g: &Graph, starts: usize, weights: &[f64]) -> Option<SteinerTree> {
    let mut best: Option<SteinerTree> = None;
    for (i, t) in g.terminals().enumerate() {
        if i >= starts {
            break;
        }
        if let Some(tree) = tm_from(g, t, weights) {
            if best.as_ref().is_none_or(|b| tree.cost < b.cost) {
                best = Some(tree);
            }
        }
    }
    best
}

/// Unbiased real-cost weight vector for `g`.
pub fn real_weights(g: &Graph) -> Vec<f64> {
    g.edges.iter().map(|e| e.cost).collect()
}

/// LP-biased weights: `cost · (1 − y_e)` with `y_e` the (undirected) LP
/// value of the edge — paths the LP likes become cheap, which is how
/// SCIP-Jack guides TM inside branch-and-cut.
pub fn lp_biased_weights(g: &Graph, edge_lp: &[f64]) -> Vec<f64> {
    g.edges
        .iter()
        .enumerate()
        .map(|(i, e)| {
            e.cost * (1.0 - edge_lp.get(i).copied().unwrap_or(0.0).clamp(0.0, 1.0)) + 1e-9
        })
        .collect()
}

/// Vertex insertion / elimination local search: repeatedly tries to add a
/// promising non-tree vertex or drop a tree Steiner vertex, rebuilding
/// the MST-pruned tree, and keeps strict improvements. `max_passes`
/// bounds the outer loop.
pub fn local_search(g: &Graph, tree: &SteinerTree, max_passes: usize) -> SteinerTree {
    let n = g.num_nodes();
    let mut best = tree.clone();
    for _ in 0..max_passes {
        let mut improved = false;
        let mut in_set = vec![false; n];
        for v in best.vertices(g) {
            in_set[v] = true;
        }
        for t in g.terminals() {
            in_set[t] = true;
        }
        // Insertion candidates: alive non-tree vertices with ≥ 2 tree
        // neighbours.
        for v in g.alive_nodes() {
            if in_set[v] {
                continue;
            }
            let nbrs =
                g.incident(v).filter(|&e| in_set[g.edge(e).other(v as u32) as usize]).count();
            if nbrs < 2 {
                continue;
            }
            in_set[v] = true;
            if let Some(cand) = tree_from_vertices(g, &in_set) {
                if cand.cost < best.cost - 1e-9 {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            in_set[v] = false;
        }
        if improved {
            continue;
        }
        // Elimination candidates: non-terminal tree vertices.
        for v in best.vertices(g) {
            if g.is_terminal(v) {
                continue;
            }
            in_set[v] = false;
            if let Some(cand) = tree_from_vertices(g, &in_set) {
                if cand.cost < best.cost - 1e-9 {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            in_set[v] = true;
        }
        if !improved {
            break;
        }
    }
    best
}

/// A key path of a Steiner tree: a maximal tree path whose endpoints are
/// *key vertices* (terminals or tree vertices of degree ≥ 3) and whose
/// interior vertices are non-terminal degree-2 Steiner vertices.
#[derive(Clone, Debug)]
struct KeyPath {
    /// Key-vertex endpoints.
    ends: (usize, usize),
    /// Tree edges along the path, in walk order.
    edges: Vec<u32>,
    /// Interior (degree-2, non-terminal) vertices.
    interior: Vec<usize>,
}

/// Tree adjacency: incident tree-edge ids per vertex.
fn tree_adjacency(g: &Graph, tree: &SteinerTree) -> Vec<Vec<u32>> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); g.num_nodes()];
    for &e in &tree.edges {
        let ed = g.edge(e);
        adj[ed.u as usize].push(e);
        adj[ed.v as usize].push(e);
    }
    adj
}

/// Decomposes `tree` into its key paths.
fn key_paths(g: &Graph, tree: &SteinerTree) -> Vec<KeyPath> {
    let adj = tree_adjacency(g, tree);
    let is_key = |v: usize| adj[v].len() >= 3 || g.is_terminal(v);
    let mut seen_edge = vec![false; g.edges.len()];
    let mut paths = Vec::new();
    for v in 0..g.num_nodes() {
        if adj[v].is_empty() || !is_key(v) {
            continue;
        }
        for &start in &adj[v] {
            if seen_edge[start as usize] {
                continue;
            }
            // Walk from the key vertex through degree-2 Steiner vertices
            // until the next key vertex.
            let mut edges = vec![start];
            let mut interior = Vec::new();
            seen_edge[start as usize] = true;
            let mut cur = g.edge(start).other(v as u32) as usize;
            while !is_key(cur) {
                interior.push(cur);
                // `cur` has tree degree 2 (a pruned tree has no Steiner
                // leaves): continue over the edge we did not arrive by.
                let came = *edges.last().unwrap();
                let Some(&next) = adj[cur].iter().find(|&&e| e != came) else {
                    break;
                };
                seen_edge[next as usize] = true;
                edges.push(next);
                cur = g.edge(next).other(cur as u32) as usize;
            }
            paths.push(KeyPath { ends: (v, cur), edges, interior });
        }
    }
    paths
}

/// Key-path exchange: removes one key path, splitting the tree in two,
/// and reconnects the parts with a shortest path. Returns an improving
/// tree if one was found.
fn try_key_path_exchange(g: &Graph, tree: &SteinerTree, path: &KeyPath) -> Option<SteinerTree> {
    let n = g.num_nodes();
    let removed: Vec<bool> = {
        let mut r = vec![false; g.edges.len()];
        for &e in &path.edges {
            r[e as usize] = true;
        }
        r
    };
    // Components of the remaining tree edges.
    let mut uf = UnionFind::new(n);
    for &e in &tree.edges {
        if !removed[e as usize] {
            let ed = g.edge(e);
            uf.union(ed.u as usize, ed.v as usize);
        }
    }
    let (a, b) = path.ends;
    if uf.same(a, b) {
        return None; // degenerate (parallel path survived)
    }
    let interior: Vec<bool> = {
        let mut s = vec![false; n];
        for &v in &path.interior {
            s[v] = true;
        }
        s
    };
    // Side-A vertex set (tree vertices connected to end `a`, interiors
    // dropped), used as multi-source for the reconnect search.
    let mut in_a = vec![false; n];
    let mut in_b = vec![false; n];
    for v in tree.vertices(g) {
        if interior[v] {
            continue;
        }
        if uf.same(v, a) {
            in_a[v] = true;
        } else if uf.same(v, b) {
            in_b[v] = true;
        }
    }
    let weights = real_weights(g);
    let (dist, pred) = dijkstra_from_set(g, (0..n).filter(|&v| in_a[v]), &weights);
    // Cheapest reconnection endpoint on side B.
    let target = (0..n)
        .filter(|&v| in_b[v] && dist[v].is_finite())
        .min_by(|&x, &y| dist[x].partial_cmp(&dist[y]).unwrap_or(Ordering::Equal))?;
    let mut in_set = vec![false; n];
    for v in 0..n {
        in_set[v] = in_a[v] || in_b[v];
    }
    let mut v = target;
    while !in_a[v] {
        in_set[v] = true;
        let e = pred[v];
        if e == u32::MAX {
            break;
        }
        v = g.edge(e).other(v as u32) as usize;
    }
    let cand = tree_from_vertices(g, &in_set)?;
    (cand.cost < tree.cost - 1e-9).then_some(cand)
}

/// Key-vertex elimination: removes a non-terminal key vertex together
/// with its incident key paths and reconnects the remaining fragments
/// TM-style (repeated shortest paths between terminal components).
fn try_key_vertex_elimination(g: &Graph, tree: &SteinerTree, v: usize) -> Option<SteinerTree> {
    let n = g.num_nodes();
    let mut in_set = vec![false; n];
    for u in tree.vertices(g) {
        in_set[u] = true;
    }
    in_set[v] = false;
    for p in key_paths(g, tree) {
        if p.ends.0 == v || p.ends.1 == v {
            for &u in &p.interior {
                in_set[u] = false;
            }
        }
    }
    for t in g.terminals() {
        in_set[t] = true;
    }
    let weights = real_weights(g);
    // Reconnect until the terminals are spanned again (each round links
    // at least one more terminal component, so this terminates).
    for _ in 0..g.num_terminals().max(1) {
        if let Some(cand) = tree_from_vertices(g, &in_set) {
            return (cand.cost < tree.cost - 1e-9).then_some(cand);
        }
        let mut uf = UnionFind::new(n);
        for e in g.alive_edges() {
            let ed = g.edge(e);
            if in_set[ed.u as usize] && in_set[ed.v as usize] {
                uf.union(ed.u as usize, ed.v as usize);
            }
        }
        let t0 = g.terminals().next()?;
        let sources: Vec<usize> = (0..n).filter(|&u| in_set[u] && uf.same(u, t0)).collect();
        let source_set: Vec<bool> = {
            let mut s = vec![false; n];
            for &u in &sources {
                s[u] = true;
            }
            s
        };
        let (dist, pred) = dijkstra_from_set(g, sources.into_iter(), &weights);
        let t = g
            .terminals()
            .filter(|&t| !source_set[t])
            .min_by(|&x, &y| dist[x].partial_cmp(&dist[y]).unwrap_or(Ordering::Equal))?;
        if !dist[t].is_finite() {
            return None;
        }
        let mut u = t;
        while !source_set[u] {
            in_set[u] = true;
            let e = pred[u];
            if e == u32::MAX {
                break;
            }
            u = g.edge(e).other(u as u32) as usize;
        }
    }
    None
}

/// Uchoa–Werneck-style key-vertex local search: alternates **key-path
/// exchange** (replace one key path by a cheapest reconnection of the two
/// tree halves) and **key-vertex elimination** (drop a non-terminal key
/// vertex with its incident key paths and re-span the terminals),
/// keeping strict improvements. Strictly stronger than the single-vertex
/// insertion/elimination moves of [`local_search`] because whole paths
/// move at once. Deterministic; `max_passes` bounds the outer loop.
pub fn key_vertex_local_search(g: &Graph, tree: &SteinerTree, max_passes: usize) -> SteinerTree {
    let mut best = tree.clone();
    for _ in 0..max_passes {
        let mut improved = false;
        for p in key_paths(g, &best) {
            if let Some(cand) = try_key_path_exchange(g, &best, &p) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            let adj = tree_adjacency(g, &best);
            let key_vertices: Vec<usize> =
                (0..g.num_nodes()).filter(|&v| adj[v].len() >= 3 && !g.is_terminal(v)).collect();
            for v in key_vertices {
                if let Some(cand) = try_key_vertex_elimination(g, &best, v) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            // Key moves only rewire or shrink the key-vertex set; a pass
            // of single-vertex insertion/elimination can grow it, so fall
            // back to it when key moves stall. This makes the combined
            // search a strict superset of [`local_search`].
            let cand = local_search(g, &best, 1);
            if cand.cost < best.cost - 1e-9 {
                best = cand;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 6-vertex instance where the optimum uses a Steiner vertex.
    fn steiner_instance() -> Graph {
        // Terminals 0, 1, 2 in a triangle of cost-4 edges; center 3
        // connected to each terminal with cost 2 → star via 3 costs 6 < 8.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 4.0);
        g.add_edge(1, 2, 4.0);
        g.add_edge(0, 2, 4.0);
        g.add_edge(0, 3, 2.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(2, 3, 2.0);
        g.set_terminal(0, true);
        g.set_terminal(1, true);
        g.set_terminal(2, true);
        g
    }

    #[test]
    fn tm_finds_a_valid_tree() {
        let g = steiner_instance();
        let w = real_weights(&g);
        let t = tm_from(&g, 0, &w).unwrap();
        assert!(t.is_valid(&g));
        assert!(t.cost <= 8.0 + 1e-9);
    }

    #[test]
    fn tm_best_beats_single_start_or_ties() {
        let g = steiner_instance();
        let w = real_weights(&g);
        let single = tm_from(&g, 0, &w).unwrap();
        let multi = tm_best(&g, 3, &w).unwrap();
        assert!(multi.cost <= single.cost + 1e-9);
        assert!(multi.is_valid(&g));
    }

    #[test]
    fn local_search_reaches_star_optimum() {
        let g = steiner_instance();
        let w = real_weights(&g);
        let start = tm_from(&g, 0, &w).unwrap();
        let improved = local_search(&g, &start, 10);
        assert!(improved.is_valid(&g));
        assert!((improved.cost - 6.0).abs() < 1e-9, "cost = {}", improved.cost);
    }

    #[test]
    fn tm_detects_disconnected() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let w = real_weights(&g);
        assert!(tm_from(&g, 0, &w).is_none());
    }

    #[test]
    fn lp_bias_prefers_lp_supported_edges() {
        let g = steiner_instance();
        // LP fully supports the star edges (ids 3, 4, 5).
        let mut lp = vec![0.0; 6];
        lp[3] = 1.0;
        lp[4] = 1.0;
        lp[5] = 1.0;
        let w = lp_biased_weights(&g, &lp);
        let t = tm_from(&g, 0, &w).unwrap();
        assert!((t.cost - 6.0).abs() < 1e-9);
    }

    /// Two terminals, an expensive 2-edge path and a cheap 3-edge path.
    /// Single-vertex insertion cannot move between them (each interior
    /// cheap-path vertex has only one tree neighbour), but a key-path
    /// exchange swaps the whole path at once.
    fn two_path_instance() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 2.5); // expensive path 0-1-2, cost 5
        g.add_edge(1, 2, 2.5);
        g.add_edge(0, 3, 1.0); // cheap path 0-3-4-2, cost 3
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 2, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        g
    }

    #[test]
    fn key_path_exchange_escapes_vertex_insertion_minimum() {
        let g = two_path_instance();
        let start = SteinerTree::new(&g, vec![0, 1]);
        assert!((start.cost - 5.0).abs() < 1e-9);
        // The single-vertex moves are stuck: 3 and 4 each have one tree
        // neighbour, so insertion never fires and cost 5 is a local
        // optimum for `local_search`.
        let stuck = local_search(&g, &start, 10);
        assert!((stuck.cost - 5.0).abs() < 1e-9, "vertex moves should be stuck at 5");
        // The key-path exchange replaces the whole expensive path.
        let improved = key_vertex_local_search(&g, &start, 10);
        assert!(improved.is_valid(&g));
        assert!((improved.cost - 3.0).abs() < 1e-9, "cost = {}", improved.cost);
    }

    #[test]
    fn key_vertex_elimination_drops_expensive_center() {
        // Star through center 3 costs 6; the terminal triangle costs
        // 1.9 + 1.9 = 3.8 — eliminating the key vertex finds it.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.9);
        g.add_edge(1, 2, 1.9);
        g.add_edge(0, 2, 1.9);
        g.add_edge(0, 3, 2.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(2, 3, 2.0);
        for t in 0..3 {
            g.set_terminal(t, true);
        }
        let star = SteinerTree::new(&g, vec![3, 4, 5]);
        let improved = key_vertex_local_search(&g, &star, 10);
        assert!(improved.is_valid(&g));
        assert!((improved.cost - 3.8).abs() < 1e-9, "cost = {}", improved.cost);
    }

    #[test]
    fn key_vertex_search_reaches_star_optimum() {
        let g = steiner_instance();
        let start = SteinerTree::new(&g, vec![0, 1]); // 0-1, 1-2: cost 8
        let improved = key_vertex_local_search(&g, &start, 10);
        assert!(improved.is_valid(&g));
        assert!((improved.cost - 6.0).abs() < 1e-9, "cost = {}", improved.cost);
    }

    #[test]
    fn key_vertex_search_is_deterministic_and_never_worsens() {
        let g = crate::gen::hypercube(4, crate::gen::CostScheme::Perturbed, 7);
        let w = real_weights(&g);
        let start = tm_best(&g, 3, &w).unwrap();
        let a = key_vertex_local_search(&g, &start, 5);
        let b = key_vertex_local_search(&g, &start, 5);
        assert!(a.is_valid(&g));
        assert!(a.cost <= start.cost + 1e-9);
        assert_eq!(a.edges, b.edges, "same input must give the same tree");
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn tree_from_vertices_requires_connectivity() {
        let g = steiner_instance();
        let mut in_set = vec![false; 4];
        in_set[0] = true;
        in_set[1] = true;
        in_set[2] = true; // terminals only: triangle connects them
        let t = tree_from_vertices(&g, &in_set).unwrap();
        assert!((t.cost - 8.0).abs() < 1e-9);
    }
}
