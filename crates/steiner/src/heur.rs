//! Primal heuristics of the SCIP-Jack kind (§3.1): the repeated
//! shortest-path **TM heuristic** (Takahashi–Matsuyama) with optional
//! edge-weight biasing (used LP-guided inside branch-and-cut), MST
//! pruning, and a vertex insertion/elimination local search.

use crate::graph::Graph;
use crate::tree::SteinerTree;
use crate::util::{mst_on_subset, UnionFind};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Hi(f64, u32);
impl Eq for Hi {}
impl PartialOrd for Hi {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Hi {
    fn cmp(&self, o: &Self) -> Ordering {
        o.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal).then(o.1.cmp(&self.1))
    }
}

/// Multi-source Dijkstra with per-edge weights; returns (dist, pred_edge).
fn dijkstra_from_set(
    g: &Graph,
    sources: impl Iterator<Item = usize>,
    weights: &[f64],
) -> (Vec<f64>, Vec<u32>) {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    for s in sources {
        dist[s] = 0.0;
        heap.push(Hi(0.0, s as u32));
    }
    while let Some(Hi(d, v)) = heap.pop() {
        let v = v as usize;
        if d > dist[v] {
            continue;
        }
        for e in g.incident(v) {
            let w = g.edge(e).other(v as u32) as usize;
            let nd = d + weights[e as usize];
            if nd < dist[w] - 1e-15 {
                dist[w] = nd;
                pred[w] = e;
                heap.push(Hi(nd, w as u32));
            }
        }
    }
    (dist, pred)
}

/// Builds a pruned Steiner tree spanning the terminals using only the
/// vertices in `in_set` (must contain all terminals). Returns `None`
/// when the terminals are not connected within the subset.
pub fn tree_from_vertices(g: &Graph, in_set: &[bool]) -> Option<SteinerTree> {
    let forest = mst_on_subset(g, in_set);
    // Check terminal connectivity within the forest.
    let mut uf = UnionFind::new(g.num_nodes());
    for &e in &forest {
        let ed = g.edge(e);
        uf.union(ed.u as usize, ed.v as usize);
    }
    let mut terms = g.terminals();
    if let Some(first) = terms.next() {
        for t in terms {
            if !uf.same(first, t) {
                return None;
            }
        }
    }
    Some(SteinerTree::new(g, forest).pruned(g))
}

/// The TM (repeated shortest path) construction heuristic from a given
/// start terminal, walking shortest paths under `weights` but pricing the
/// final tree with real costs. Returns `None` if some terminal is
/// unreachable.
pub fn tm_from(g: &Graph, start: usize, weights: &[f64]) -> Option<SteinerTree> {
    let n = g.num_nodes();
    let mut in_tree = vec![false; n];
    in_tree[start] = true;
    let mut remaining: usize = g.terminals().filter(|&t| t != start).count();
    while remaining > 0 {
        let (dist, pred) = dijkstra_from_set(g, (0..n).filter(|&v| in_tree[v]), weights);
        // Nearest unconnected terminal.
        let t = g
            .terminals()
            .filter(|&t| !in_tree[t])
            .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).unwrap_or(Ordering::Equal))?;
        if !dist[t].is_finite() {
            return None;
        }
        // Walk the path back into the tree.
        let mut v = t;
        while !in_tree[v] {
            in_tree[v] = true;
            let e = pred[v];
            if e == u32::MAX {
                break;
            }
            v = g.edge(e).other(v as u32) as usize;
        }
        remaining -= 1;
    }
    tree_from_vertices(g, &in_tree)
}

/// Runs TM from several start terminals (up to `starts`) and returns the
/// best tree found, if any.
pub fn tm_best(g: &Graph, starts: usize, weights: &[f64]) -> Option<SteinerTree> {
    let mut best: Option<SteinerTree> = None;
    for (i, t) in g.terminals().enumerate() {
        if i >= starts {
            break;
        }
        if let Some(tree) = tm_from(g, t, weights) {
            if best.as_ref().is_none_or(|b| tree.cost < b.cost) {
                best = Some(tree);
            }
        }
    }
    best
}

/// Unbiased real-cost weight vector for `g`.
pub fn real_weights(g: &Graph) -> Vec<f64> {
    g.edges.iter().map(|e| e.cost).collect()
}

/// LP-biased weights: `cost · (1 − y_e)` with `y_e` the (undirected) LP
/// value of the edge — paths the LP likes become cheap, which is how
/// SCIP-Jack guides TM inside branch-and-cut.
pub fn lp_biased_weights(g: &Graph, edge_lp: &[f64]) -> Vec<f64> {
    g.edges
        .iter()
        .enumerate()
        .map(|(i, e)| {
            e.cost * (1.0 - edge_lp.get(i).copied().unwrap_or(0.0).clamp(0.0, 1.0)) + 1e-9
        })
        .collect()
}

/// Vertex insertion / elimination local search: repeatedly tries to add a
/// promising non-tree vertex or drop a tree Steiner vertex, rebuilding
/// the MST-pruned tree, and keeps strict improvements. `max_passes`
/// bounds the outer loop.
pub fn local_search(g: &Graph, tree: &SteinerTree, max_passes: usize) -> SteinerTree {
    let n = g.num_nodes();
    let mut best = tree.clone();
    for _ in 0..max_passes {
        let mut improved = false;
        let mut in_set = vec![false; n];
        for v in best.vertices(g) {
            in_set[v] = true;
        }
        for t in g.terminals() {
            in_set[t] = true;
        }
        // Insertion candidates: alive non-tree vertices with ≥ 2 tree
        // neighbours.
        for v in g.alive_nodes() {
            if in_set[v] {
                continue;
            }
            let nbrs =
                g.incident(v).filter(|&e| in_set[g.edge(e).other(v as u32) as usize]).count();
            if nbrs < 2 {
                continue;
            }
            in_set[v] = true;
            if let Some(cand) = tree_from_vertices(g, &in_set) {
                if cand.cost < best.cost - 1e-9 {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            in_set[v] = false;
        }
        if improved {
            continue;
        }
        // Elimination candidates: non-terminal tree vertices.
        for v in best.vertices(g) {
            if g.is_terminal(v) {
                continue;
            }
            in_set[v] = false;
            if let Some(cand) = tree_from_vertices(g, &in_set) {
                if cand.cost < best.cost - 1e-9 {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            in_set[v] = true;
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 6-vertex instance where the optimum uses a Steiner vertex.
    fn steiner_instance() -> Graph {
        // Terminals 0, 1, 2 in a triangle of cost-4 edges; center 3
        // connected to each terminal with cost 2 → star via 3 costs 6 < 8.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 4.0);
        g.add_edge(1, 2, 4.0);
        g.add_edge(0, 2, 4.0);
        g.add_edge(0, 3, 2.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(2, 3, 2.0);
        g.set_terminal(0, true);
        g.set_terminal(1, true);
        g.set_terminal(2, true);
        g
    }

    #[test]
    fn tm_finds_a_valid_tree() {
        let g = steiner_instance();
        let w = real_weights(&g);
        let t = tm_from(&g, 0, &w).unwrap();
        assert!(t.is_valid(&g));
        assert!(t.cost <= 8.0 + 1e-9);
    }

    #[test]
    fn tm_best_beats_single_start_or_ties() {
        let g = steiner_instance();
        let w = real_weights(&g);
        let single = tm_from(&g, 0, &w).unwrap();
        let multi = tm_best(&g, 3, &w).unwrap();
        assert!(multi.cost <= single.cost + 1e-9);
        assert!(multi.is_valid(&g));
    }

    #[test]
    fn local_search_reaches_star_optimum() {
        let g = steiner_instance();
        let w = real_weights(&g);
        let start = tm_from(&g, 0, &w).unwrap();
        let improved = local_search(&g, &start, 10);
        assert!(improved.is_valid(&g));
        assert!((improved.cost - 6.0).abs() < 1e-9, "cost = {}", improved.cost);
    }

    #[test]
    fn tm_detects_disconnected() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let w = real_weights(&g);
        assert!(tm_from(&g, 0, &w).is_none());
    }

    #[test]
    fn lp_bias_prefers_lp_supported_edges() {
        let g = steiner_instance();
        // LP fully supports the star edges (ids 3, 4, 5).
        let mut lp = vec![0.0; 6];
        lp[3] = 1.0;
        lp[4] = 1.0;
        lp[5] = 1.0;
        let w = lp_biased_weights(&g, &lp);
        let t = tm_from(&g, 0, &w).unwrap();
        assert!((t.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn tree_from_vertices_requires_connectivity() {
        let g = steiner_instance();
        let mut in_set = vec![false; 4];
        in_set[0] = true;
        in_set[1] = true;
        in_set[2] = true; // terminals only: triangle connects them
        let t = tree_from_vertices(&g, &in_set).unwrap();
        assert!((t.cost - 8.0).abs() < 1e-9);
    }
}
