//! Small algorithmic utilities shared by the Steiner components:
//! union–find, Dijkstra, Voronoi regions and minimum spanning trees.

use crate::graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Union–find with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Unites the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        true
    }

    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, o: &Self) -> Ordering {
        // Min-heap via reversed compare.
        o.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal).then(o.node.cmp(&self.node))
    }
}

/// Dijkstra from `source` over the alive graph. Returns `(dist, pred_edge)`
/// where `pred_edge[v]` is the edge id used to reach `v` (u32::MAX at the
/// source / unreachable vertices, with `dist = ∞` for the latter).
pub fn dijkstra(g: &Graph, source: usize) -> (Vec<f64>, Vec<u32>) {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapItem { dist: 0.0, node: source as u32 });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        let v = node as usize;
        if d > dist[v] {
            continue;
        }
        for e in g.incident(v) {
            let edge = g.edge(e);
            let w = edge.other(node) as usize;
            let nd = d + edge.cost;
            if nd < dist[w] - 1e-15 {
                dist[w] = nd;
                pred[w] = e;
                heap.push(HeapItem { dist: nd, node: w as u32 });
            }
        }
    }
    (dist, pred)
}

/// Voronoi decomposition w.r.t. the terminals: for every vertex, the
/// nearest terminal (`base`), the distance to it, and the predecessor
/// edge on that shortest path. Used by bound-based reductions.
pub struct Voronoi {
    pub base: Vec<u32>,
    pub dist: Vec<f64>,
    pub pred: Vec<u32>,
}

pub fn voronoi(g: &Graph) -> Voronoi {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut base = vec![u32::MAX; n];
    let mut pred = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    for t in g.terminals() {
        dist[t] = 0.0;
        base[t] = t as u32;
        heap.push(HeapItem { dist: 0.0, node: t as u32 });
    }
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        let v = node as usize;
        if d > dist[v] {
            continue;
        }
        for e in g.incident(v) {
            let edge = g.edge(e);
            let w = edge.other(node) as usize;
            let nd = d + edge.cost;
            if nd < dist[w] - 1e-15 {
                dist[w] = nd;
                base[w] = base[v];
                pred[w] = e;
                heap.push(HeapItem { dist: nd, node: w as u32 });
            }
        }
    }
    Voronoi { base, dist, pred }
}

/// Kruskal MST over the subgraph induced by `in_set` (alive vertices with
/// `in_set[v] = true`). Returns edge ids of the forest (an MST per
/// connected component).
pub fn mst_on_subset(g: &Graph, in_set: &[bool]) -> Vec<u32> {
    let mut edges: Vec<u32> = g
        .alive_edges()
        .filter(|&e| {
            let ed = g.edge(e);
            in_set[ed.u as usize] && in_set[ed.v as usize]
        })
        .collect();
    edges.sort_by(|&a, &b| g.edge(a).cost.partial_cmp(&g.edge(b).cost).unwrap_or(Ordering::Equal));
    let mut uf = UnionFind::new(g.num_nodes());
    let mut out = Vec::new();
    for e in edges {
        let ed = g.edge(e);
        if uf.union(ed.u as usize, ed.v as usize) {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        //    1
        //  /   \
        // 0     3       0-1:1, 1-3:1, 0-2:2, 2-3:2, 0-3:5
        //  \   /
        //    2
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(2, 3, 2.0);
        g.add_edge(0, 3, 5.0);
        g.set_terminal(0, true);
        g.set_terminal(3, true);
        g
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        uf.union(2, 3);
        uf.union(0, 3);
        assert!(uf.same(1, 2));
    }

    #[test]
    fn dijkstra_distances() {
        let g = diamond();
        let (dist, pred) = dijkstra(&g, 0);
        assert_eq!(dist[3], 2.0);
        assert_eq!(dist[2], 2.0);
        // Path to 3 goes via edge 1 (1-3).
        assert_eq!(pred[3], 1);
    }

    #[test]
    fn dijkstra_ignores_dead_edges() {
        let mut g = diamond();
        g.delete_edge(0); // remove 0-1
        let (dist, _) = dijkstra(&g, 0);
        assert_eq!(dist[3], 4.0); // via 2
    }

    #[test]
    fn voronoi_assigns_nearest_terminal() {
        let g = diamond();
        let vor = voronoi(&g);
        assert_eq!(vor.base[0], 0);
        assert_eq!(vor.base[3], 3);
        assert_eq!(vor.dist[1], 1.0);
        // Vertex 1 is equidistant; base must be one of the terminals.
        assert!(vor.base[1] == 0 || vor.base[1] == 3);
    }

    #[test]
    fn mst_spans_cheaply() {
        let g = diamond();
        let in_set = vec![true; 4];
        let mst = mst_on_subset(&g, &in_set);
        let cost: f64 = mst.iter().map(|&e| g.edge(e).cost).sum();
        assert_eq!(mst.len(), 3);
        assert_eq!(cost, 4.0); // edges 0-1, 1-3, 0-2
    }

    #[test]
    fn mst_respects_subset() {
        let g = diamond();
        let in_set = vec![true, false, true, true]; // exclude vertex 1
        let mst = mst_on_subset(&g, &in_set);
        let cost: f64 = mst.iter().map(|&e| g.edge(e).cost).sum();
        assert_eq!(cost, 4.0); // 0-2 (2) + 2-3 (2)
    }
}
