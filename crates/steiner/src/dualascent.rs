//! Wong's dual ascent for the Steiner arborescence problem (§3.1: run
//! after presolving to select initial cut rows, provide a strong lower
//! bound, and guide a primal heuristic).
//!
//! The implementation grows, for each active terminal, the set of
//! vertices that reach it through zero-reduced-cost arcs, and raises the
//! dual of the corresponding directed cut by the minimum residual on the
//! entering arcs. The byproducts are exactly what SCIP-Jack uses:
//!
//! * a lower bound valid for the whole instance,
//! * reduced costs powering bound-based and extended reductions,
//! * a zero-reduced-cost subgraph on which the shortest-path heuristic
//!   finds strong primal solutions,
//! * the saturated cuts, installed as the initial LP rows.

use crate::sap::SapGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a dual ascent run.
#[derive(Clone, Debug)]
pub struct DualAscent {
    /// The lower bound Σ dual raises (excludes any fixed cost).
    pub bound: f64,
    /// Reduced cost per arc of the [`SapGraph`].
    pub redcost: Vec<f64>,
    /// The directed cuts that were raised, as vertex masks (head side).
    /// Each corresponds to a (now saturated) constraint of type (4).
    pub cuts: Vec<Vec<bool>>,
}

/// Runs dual ascent on `sap`. `keep_cuts` bounds how many raised cuts are
/// recorded for LP initialization (the most recent ones are kept — they
/// are the largest and strongest).
pub fn dual_ascent(sap: &SapGraph, keep_cuts: usize) -> DualAscent {
    let n = sap.n;
    let mut redcost: Vec<f64> = sap.arcs.iter().map(|a| a.cost).collect();
    let mut bound = 0.0;
    let mut active: Vec<usize> = sap.sinks().collect();
    let mut cuts: Vec<Vec<bool>> = Vec::new();
    // Scratch buffers.
    let mut in_w = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut guard = 0usize;
    let max_iters = 8 * sap.num_arcs().max(64);

    while let Some(&t) = active.first() {
        guard += 1;
        if guard > max_iters {
            break; // numerical safety; bound stays valid
        }
        // W = vertices with a zero-reduced-cost path *to* t.
        in_w.iter_mut().for_each(|b| *b = false);
        stack.clear();
        in_w[t] = true;
        stack.push(t);
        let mut hit_root = false;
        while let Some(v) = stack.pop() {
            if v == sap.root {
                hit_root = true;
                break;
            }
            for &a in &sap.inc[v] {
                if redcost[a as usize] <= 1e-12 {
                    let u = sap.arcs[a as usize].tail as usize;
                    if !in_w[u] && sap.node_alive[u] {
                        in_w[u] = true;
                        stack.push(u);
                    }
                }
            }
        }
        if hit_root {
            active.remove(0);
            continue;
        }
        // Entering arcs of W and the minimum residual.
        let mut delta = f64::INFINITY;
        for v in 0..n {
            if !in_w[v] {
                continue;
            }
            for &a in &sap.inc[v] {
                let u = sap.arcs[a as usize].tail as usize;
                if !in_w[u] && sap.node_alive[u] {
                    delta = delta.min(redcost[a as usize]);
                }
            }
        }
        if !delta.is_finite() || delta <= 0.0 {
            // t is unreachable from the root — the instance (or this
            // subgraph) is infeasible; report an infinite bound.
            bound = f64::INFINITY;
            break;
        }
        for v in 0..n {
            if !in_w[v] {
                continue;
            }
            for &a in &sap.inc[v] {
                let u = sap.arcs[a as usize].tail as usize;
                if !in_w[u] && sap.node_alive[u] {
                    redcost[a as usize] = (redcost[a as usize] - delta).max(0.0);
                }
            }
        }
        bound += delta;
        cuts.push(in_w.clone());
        if cuts.len() > keep_cuts {
            cuts.remove(0);
        }
        // Round-robin: move t to the back so other terminals also grow.
        active.rotate_left(1);
    }

    DualAscent { bound, redcost, cuts }
}

#[derive(PartialEq)]
struct Hi(f64, u32);
impl Eq for Hi {}
impl PartialOrd for Hi {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Hi {
    fn cmp(&self, o: &Self) -> Ordering {
        o.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal).then(o.1.cmp(&self.1))
    }
}

/// Dijkstra over arcs with the given per-arc weights, from `source`,
/// following arc direction. Returns distances.
pub fn arc_dijkstra(sap: &SapGraph, weights: &[f64], source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; sap.n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Hi(0.0, source as u32));
    while let Some(Hi(d, v)) = heap.pop() {
        let v = v as usize;
        if d > dist[v] {
            continue;
        }
        for &a in &sap.out[v] {
            let arc = &sap.arcs[a as usize];
            let w = arc.head as usize;
            if !sap.node_alive[w] {
                continue;
            }
            let nd = d + weights[a as usize];
            if nd < dist[w] - 1e-15 {
                dist[w] = nd;
                heap.push(Hi(nd, w as u32));
            }
        }
    }
    dist
}

/// Multi-source Dijkstra on *reversed* arcs from all terminals: returns
/// for each vertex the cheapest reduced-cost distance to reach any
/// terminal (following arc direction vertex → terminal).
pub fn dist_to_terminals(sap: &SapGraph, weights: &[f64]) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; sap.n];
    let mut heap = BinaryHeap::new();
    for (t, dt) in dist.iter_mut().enumerate() {
        if sap.terminal[t] {
            *dt = 0.0;
            heap.push(Hi(0.0, t as u32));
        }
    }
    while let Some(Hi(d, v)) = heap.pop() {
        let v = v as usize;
        if d > dist[v] {
            continue;
        }
        // Traverse arcs *into* v: tail → v means tail can reach a terminal
        // through v.
        for &a in &sap.inc[v] {
            let arc = &sap.arcs[a as usize];
            let u = arc.tail as usize;
            if !sap.node_alive[u] {
                continue;
            }
            let nd = d + weights[a as usize];
            if nd < dist[u] - 1e-15 {
                dist[u] = nd;
                heap.push(Hi(nd, u as u32));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path4() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.set_terminal(0, true);
        g.set_terminal(3, true);
        g
    }

    #[test]
    fn path_bound_is_exact() {
        let g = path4();
        let sap = SapGraph::from_graph(&g, 0);
        let da = dual_ascent(&sap, 8);
        assert!((da.bound - 6.0).abs() < 1e-9, "bound = {}", da.bound);
        assert!(!da.cuts.is_empty());
    }

    #[test]
    fn bound_is_lower_bound_on_diamond() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(2, 3, 2.0);
        g.set_terminal(0, true);
        g.set_terminal(3, true);
        let sap = SapGraph::from_graph(&g, 0);
        let da = dual_ascent(&sap, 8);
        // OPT = 2 (path 0-1-3).
        assert!(da.bound <= 2.0 + 1e-9);
        assert!(da.bound > 0.0);
    }

    #[test]
    fn star_with_three_terminals() {
        // center 0 root? root must be terminal: terminals 1,2,3; star costs 1.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(0, 3, 1.0);
        g.set_terminal(1, true);
        g.set_terminal(2, true);
        g.set_terminal(3, true);
        let sap = SapGraph::from_graph(&g, 1);
        let da = dual_ascent(&sap, 8);
        // OPT = 3; dual ascent must reach ≥ 2 here (it is exact on trees).
        assert!(da.bound <= 3.0 + 1e-9);
        assert!(da.bound >= 2.0 - 1e-9, "bound = {}", da.bound);
    }

    #[test]
    fn infeasible_instance_detected() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        // vertex 2 isolated
        g.set_terminal(0, true);
        g.set_terminal(2, true);
        let sap = SapGraph::from_graph(&g, 0);
        let da = dual_ascent(&sap, 4);
        assert!(da.bound.is_infinite());
    }

    #[test]
    fn reduced_cost_distances() {
        let g = path4();
        let sap = SapGraph::from_graph(&g, 0);
        let da = dual_ascent(&sap, 8);
        let dfr = arc_dijkstra(&sap, &da.redcost, 0);
        // After full ascent the path to the terminal is saturated.
        assert!(dfr[3] < 1e-9);
        let dtt = dist_to_terminals(&sap, &da.redcost);
        for &d in dtt.iter().take(4) {
            assert!(d < f64::INFINITY);
        }
        assert_eq!(dtt[0], 0.0);
    }
}
