//! Property tests for the Steiner stack: reductions, bounds and the full
//! branch-and-cut against a brute-force oracle on random small graphs.

use proptest::prelude::*;
use ugrs_steiner::dualascent::dual_ascent;
use ugrs_steiner::heur::{real_weights, tm_best, tree_from_vertices};
use ugrs_steiner::reduce::{reduce, ReduceParams};
use ugrs_steiner::sap::SapGraph;
use ugrs_steiner::stp::{parse_stp, write_stp};
use ugrs_steiner::{Graph, SteinerOptions, SteinerSolver};

/// Random connected graph: a spanning-tree backbone plus extra edges;
/// 2–4 terminals.
#[derive(Clone, Debug)]
struct RandomSpg {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
    terminals: Vec<usize>,
}

fn random_spg() -> impl Strategy<Value = RandomSpg> {
    (4usize..9).prop_flat_map(|n| {
        let backbone = prop::collection::vec(1.0f64..10.0, n - 1);
        let extra = prop::collection::vec((0..n, 0..n, 1.0f64..10.0), 0..(n + 2));
        let nterms = 2usize..=4.min(n).max(2);
        (backbone, extra, nterms, prop::collection::vec(0..n, 4)).prop_map(
            move |(bb, extra, nterms, tseeds)| {
                let mut edges: Vec<(usize, usize, f64)> =
                    bb.into_iter().enumerate().map(|(i, c)| (i, i + 1, c)).collect();
                for (u, v, c) in extra {
                    if u != v {
                        edges.push((u.min(v), u.max(v), c));
                    }
                }
                let mut terminals: Vec<usize> =
                    tseeds.into_iter().take(nterms).map(|t| t % n).collect();
                terminals.sort_unstable();
                terminals.dedup();
                if terminals.len() < 2 {
                    terminals = vec![0, n - 1];
                }
                RandomSpg { n, edges, terminals }
            },
        )
    })
}

fn build(spg: &RandomSpg) -> Graph {
    let mut g = Graph::new(spg.n);
    let mut seen = std::collections::HashSet::new();
    for &(u, v, c) in &spg.edges {
        if seen.insert((u, v)) {
            g.add_edge(u, v, c);
        }
    }
    for &t in &spg.terminals {
        g.set_terminal(t, true);
    }
    g
}

/// Exact optimum by enumerating Steiner-vertex subsets.
fn brute_force(g: &Graph) -> f64 {
    let optional: Vec<usize> = g.alive_nodes().filter(|&v| !g.is_terminal(v)).collect();
    let k = optional.len();
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << k) {
        let mut in_set: Vec<bool> =
            (0..g.num_nodes()).map(|v| g.is_node_alive(v) && g.is_terminal(v)).collect();
        for (i, &v) in optional.iter().enumerate() {
            if mask >> i & 1 == 1 {
                in_set[v] = true;
            }
        }
        if let Some(t) = tree_from_vertices(g, &in_set) {
            best = best.min(t.cost);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reductions_preserve_optimum(spg in random_spg()) {
        let g = build(&spg);
        let before = brute_force(&g);
        let mut reduced = g.clone();
        reduce(&mut reduced, &ReduceParams::default());
        let after = if reduced.num_terminals() >= 2 { brute_force(&reduced) } else { 0.0 };
        prop_assert!((before - (reduced.fixed_cost + after)).abs() < 1e-6,
            "before {} vs fixed {} + after {}", before, reduced.fixed_cost, after);
    }

    #[test]
    fn dual_ascent_is_a_lower_bound(spg in random_spg()) {
        let g = build(&spg);
        let opt = brute_force(&g);
        let sap = SapGraph::from_graph(&g, SapGraph::pick_root(&g));
        let da = dual_ascent(&sap, 4);
        prop_assert!(da.bound <= opt + 1e-6, "DA {} > OPT {}", da.bound, opt);
    }

    #[test]
    fn tm_is_an_upper_bound(spg in random_spg()) {
        let g = build(&spg);
        let opt = brute_force(&g);
        if let Some(tree) = tm_best(&g, 3, &real_weights(&g)) {
            prop_assert!(tree.is_valid(&g));
            prop_assert!(tree.cost >= opt - 1e-6, "TM {} < OPT {}", tree.cost, opt);
        }
    }

    #[test]
    fn solver_matches_brute_force(spg in random_spg()) {
        let g = build(&spg);
        let expected = brute_force(&g);
        let mut solver = SteinerSolver::new(g.clone(), SteinerOptions::default());
        let res = solver.solve();
        let cost = res.best_cost.expect("connected instance must solve");
        prop_assert!((cost - expected).abs() < 1e-6, "solver {} vs oracle {}", cost, expected);
        prop_assert!(res.tree.unwrap().is_valid(&g));
        prop_assert!((res.dual_bound - expected).abs() < 1e-6);
    }

    #[test]
    fn stp_io_round_trip(spg in random_spg()) {
        let g = build(&spg);
        let text = write_stp(&g, "prop");
        let g2 = parse_stp(&text).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_alive_edges(), g.num_alive_edges());
        prop_assert_eq!(g2.num_terminals(), g.num_terminals());
        prop_assert!((brute_force(&g2) - brute_force(&g)).abs() < 1e-9);
    }
}
