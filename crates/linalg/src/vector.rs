//! Slice-level vector kernels (dot products, axpy, norms).
//!
//! These are the hot inner loops of the simplex pricing and the barrier
//! Newton steps; they are written over plain slices so callers can use them
//! on `Vec<f64>`, matrix rows, or scratch buffers alike.

/// Dot product `xᵀy`. Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha * x` (the BLAS `axpy`). Panics on length mismatch.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow.
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for v in x {
        let s = v / max;
        sum += s * s;
    }
    max * sum.sqrt()
}

/// Infinity norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Index of the entry with largest absolute value, or `None` for empty input.
pub fn iamax(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).unwrap())
        .map(|(i, _)| i)
}

/// Sets every entry to zero without reallocating.
#[inline]
pub fn zero(x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let mut y = vec![1.0, 2.0];
        axpy(0.0, &[f64::NAN, f64::NAN], &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn norm2_avoids_overflow() {
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-12);
    }

    #[test]
    fn iamax_picks_largest_abs() {
        assert_eq!(iamax(&[1.0, -9.0, 3.0]), Some(1));
        assert_eq!(iamax(&[]), None);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
        zero(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
