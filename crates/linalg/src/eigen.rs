//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! The MISDP solver needs, per separation round, the smallest eigenvalue
//! and a corresponding eigenvector of `Z = C − Σ Aᵢ yᵢ` (§3.2 of the
//! paper: the Sherali–Fraticelli eigenvector cut). Jacobi rotations give
//! high-quality orthogonal eigenvectors on the small dense blocks we care
//! about, at the price of O(n³) per sweep — perfectly fine here.

use crate::{LinalgError, Matrix, Result};

/// Full eigendecomposition of a symmetric matrix: `A = V diag(λ) Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted ascending.
    pub values: Vec<f64>,
    /// `vectors.col(k)` is the eigenvector for `values[k]`; columns form an
    /// orthonormal set.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Smallest eigenvalue with its eigenvector.
    pub fn min_pair(&self) -> (f64, Vec<f64>) {
        (self.values[0], self.vectors.col(0))
    }

    /// Largest eigenvalue with its eigenvector.
    pub fn max_pair(&self) -> (f64, Vec<f64>) {
        let k = self.values.len() - 1;
        (self.values[k], self.vectors.col(k))
    }
}

/// Computes the eigendecomposition of a symmetric matrix by the cyclic
/// Jacobi method. `a` is symmetrized defensively; asymmetry beyond 1e-7
/// is a shape error. Fails with [`LinalgError::NoConvergence`] only for
/// pathological inputs (limit: 60 sweeps).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::Shape("eigen requires a square matrix".into()));
    }
    if a.asymmetry() > 1e-7 * (1.0 + a.norm_frobenius()) {
        return Err(LinalgError::Shape("matrix is not symmetric".into()));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen { values: vec![], vectors: Matrix::zeros(0, 0) });
    }
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Matrix::identity(n);

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        s.sqrt()
    };

    let tol = 1e-14 * (1.0 + m.norm_frobenius());
    for _sweep in 0..60 {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                // Classic Jacobi rotation annihilating (p,q).
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of M = Jᵀ M J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors: V ← V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if off(&m) > 1e-7 * (1.0 + a.norm_frobenius()) {
        return Err(LinalgError::NoConvergence);
    }

    // Sort eigenpairs ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (newcol, &oldcol) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, newcol)] = v[(r, oldcol)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

/// Smallest eigenvalue of a symmetric matrix (convenience; full Jacobi
/// under the hood).
pub fn min_eigenvalue(a: &Matrix) -> Result<f64> {
    Ok(symmetric_eigen(a)?.values[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        let (lam, v) = e.min_pair();
        // Check A v = λ v.
        let av = a.matvec(&v);
        for i in 0..2 {
            assert!((av[i] - lam * v[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a =
            Matrix::from_rows(3, 3, vec![4.0, 1.0, -2.0, 1.0, 2.0, 0.0, -2.0, 0.0, 3.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let target = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - target).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(
            4,
            4,
            vec![5.0, 1.0, 0.0, 2.0, 1.0, 4.0, 1.0, 0.0, 0.0, 1.0, 3.0, 1.0, 2.0, 0.0, 1.0, 6.0],
        )
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let d = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        let mut diff = a.clone();
        diff.add_scaled(-1.0, &rec).unwrap();
        assert!(diff.norm_frobenius() < 1e-8);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(symmetric_eigen(&a).is_err());
    }

    #[test]
    fn empty_matrix() {
        let e = symmetric_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn indefinite_matrix_detected_by_min_eigenvalue() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!((min_eigenvalue(&a).unwrap() + 1.0).abs() < 1e-10);
    }
}
