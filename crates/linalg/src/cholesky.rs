//! Cholesky (LLᵀ) factorization for symmetric positive definite systems.

use crate::{LinalgError, Matrix, Result};

/// Cholesky factor `L` with `A + shift·I = L Lᵀ`.
///
/// The SDP barrier solver hands this nearly-singular Newton systems close
/// to the boundary of the PSD cone, so the factorization supports an
/// *adaptive* diagonal shift: if a pivot turns non-positive the whole
/// factorization is retried with a geometrically growing shift. The shift
/// actually used is reported via [`CholeskyFactor::shift`] so callers can
/// account for the perturbation.
#[derive(Clone, Debug)]
pub struct CholeskyFactor {
    l: Matrix,
    shift: f64,
}

impl CholeskyFactor {
    /// Factorizes an SPD matrix without any shift. Fails with
    /// [`LinalgError::Singular`] when `a` is not positive definite.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::factor_with_shift(a, 0.0)
    }

    /// Factorizes `a`, adding a diagonal shift if needed. Starts at zero
    /// shift and escalates `initial_shift · 10^k` until success or the
    /// shift exceeds `max_shift`.
    pub fn new_shifted(a: &Matrix, initial_shift: f64, max_shift: f64) -> Result<Self> {
        match Self::factor_with_shift(a, 0.0) {
            Ok(f) => Ok(f),
            Err(_) => {
                let mut shift = initial_shift.max(1e-14);
                while shift <= max_shift {
                    if let Ok(f) = Self::factor_with_shift(a, shift) {
                        return Ok(f);
                    }
                    shift *= 10.0;
                }
                Err(LinalgError::Singular)
            }
        }
    }

    fn factor_with_shift(a: &Matrix, shift: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::Shape("Cholesky requires a square matrix".into()));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)] + shift;
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            // Require a pivot clearly above rounding noise relative to the
            // diagonal scale — a d of ~1e-16 means "singular in practice".
            if d <= 1e-12 * (1.0 + (a[(j, j)] + shift).abs()) || !d.is_finite() {
                return Err(LinalgError::Singular);
            }
            let ljj = d.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(CholeskyFactor { l, shift })
    }

    /// The diagonal shift that was applied (0 if none was needed).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `(A + shift·I) x = b` via two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::Shape("rhs length mismatch".into()));
        }
        // Forward: L y = b.
        let mut x = b.to_vec();
        for i in 0..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.l[(i, j)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(j, i)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// log det(A + shift·I) = 2 Σ log L_ii — the barrier value the SDP
    /// solver needs, extracted for free from the factorization.
    pub fn log_det(&self) -> f64 {
        (0..self.order()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Returns `true` iff `a` is positive definite (up to factorization
/// breakdown tolerance). Convenience wrapper used by tests and the SDP
/// feasibility checks.
pub fn is_positive_definite(a: &Matrix) -> bool {
    CholeskyFactor::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Mᵀ M + I for M = [[1,2,0],[0,1,1],[1,0,1]] is SPD.
        let m = Matrix::from_rows(3, 3, vec![1.0, 2.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0]).unwrap();
        let mut a = m.transpose().matmul(&m).unwrap();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn reconstructs_matrix() {
        let a = spd3();
        let f = CholeskyFactor::new(&a).unwrap();
        let llt = f.l().matmul(&f.l().transpose()).unwrap();
        let mut diff = a.clone();
        diff.add_scaled(-1.0, &llt).unwrap();
        assert!(diff.norm_frobenius() < 1e-10);
        assert_eq!(f.shift(), 0.0);
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = vec![1.0, 2.0, 3.0];
        let x = CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite_without_shift() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(CholeskyFactor::new(&a).is_err());
        assert!(!is_positive_definite(&a));
    }

    #[test]
    fn adaptive_shift_rescues_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        let f = CholeskyFactor::new_shifted(&a, 1e-8, 1e4).unwrap();
        assert!(f.shift() >= 1.0 - 1e-9); // needs shift ≥ |λmin| = 1
                                          // Solution solves the shifted system.
        let b = vec![1.0, 0.0];
        let x = f.solve(&b).unwrap();
        let mut shifted = a.clone();
        for i in 0..2 {
            shifted[(i, i)] += f.shift();
        }
        let ax = shifted.matvec(&x);
        assert!((ax[0] - 1.0).abs() < 1e-8 && ax[1].abs() < 1e-8);
    }

    #[test]
    fn log_det_matches_direct_computation() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let f = CholeskyFactor::new(&a).unwrap();
        assert!((f.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }
}
