//! LDLᵀ factorization for symmetric (quasi-definite) systems.
//!
//! The barrier solver's bound-augmented Newton systems are symmetric but
//! not always positive definite once the penalty variable enters; LDLᵀ
//! without pivoting handles the quasi-definite case that arises there.

use crate::{LinalgError, Matrix, Result};

/// Packed LDLᵀ factorization `A = L D Lᵀ` with unit lower-triangular `L`
/// and diagonal `D` (which may contain negative entries).
#[derive(Clone, Debug)]
pub struct LdltFactor {
    /// Strict lower triangle holds L (unit diagonal implied); the diagonal
    /// holds D.
    packed: Matrix,
}

impl LdltFactor {
    /// Factorizes a symmetric matrix. Fails with [`LinalgError::Singular`]
    /// when a diagonal pivot falls below `1e-13` in absolute value.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::Shape("LDLT requires a square matrix".into()));
        }
        let n = a.rows();
        let mut p = a.clone();
        for j in 0..n {
            // d_j = a_jj - Σ_k<j L_jk² d_k
            let mut d = p[(j, j)];
            for k in 0..j {
                let l = p[(j, k)];
                d -= l * l * p[(k, k)];
            }
            if d.abs() < 1e-13 || !d.is_finite() {
                return Err(LinalgError::Singular);
            }
            p[(j, j)] = d;
            for i in (j + 1)..n {
                let mut s = p[(i, j)];
                for k in 0..j {
                    s -= p[(i, k)] * p[(j, k)] * p[(k, k)];
                }
                p[(i, j)] = s / d;
            }
        }
        Ok(LdltFactor { packed: p })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.packed.rows()
    }

    /// Number of negative pivots in `D` — the matrix inertia's negative
    /// part, used by the SDP solver to detect loss of definiteness.
    pub fn negative_pivots(&self) -> usize {
        (0..self.order()).filter(|&i| self.packed[(i, i)] < 0.0).count()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::Shape("rhs length mismatch".into()));
        }
        let mut x = b.to_vec();
        // L y = b
        for i in 0..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.packed[(i, j)] * xj;
            }
            x[i] = s;
        }
        // D z = y
        for (i, xi) in x.iter_mut().enumerate() {
            *xi /= self.packed[(i, i)];
        }
        // Lᵀ x = z
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.packed[(j, i)] * xj;
            }
            x[i] = s;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_indefinite_symmetric_system() {
        // Symmetric indefinite (saddle-point-like) matrix.
        let a =
            Matrix::from_rows(3, 3, vec![4.0, 1.0, 2.0, 1.0, -3.0, 0.5, 2.0, 0.5, 2.0]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let f = LdltFactor::new(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9, "residual too large: {ax:?}");
        }
        assert_eq!(f.negative_pivots(), 1);
    }

    #[test]
    fn spd_matrix_has_no_negative_pivots() {
        let a = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(LdltFactor::new(&a).unwrap().negative_pivots(), 0);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(LdltFactor::new(&a).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(LdltFactor::new(&Matrix::zeros(2, 3)).is_err());
    }
}
