//! Dense linear algebra kernels for the ugrs solver suite.
//!
//! This crate is the stand-in for the LAPACK/BLAS subset that the paper's
//! solver stack (SoPlex/CPLEX for LP, Mosek for SDP) relies on. Everything
//! is implemented from scratch on plain `Vec<f64>` storage:
//!
//! * [`Matrix`] — row-major dense matrices with the usual arithmetic,
//! * [`lu::LuFactor`] — LU factorization with partial pivoting,
//! * [`cholesky::CholeskyFactor`] — LLᵀ factorization of SPD matrices with
//!   an adaptive diagonal shift (used by the SDP barrier Newton systems),
//! * [`ldlt::LdltFactor`] — LDLᵀ for symmetric quasi-definite systems,
//! * [`eigen`] — a cyclic Jacobi eigensolver for symmetric matrices, which
//!   powers the eigenvector-cut separator of the MISDP solver.
//!
//! The matrices arising in this project are small and dense (LP bases and
//! SDP block matrices of a few hundred rows), so the kernels favour
//! robustness and clarity over cache blocking.

pub mod cholesky;
pub mod eigen;
pub mod ldlt;
pub mod lu;
pub mod matrix;
pub mod vector;

pub use cholesky::CholeskyFactor;
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use ldlt::LdltFactor;
pub use lu::LuFactor;
pub use matrix::Matrix;

/// Numerical tolerance used as the default "is this zero" threshold across
/// the suite. Matches the feasibility tolerance the LP and SDP layers use.
pub const EPS: f64 = 1e-9;

/// Error type for the factorization routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was structurally unsuitable (e.g. non-square, dimension
    /// mismatch between operands).
    Shape(String),
    /// The factorization broke down numerically (singular pivot, negative
    /// diagonal in a Cholesky step beyond the allowed shift, ...).
    Singular,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Shape(s) => write!(f, "shape error: {s}"),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NoConvergence => write!(f, "iteration limit reached without convergence"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
