//! LU factorization with partial pivoting.

use crate::{LinalgError, Matrix, Result};

/// LU factorization `P A = L U` of a square matrix, stored packed: the
/// strictly lower triangle of `lu` holds `L` (unit diagonal implied), the
/// upper triangle holds `U`. `perm[i]` records the row of `A` that ended up
/// in position `i`.
#[derive(Clone, Debug)]
pub struct LuFactor {
    lu: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

impl LuFactor {
    /// Factorizes `a`. Returns [`LinalgError::Singular`] if a pivot smaller
    /// than `pivot_tol` in absolute value is encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::with_pivot_tol(a, 1e-12)
    }

    /// Factorizes with an explicit pivot tolerance.
    pub fn with_pivot_tol(a: &Matrix, pivot_tol: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::Shape("LU requires a square matrix".into()));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < pivot_tol {
                return Err(LinalgError::Singular);
            }
            if p != k {
                perm.swap(k, p);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= m * ukj;
                    }
                }
            }
        }
        Ok(LuFactor { lu, perm, sign })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::Shape("rhs length mismatch".into()));
        }
        // Apply permutation, forward substitution with unit L.
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `Aᵀ x = b` (used by simplex BTRAN).
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::Shape("rhs length mismatch".into()));
        }
        // A = Pᵀ L U  ⇒  Aᵀ = Uᵀ Lᵀ P. Solve Uᵀ y = b, then Lᵀ z = y,
        // then x = Pᵀ z (i.e. x[perm[i]] = z[i]).
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.lu[(j, i)] * yj;
            }
            y[i] = s / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                s -= self.lu[(j, i)] * yj;
            }
            y[i] = s;
        }
        let mut x = vec![0.0; n];
        for i in 0..n {
            x[self.perm[i]] = y[i];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.order() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Dense inverse (column-by-column solves). Intended for small systems.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.order();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter().zip(b).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0]).unwrap();
        let b = vec![4.0, 5.0, 6.0];
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a =
            Matrix::from_rows(3, 3, vec![4.0, -2.0, 1.0, 3.0, 6.0, -4.0, 2.0, 1.0, 8.0]).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve_transposed(&b).unwrap();
        let at = a.transpose();
        assert!(residual(&at, &x, &b) < 1e-10);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(LuFactor::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn determinant_with_pivoting() {
        // det = -2 for [[0,1],[2,3]] (requires a row swap).
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let f = LuFactor::new(&a).unwrap();
        assert!((f.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(3, 3, vec![5.0, 1.0, 0.0, 1.0, 4.0, 2.0, 0.0, 2.0, 3.0]).unwrap();
        let inv = LuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let mut err = 0.0f64;
        for i in 0..3 {
            for j in 0..3 {
                let target = if i == j { 1.0 } else { 0.0 };
                err = err.max((prod[(i, j)] - target).abs());
            }
        }
        assert!(err < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(LuFactor::new(&a), Err(LinalgError::Shape(_))));
    }
}
