//! Row-major dense matrix type.

use crate::{vector, LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// The storage is a single `Vec<f64>` of length `rows * cols`; entry
/// `(i, j)` lives at `data[i * cols + j]`. Indexing via `m[(i, j)]` is
/// bounds-checked in debug builds through the slice access.
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data. Errors if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::Shape(format!(
                "expected {} entries for a {}x{} matrix, got {}",
                rows * cols,
                rows,
                cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a diagonal matrix from its diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|i| vector::dot(self.row(i), x)).collect()
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            vector::axpy(xi, self.row(i), &mut y);
        }
        y
    }

    /// Matrix-matrix product `A * B`.
    pub fn matmul(&self, b: &Matrix) -> Result<Matrix> {
        if self.cols != b.rows {
            return Err(LinalgError::Shape(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, b.rows, b.cols
            )));
        }
        let mut c = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let crow = c.row_mut(i);
                vector::axpy(aik, brow, crow);
            }
        }
        Ok(c)
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// `self ← self + alpha * other`. Errors on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::Shape("add_scaled shape mismatch".into()));
        }
        vector::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Maximum absolute deviation from symmetry; 0 for symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols.min(self.rows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`. Requires a square matrix.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Quadratic form `vᵀ A v` for a square matrix.
    pub fn quad_form(&self, v: &[f64]) -> f64 {
        assert!(self.is_square());
        assert_eq!(v.len(), self.rows);
        let av = self.matvec(v);
        vector::dot(v, &av)
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn shape_and_indexing() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_bad_len() {
        assert!(Matrix::from_rows(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn matvec_and_transpose() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t[(2, 0)], 3.0);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = sample();
        let b = a.transpose();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 14.0);
        assert_eq!(c[(0, 1)], 32.0);
        assert_eq!(c[(1, 1)], 77.0);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 4.0, 3.0]).unwrap();
        assert_eq!(m.asymmetry(), 2.0);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    fn quad_form_and_trace() {
        let m = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(m.quad_form(&[1.0, 2.0]), 2.0 + 12.0);
        assert_eq!(m.trace(), 5.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::identity(2);
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        a.add_scaled(2.0, &b).unwrap();
        assert_eq!(a[(0, 1)], 2.0);
        assert!(a.add_scaled(1.0, &Matrix::zeros(3, 3)).is_err());
    }
}
