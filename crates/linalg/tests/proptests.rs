//! Property-based tests for the linear algebra kernels.

use proptest::prelude::*;
use ugrs_linalg::{
    cholesky::is_positive_definite, symmetric_eigen, CholeskyFactor, LuFactor, Matrix,
};

/// Strategy: a well-conditioned-ish random square matrix (entries in
/// [-5, 5] with a diagonal boost to avoid near-singularity most of the
/// time; genuinely singular draws are filtered at the use site).
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, n * n).prop_map(move |mut v| {
        for i in 0..n {
            v[i * n + i] += 10.0;
        }
        Matrix::from_rows(n, n, v).unwrap()
    })
}

fn sym_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(|m| {
        let mut s = m.clone();
        s.symmetrize();
        s
    })
}

fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |m| {
        // MᵀM + I is always SPD.
        let mut a = m.transpose().matmul(&m).unwrap();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    })
}

proptest! {
    #[test]
    fn lu_solve_has_small_residual(a in square_matrix(5), b in prop::collection::vec(-10.0f64..10.0, 5)) {
        if let Ok(f) = LuFactor::new(&a) {
            let x = f.solve(&b).unwrap();
            let ax = a.matvec(&x);
            for (p, q) in ax.iter().zip(&b) {
                prop_assert!((p - q).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn lu_transposed_solve_consistent(a in square_matrix(4), b in prop::collection::vec(-10.0f64..10.0, 4)) {
        if let Ok(f) = LuFactor::new(&a) {
            let x = f.solve_transposed(&b).unwrap();
            let atx = a.transpose().matvec(&x);
            for (p, q) in atx.iter().zip(&b) {
                prop_assert!((p - q).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn cholesky_round_trip(a in spd_matrix(5), b in prop::collection::vec(-10.0f64..10.0, 5)) {
        let f = CholeskyFactor::new(&a).unwrap();
        prop_assert_eq!(f.shift(), 0.0);
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-5 * (1.0 + a.norm_frobenius()));
        }
    }

    #[test]
    fn spd_iff_all_eigenvalues_positive(a in sym_matrix(4)) {
        let e = symmetric_eigen(&a).unwrap();
        let pd = is_positive_definite(&a);
        let min = e.values[0];
        // Only check when safely away from the boundary.
        if min > 1e-6 {
            prop_assert!(pd);
        } else if min < -1e-6 {
            prop_assert!(!pd);
        }
    }

    #[test]
    fn eigen_reconstruction(a in sym_matrix(5)) {
        let e = symmetric_eigen(&a).unwrap();
        let d = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        let mut diff = a.clone();
        diff.add_scaled(-1.0, &rec).unwrap();
        prop_assert!(diff.norm_frobenius() < 1e-6 * (1.0 + a.norm_frobenius()));
    }

    #[test]
    fn eigen_trace_equals_sum_of_eigenvalues(a in sym_matrix(6)) {
        let e = symmetric_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-7 * (1.0 + a.trace().abs()));
    }

    #[test]
    fn det_of_product_with_inverse_is_one(a in square_matrix(4)) {
        if let Ok(f) = LuFactor::new(&a) {
            if f.det().abs() > 1e-6 {
                let inv = f.inverse().unwrap();
                let finv = LuFactor::new(&inv).unwrap();
                prop_assert!((f.det() * finv.det() - 1.0).abs() < 1e-4);
            }
        }
    }
}
