//! Property tests for the simplex engine.
//!
//! The strongest oracle-free check for an LP solver is the KKT system:
//! a claimed optimum must be primal feasible, its duals must be dual
//! feasible, and complementary slackness must hold. On top of that we
//! check warm-started dual simplex re-solves against fresh solves.

use proptest::prelude::*;
use ugrs_lp::{LpProblem, LpStatus, Simplex, SimplexParams, VarId};

const TOL: f64 = 1e-5;

/// `(lhs, rhs, sparse coefficients)` of a generated row.
type RandomRow = (f64, f64, Vec<(usize, f64)>);

#[derive(Clone, Debug)]
struct RandomLp {
    nvars: usize,
    lb: Vec<f64>,
    ub: Vec<f64>,
    obj: Vec<f64>,
    rows: Vec<RandomRow>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..6, 1usize..6).prop_flat_map(|(nvars, nrows)| {
        let bounds = prop::collection::vec((-5.0f64..0.0, 0.0f64..5.0), nvars);
        let obj = prop::collection::vec(-3.0f64..3.0, nvars);
        let row =
            (-8.0f64..0.0, 0.0f64..8.0, prop::collection::vec((0..nvars, -3.0f64..3.0), 1..=nvars));
        let rows = prop::collection::vec(row, nrows);
        (bounds, obj, rows).prop_map(move |(bounds, obj, rows)| RandomLp {
            nvars,
            lb: bounds.iter().map(|b| b.0).collect(),
            ub: bounds.iter().map(|b| b.1).collect(),
            obj,
            rows,
        })
    })
}

fn build(lp: &RandomLp) -> LpProblem {
    let mut p = LpProblem::new();
    let vars: Vec<VarId> =
        (0..lp.nvars).map(|j| p.add_var(lp.lb[j], lp.ub[j], lp.obj[j])).collect();
    for (lhs, rhs, terms) in &lp.rows {
        let t: Vec<(VarId, f64)> = terms.iter().map(|&(j, c)| (vars[j], c)).collect();
        p.add_row(*lhs, *rhs, &t);
    }
    p
}

/// Checks the KKT conditions of a claimed optimal solution.
fn assert_kkt(p: &LpProblem, sol: &ugrs_lp::LpSolution) {
    // Primal feasibility.
    assert!(p.is_feasible(&sol.x, TOL), "primal infeasible: {:?}", sol.x);
    // Dual feasibility + complementary slackness per variable:
    // reduced cost d_j >= -tol if x_j at lower, <= tol if at upper,
    // |d_j| <= tol if strictly between bounds.
    for j in 0..p.num_vars() {
        let v = VarId(j as u32);
        let (lb, ub) = p.bounds(v);
        let x = sol.x[j];
        let d = sol.reduced_costs[j];
        let at_lb = (x - lb).abs() < 1e-6;
        let at_ub = (ub - x).abs() < 1e-6;
        if at_lb && at_ub {
            continue; // fixed: any sign ok
        }
        if at_lb {
            assert!(d >= -TOL, "var {j}: at lower but reduced cost {d}");
        } else if at_ub {
            assert!(d <= TOL, "var {j}: at upper but reduced cost {d}");
        } else {
            assert!(d.abs() <= TOL, "var {j}: interior but reduced cost {d}");
        }
    }
    // Per-row dual sign + complementary slackness:
    // y_i > 0 only if activity at lhs... sign convention: reduced cost
    // d = c - A'y; for a row with activity strictly inside (lhs, rhs), y_i = 0.
    for r in 0..p.num_rows() {
        let (lhs, rhs) = p.row_sides(ugrs_lp::RowId(r as u32));
        let a = sol.row_activity[r];
        let y = sol.row_duals[r];
        let at_lhs = !LpProblem::is_neg_inf(lhs) && (a - lhs).abs() < 1e-6;
        let at_rhs = !LpProblem::is_pos_inf(rhs) && (rhs - a).abs() < 1e-6;
        if !at_lhs && !at_rhs {
            assert!(y.abs() <= TOL, "row {r}: slack but dual {y}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimal_solutions_satisfy_kkt(lp in random_lp()) {
        let p = build(&lp);
        let sol = p.solve();
        match sol.status {
            LpStatus::Optimal => assert_kkt(&p, &sol),
            LpStatus::Infeasible => {
                // Sanity: the all-zero point must indeed violate something
                // (zero is within all variable bounds by construction).
                let zeros = vec![0.0; p.num_vars()];
                prop_assert!(!p.is_feasible(&zeros, 1e-9));
            }
            LpStatus::Unbounded => {
                // All variables are boxed, so unbounded must never happen.
                prop_assert!(false, "boxed LP cannot be unbounded");
            }
            other => prop_assert!(false, "unexpected status {other:?}"),
        }
    }

    #[test]
    fn dual_warm_start_matches_fresh_solve(lp in random_lp(), tighten in 0.0f64..1.0) {
        let p = build(&lp);
        let mut s = Simplex::new(p.clone(), SimplexParams::default());
        if s.solve_primal() != LpStatus::Optimal {
            return Ok(());
        }
        // Branch-like tightening: halve the range of variable 0.
        let (lb, ub) = p.bounds(VarId(0));
        let mid = lb + tighten * (ub - lb);
        s.set_var_bounds(VarId(0), lb, mid);
        let st_warm = s.solve_dual();

        let mut p2 = p.clone();
        p2.set_bounds(VarId(0), lb, mid);
        let fresh = p2.solve();
        prop_assert_eq!(st_warm, fresh.status);
        if st_warm == LpStatus::Optimal {
            prop_assert!((s.obj_value() - fresh.obj).abs() < 1e-5,
                "warm {} vs fresh {}", s.obj_value(), fresh.obj);
        }
    }

    #[test]
    fn added_rows_warm_start_matches_fresh(lp in random_lp()) {
        let p = build(&lp);
        let mut s = Simplex::new(p.clone(), SimplexParams::default());
        if s.solve_primal() != LpStatus::Optimal {
            return Ok(());
        }
        // Add the "cut" x_0 + x_1 <= 1 (random-ish but deterministic).
        let terms = [(VarId(0), 1.0), (VarId(1), 1.0)];
        s.add_row(f64::NEG_INFINITY, 1.0, &terms);
        let st_warm = s.solve_dual();

        let mut p2 = p.clone();
        p2.add_row(f64::NEG_INFINITY, 1.0, &terms);
        let fresh = p2.solve();
        prop_assert_eq!(st_warm, fresh.status);
        if st_warm == LpStatus::Optimal {
            prop_assert!((s.obj_value() - fresh.obj).abs() < 1e-5);
        }
    }

    #[test]
    fn objective_never_above_any_feasible_point(lp in random_lp()) {
        // The optimum must be <= the objective of the "resting point"
        // whenever that point happens to be feasible.
        let p = build(&lp);
        let sol = p.solve();
        if sol.status != LpStatus::Optimal {
            return Ok(());
        }
        let zeros = vec![0.0; p.num_vars()];
        if p.is_feasible(&zeros, 1e-9) {
            prop_assert!(sol.obj <= p.obj_value(&zeros) + TOL);
        }
    }
}
