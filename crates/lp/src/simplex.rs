//! Revised simplex engine (primal with composite phase 1, and dual for
//! warm starts after bound changes / row additions).
//!
//! Column numbering: `0..n` are the structural variables of the
//! [`LpProblem`], `n..n+m` are the logical (slack) variables, one per row,
//! entering the matrix as `[A | −I]`.

use crate::basis::{BasisError, BasisFactor};
use crate::problem::{LpProblem, VarId};
use ugrs_linalg::Matrix;

/// Termination status of a simplex run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// `solve_*` has not run yet.
    NotSolved,
    /// Proven optimal (primal and dual feasible).
    Optimal,
    /// Proven primal infeasible.
    Infeasible,
    /// Proven unbounded.
    Unbounded,
    /// Iteration limit hit; bounds from the last iterate are still safe.
    IterLimit,
    /// Numerical trouble; treat the result as unusable.
    Numerical,
}

/// Status of a column (structural or slack) w.r.t. the current basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable, held at zero.
    Free,
}

/// Tunable parameters of the simplex engine.
#[derive(Clone, Copy, Debug)]
pub struct SimplexParams {
    /// Primal feasibility tolerance on bounds.
    pub feas_tol: f64,
    /// Dual feasibility (reduced cost) tolerance.
    pub opt_tol: f64,
    /// Minimum acceptable pivot magnitude in the ratio test.
    pub piv_tol: f64,
    /// Iteration limit per `solve_*` call.
    pub iter_limit: usize,
    /// Consecutive degenerate iterations before switching to Bland's rule.
    pub stall_limit: usize,
}

impl Default for SimplexParams {
    fn default() -> Self {
        SimplexParams {
            feas_tol: crate::FEAS_TOL,
            opt_tol: crate::OPT_TOL,
            piv_tol: 1e-9,
            iter_limit: 50_000,
            stall_limit: 50,
        }
    }
}

/// A solved LP's output bundle.
#[derive(Clone, Debug)]
pub struct LpSolution {
    pub status: LpStatus,
    /// Objective value `cᵀx + offset` of the final iterate.
    pub obj: f64,
    /// Structural variable values.
    pub x: Vec<f64>,
    /// Row dual multipliers `y` (so reduced costs are `c − Aᵀy`).
    pub row_duals: Vec<f64>,
    /// Reduced costs of the structural variables.
    pub reduced_costs: Vec<f64>,
    /// Row activities `Ax`.
    pub row_activity: Vec<f64>,
    /// Simplex iterations used by the last solve.
    pub iterations: usize,
}

/// A compact basis description for warm starting (SCIP-style basis
/// storage in branch-and-bound nodes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasisSnapshot {
    /// Status for each of the `n + m` columns.
    pub col_status: Vec<VarStatus>,
}

/// Revised simplex solver state. Owns a copy of the problem so bounds and
/// rows can be modified between solves.
pub struct Simplex {
    prob: LpProblem,
    params: SimplexParams,
    /// Status per column (n structurals + m slacks).
    vstat: Vec<VarStatus>,
    /// Basis columns, one per row position.
    basis_cols: Vec<usize>,
    /// Current value of every column.
    xval: Vec<f64>,
    factor: BasisFactor,
    status: LpStatus,
    iterations: usize,
    total_iterations: usize,
    /// Scratch: dense column buffer.
    colbuf: Vec<f64>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    One,
    Two,
}

impl Simplex {
    /// Creates a solver for `prob` with an all-slack starting basis.
    pub fn new(prob: LpProblem, params: SimplexParams) -> Self {
        let n = prob.num_vars();
        let m = prob.num_rows();
        let mut s = Simplex {
            prob,
            params,
            vstat: Vec::new(),
            basis_cols: Vec::new(),
            xval: vec![0.0; n + m],
            factor: BasisFactor::new(m),
            status: LpStatus::NotSolved,
            iterations: 0,
            total_iterations: 0,
            colbuf: vec![0.0; m],
        };
        s.install_slack_basis();
        s
    }

    /// The problem as currently held by the solver (bounds may have been
    /// modified via [`Simplex::set_var_bounds`], rows appended via
    /// [`Simplex::add_row`]).
    pub fn problem(&self) -> &LpProblem {
        &self.prob
    }

    /// Status of the last solve.
    pub fn status(&self) -> LpStatus {
        self.status
    }

    /// Cumulative simplex iterations over the lifetime of this solver.
    pub fn total_iterations(&self) -> usize {
        self.total_iterations
    }

    fn n(&self) -> usize {
        self.prob.num_vars()
    }

    fn m(&self) -> usize {
        self.prob.num_rows()
    }

    #[inline]
    fn col_lb(&self, j: usize) -> f64 {
        if j < self.n() {
            self.prob.lb[j]
        } else {
            self.prob.row_lhs[j - self.n()]
        }
    }

    #[inline]
    fn col_ub(&self, j: usize) -> f64 {
        if j < self.n() {
            self.prob.ub[j]
        } else {
            self.prob.row_rhs[j - self.n()]
        }
    }

    #[inline]
    fn col_obj(&self, j: usize) -> f64 {
        if j < self.n() {
            self.prob.obj[j]
        } else {
            0.0
        }
    }

    /// Writes column `j` of `[A | −I]` into the dense scratch buffer.
    fn gather_col(&mut self, j: usize) {
        for v in self.colbuf.iter_mut() {
            *v = 0.0;
        }
        if j < self.n() {
            for &(r, c) in &self.prob.cols[j] {
                self.colbuf[r as usize] = c;
            }
        } else {
            let r = j - self.n();
            self.colbuf[r] = -1.0;
        }
    }

    /// Sparse dot of `y` with column `j`.
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n() {
            self.prob.cols[j].iter().map(|&(r, c)| c * y[r as usize]).sum()
        } else {
            -y[j - self.n()]
        }
    }

    fn nonbasic_resting_value(&self, j: usize) -> (f64, VarStatus) {
        let (lb, ub) = (self.col_lb(j), self.col_ub(j));
        let linf = LpProblem::is_neg_inf(lb);
        let uinf = LpProblem::is_pos_inf(ub);
        if linf && uinf {
            (0.0, VarStatus::Free)
        } else if linf {
            (ub, VarStatus::AtUpper)
        } else if uinf || lb.abs() <= ub.abs() {
            (lb, VarStatus::AtLower)
        } else {
            (ub, VarStatus::AtUpper)
        }
    }

    /// Installs the all-slack basis with structurals at their "resting"
    /// bound. Always succeeds (the slack basis `−I` is nonsingular).
    fn install_slack_basis(&mut self) {
        let (n, m) = (self.n(), self.m());
        self.vstat.clear();
        self.vstat.reserve(n + m);
        for j in 0..n {
            let (v, st) = self.nonbasic_resting_value(j);
            self.xval[j] = v;
            self.vstat.push(st);
        }
        for _ in 0..m {
            self.vstat.push(VarStatus::Basic);
        }
        self.basis_cols = (n..n + m).collect();
        self.factor.reset(m);
    }

    /// Installs a caller-provided basis snapshot; falls back to the slack
    /// basis when the snapshot's basic-column count does not match `m`.
    pub fn set_basis(&mut self, snap: &BasisSnapshot) {
        let (n, m) = (self.n(), self.m());
        if snap.col_status.len() != n + m
            || snap.col_status.iter().filter(|s| **s == VarStatus::Basic).count() != m
        {
            self.install_slack_basis();
            return;
        }
        self.vstat = snap.col_status.clone();
        self.basis_cols = (0..n + m).filter(|&j| self.vstat[j] == VarStatus::Basic).collect();
        for j in 0..n + m {
            match self.vstat[j] {
                VarStatus::AtLower => self.xval[j] = self.col_lb(j),
                VarStatus::AtUpper => self.xval[j] = self.col_ub(j),
                VarStatus::Free => self.xval[j] = 0.0,
                VarStatus::Basic => {}
            }
        }
        self.factor.reset(m);
    }

    /// Returns the current basis for storage in a B&B node.
    pub fn basis_snapshot(&self) -> BasisSnapshot {
        BasisSnapshot { col_status: self.vstat.clone() }
    }

    /// Changes variable bounds between solves (branching). Keeps the basis;
    /// snaps the value of a nonbasic variable onto the moved bound.
    pub fn set_var_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        self.prob.set_bounds(v, lb, ub);
        let j = v.0 as usize;
        match self.vstat[j] {
            VarStatus::Basic => {}
            _ => {
                let (val, st) = self.nonbasic_resting_value(j);
                // Keep the side the variable was resting on if it is still
                // finite; otherwise fall back to the resting heuristic.
                let (nlb, nub) = (self.col_lb(j), self.col_ub(j));
                match self.vstat[j] {
                    VarStatus::AtLower if !LpProblem::is_neg_inf(nlb) => self.xval[j] = nlb,
                    VarStatus::AtUpper if !LpProblem::is_pos_inf(nub) => self.xval[j] = nub,
                    _ => {
                        self.xval[j] = val;
                        self.vstat[j] = st;
                    }
                }
            }
        }
        self.status = LpStatus::NotSolved;
    }

    /// Appends a row (cutting plane) between solves. The new slack enters
    /// the basis, preserving dual feasibility, so [`Simplex::solve_dual`]
    /// warm-starts cleanly.
    pub fn add_row(&mut self, lhs: f64, rhs: f64, terms: &[(VarId, f64)]) {
        self.prob.add_row(lhs, rhs, terms);
        let m = self.m();
        let slack = self.n() + m - 1;
        // vstat currently has n + (m-1) entries, slack columns shifted:
        // slack statuses are a suffix so pushing keeps indices valid.
        self.vstat.push(VarStatus::Basic);
        self.basis_cols.push(slack);
        self.xval.push(0.0);
        self.colbuf = vec![0.0; m];
        self.factor.reset(m);
        self.status = LpStatus::NotSolved;
    }

    /// Recomputes all basic values from the nonbasic ones:
    /// `z_B = −B⁻¹ N z_N`.
    fn compute_basics(&mut self) {
        let m = self.m();
        if m == 0 {
            return;
        }
        let mut rhs = vec![0.0; m];
        for j in 0..self.n() + m {
            if self.vstat[j] == VarStatus::Basic {
                continue;
            }
            let xj = self.xval[j];
            if xj == 0.0 {
                continue;
            }
            if j < self.n() {
                for &(r, c) in &self.prob.cols[j] {
                    rhs[r as usize] -= c * xj;
                }
            } else {
                rhs[j - self.n()] += xj;
            }
        }
        let xb = self.factor.ftran(&rhs);
        for (pos, &col) in self.basis_cols.iter().enumerate() {
            self.xval[col] = xb[pos];
        }
    }

    /// (Re)factorizes the basis; on singularity falls back to the slack
    /// basis. Returns `false` only if even that fails (cannot happen for
    /// well-formed problems, but guard anyway).
    fn ensure_factorized(&mut self) -> bool {
        if !self.factor.needs_refactor() {
            return true;
        }
        let m = self.m();
        let mut b = Matrix::zeros(m, m);
        let cols = self.basis_cols.clone();
        for (pos, &col) in cols.iter().enumerate() {
            self.gather_col(col);
            for i in 0..m {
                b[(i, pos)] = self.colbuf[i];
            }
        }
        match self.factor.refactor(&b) {
            Ok(()) => {
                self.compute_basics();
                true
            }
            Err(BasisError::Singular) => {
                self.install_slack_basis();
                let mut b = Matrix::zeros(m, m);
                for i in 0..m {
                    b[(i, i)] = -1.0;
                }
                if self.factor.refactor(&b).is_err() {
                    return false;
                }
                self.compute_basics();
                true
            }
            Err(_) => false,
        }
    }

    fn force_refactor(&mut self) -> bool {
        self.factor.reset(self.m());
        self.ensure_factorized()
    }

    /// Total primal infeasibility of the basic variables.
    fn primal_infeasibility(&self) -> f64 {
        let tol = self.params.feas_tol;
        let mut s = 0.0;
        for &col in &self.basis_cols {
            let v = self.xval[col];
            let (lb, ub) = (self.col_lb(col), self.col_ub(col));
            if v < lb - tol {
                s += lb - v;
            } else if v > ub + tol {
                s += v - ub;
            }
        }
        s
    }

    fn current_phase(&self) -> Phase {
        if self.primal_infeasibility() > 0.0 {
            Phase::One
        } else {
            Phase::Two
        }
    }

    /// Phase-aware basic cost vector.
    fn basic_costs(&self, phase: Phase) -> Vec<f64> {
        let tol = self.params.feas_tol;
        self.basis_cols
            .iter()
            .map(|&col| match phase {
                Phase::Two => self.col_obj(col),
                Phase::One => {
                    let v = self.xval[col];
                    if v < self.col_lb(col) - tol {
                        -1.0
                    } else if v > self.col_ub(col) + tol {
                        1.0
                    } else {
                        0.0
                    }
                }
            })
            .collect()
    }

    /// Prices all nonbasic columns; returns the entering column and its
    /// movement direction (+1 increase / −1 decrease), or `None` when no
    /// candidate violates dual feasibility.
    fn price(&self, y: &[f64], phase: Phase, bland: bool) -> Option<(usize, f64)> {
        let tol = self.params.opt_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in 0..self.n() + self.m() {
            let st = self.vstat[j];
            if st == VarStatus::Basic {
                continue;
            }
            let (lb, ub) = (self.col_lb(j), self.col_ub(j));
            if lb == ub {
                continue; // fixed: never enters
            }
            let cj = if phase == Phase::Two { self.col_obj(j) } else { 0.0 };
            let d = cj - self.col_dot(j, y);
            let (dir, score) = match st {
                VarStatus::AtLower if d < -tol => (1.0, -d),
                VarStatus::AtUpper if d > tol => (-1.0, d),
                VarStatus::Free if d < -tol => (1.0, -d),
                VarStatus::Free if d > tol => (-1.0, d),
                _ => continue,
            };
            if bland {
                return Some((j, dir));
            }
            if best.as_ref().is_none_or(|b| score > b.2) {
                best = Some((j, dir, score));
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// One primal ratio test. Returns `None` for an unbounded ray, or the
    /// blocking event `(t, block)` where `block` is either the entering
    /// column's own opposite bound (`Block::Flip`) or a basis position.
    fn ratio_test(&self, q: usize, dir: f64, w: &[f64], phase: Phase) -> Option<(f64, Block)> {
        let tol = self.params.feas_tol;
        let ptol = self.params.piv_tol;
        let mut t_best = f64::INFINITY;
        let mut block = Block::Flip;
        let mut piv_best = 0.0f64;

        // Entering variable's own range (bound flip).
        let (qlb, qub) = (self.col_lb(q), self.col_ub(q));
        if !LpProblem::is_neg_inf(qlb) && !LpProblem::is_pos_inf(qub) {
            t_best = qub - qlb;
        }

        for (pos, &col) in self.basis_cols.iter().enumerate() {
            // z_col(t) = z_col − dir·w[pos]·t; rate of decrease g:
            let g = dir * w[pos];
            if g.abs() <= ptol {
                continue;
            }
            let v = self.xval[col];
            let (lb, ub) = (self.col_lb(col), self.col_ub(col));
            let below = v < lb - tol;
            let above = v > ub + tol;
            let (t, leave_at_upper) = if phase == Phase::One && below {
                if g < 0.0 {
                    // moving up: blocks when reaching its violated lower bound
                    ((lb - v) / (-g), false)
                } else {
                    continue; // moving further down: no block in phase 1
                }
            } else if phase == Phase::One && above {
                if g > 0.0 {
                    ((v - ub) / g, true)
                } else {
                    continue;
                }
            } else if g > 0.0 {
                // decreasing toward lower bound
                if LpProblem::is_neg_inf(lb) {
                    continue;
                }
                (((v - lb) / g).max(0.0), false)
            } else {
                // increasing toward upper bound
                if LpProblem::is_pos_inf(ub) {
                    continue;
                }
                (((ub - v) / (-g)).max(0.0), true)
            };
            // Prefer strictly smaller t; on near-ties prefer larger |pivot|.
            if t < t_best - 1e-10 || (t < t_best + 1e-10 && g.abs() > piv_best) {
                t_best = t;
                piv_best = g.abs();
                block = Block::Leave { pos, at_upper: leave_at_upper };
            }
        }
        if t_best.is_infinite() {
            None
        } else {
            Some((t_best.max(0.0), block))
        }
    }

    /// Core primal loop, used both from scratch (phase 1 → phase 2) and to
    /// polish after a dual warm start.
    pub fn solve_primal(&mut self) -> LpStatus {
        self.iterations = 0;
        let mut stall = 0usize;
        if !self.ensure_factorized() {
            self.status = LpStatus::Numerical;
            return self.status;
        }
        self.compute_basics();
        loop {
            if self.iterations >= self.params.iter_limit {
                self.status = LpStatus::IterLimit;
                return self.status;
            }
            if self.factor.needs_refactor() && !self.ensure_factorized() {
                self.status = LpStatus::Numerical;
                return self.status;
            }
            let phase = self.current_phase();
            let cb = self.basic_costs(phase);
            let y = if self.m() > 0 { self.factor.btran(&cb) } else { vec![] };
            let bland = stall > self.params.stall_limit;
            let Some((q, dir)) = self.price(&y, phase, bland) else {
                if phase == Phase::One {
                    self.status = LpStatus::Infeasible;
                } else {
                    self.status = LpStatus::Optimal;
                }
                return self.status;
            };
            self.gather_col(q);
            let w = if self.m() > 0 { self.factor.ftran(&self.colbuf) } else { vec![] };
            let Some((t, block)) = self.ratio_test(q, dir, &w, phase) else {
                if phase == Phase::One {
                    // An improving phase-1 ray must hit a bound eventually;
                    // reaching here means tolerances broke down.
                    self.status = LpStatus::Numerical;
                } else {
                    self.status = LpStatus::Unbounded;
                }
                return self.status;
            };
            self.iterations += 1;
            self.total_iterations += 1;
            if t <= 1e-12 {
                stall += 1;
            } else {
                stall = 0;
            }
            // Apply the step to the basic values and the entering column.
            for (pos, &col) in self.basis_cols.iter().enumerate() {
                self.xval[col] -= dir * w[pos] * t;
            }
            self.xval[q] += dir * t;
            match block {
                Block::Flip => {
                    self.vstat[q] = if dir > 0.0 { VarStatus::AtUpper } else { VarStatus::AtLower };
                    // snap exactly
                    self.xval[q] = if dir > 0.0 { self.col_ub(q) } else { self.col_lb(q) };
                }
                Block::Leave { pos, at_upper } => {
                    let leaving = self.basis_cols[pos];
                    self.vstat[leaving] =
                        if at_upper { VarStatus::AtUpper } else { VarStatus::AtLower };
                    self.xval[leaving] =
                        if at_upper { self.col_ub(leaving) } else { self.col_lb(leaving) };
                    self.vstat[q] = VarStatus::Basic;
                    self.basis_cols[pos] = q;
                    if self.factor.update(pos, w.clone()).is_err() && !self.force_refactor() {
                        self.status = LpStatus::Numerical;
                        return self.status;
                    }
                }
            }
        }
    }

    /// Dual simplex re-optimization from the current (dual feasible)
    /// basis. Falls back to `solve_primal` when it detects that the basis
    /// is not dual feasible or on numerical trouble.
    pub fn solve_dual(&mut self) -> LpStatus {
        self.iterations = 0;
        // Refactorize only when the representation is stale (row added /
        // never factorized / eta file full); otherwise just recompute the
        // basic values under the (possibly changed) bounds.
        if self.factor.needs_refactor() && !self.ensure_factorized() {
            self.status = LpStatus::Numerical;
            return self.status;
        }
        self.compute_basics();
        let tol = self.params.feas_tol;
        let dtol = self.params.opt_tol;
        let mut stall = 0usize;
        loop {
            if self.iterations >= self.params.iter_limit {
                self.status = LpStatus::IterLimit;
                return self.status;
            }
            if self.factor.needs_refactor() && !self.ensure_factorized() {
                self.status = LpStatus::Numerical;
                return self.status;
            }
            // Leaving candidate: most infeasible basic.
            let mut leave: Option<(usize, bool, f64)> = None; // (pos, below, viol)
            for (pos, &col) in self.basis_cols.iter().enumerate() {
                let v = self.xval[col];
                let (lb, ub) = (self.col_lb(col), self.col_ub(col));
                if v < lb - tol {
                    let viol = lb - v;
                    if leave.as_ref().is_none_or(|l| viol > l.2) {
                        leave = Some((pos, true, viol));
                    }
                } else if v > ub + tol {
                    let viol = v - ub;
                    if leave.as_ref().is_none_or(|l| viol > l.2) {
                        leave = Some((pos, false, viol));
                    }
                }
            }
            let Some((rpos, below, _)) = leave else {
                // Primal feasible: polish with the primal loop, which will
                // confirm optimality (or fix mild dual infeasibility).
                return self.solve_primal();
            };

            // Row rpos of B⁻¹N: ρ = B⁻ᵀ e_r, ᾱ_j = ρᵀ a_j.
            let mut e = vec![0.0; self.m()];
            e[rpos] = 1.0;
            let rho = self.factor.btran(&e);
            // Current duals for the ratio test.
            let cb = self.basic_costs(Phase::Two);
            let y = self.factor.btran(&cb);

            // sign = +1 when the leaving variable must increase.
            let sgn = if below { 1.0 } else { -1.0 };
            let bland = stall > self.params.stall_limit;
            let mut enter: Option<(usize, f64)> = None; // (col, ratio)
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for j in 0..self.n() + self.m() {
                if self.vstat[j] == VarStatus::Basic {
                    continue;
                }
                let (lb, ub) = (self.col_lb(j), self.col_ub(j));
                if lb == ub {
                    continue;
                }
                let alpha = self.col_dot(j, &rho) * sgn;
                // x_Br changes by −ᾱ_j·Δx_j (with ᾱ in unsigned orientation);
                // after sign-folding we need: at-lower j with alpha < 0 can
                // increase, at-upper j with alpha > 0 can decrease, free j any.
                let d = self.col_obj(j) - self.col_dot(j, &y);
                let (ok, ratio) = match self.vstat[j] {
                    VarStatus::AtLower | VarStatus::Free if alpha < -self.params.piv_tol => {
                        (true, (d.max(0.0)) / (-alpha))
                    }
                    VarStatus::AtUpper | VarStatus::Free if alpha > self.params.piv_tol => {
                        (true, ((-d).max(0.0)) / alpha)
                    }
                    _ => (false, 0.0),
                };
                if !ok {
                    continue;
                }
                if bland {
                    enter = Some((j, ratio));
                    break;
                }
                if ratio < best_ratio - dtol
                    || (ratio < best_ratio + dtol && alpha.abs() > best_alpha)
                {
                    best_ratio = ratio;
                    best_alpha = alpha.abs();
                    enter = Some((j, ratio));
                }
            }
            let Some((q, _)) = enter else {
                self.status = LpStatus::Infeasible;
                return self.status;
            };

            self.iterations += 1;
            self.total_iterations += 1;

            // Pivot: q enters at position rpos; leaving goes to its
            // violated bound.
            self.gather_col(q);
            let w = self.factor.ftran(&self.colbuf);
            if w[rpos].abs() <= self.params.piv_tol {
                // Numerically void pivot; refactorize and retry, falling
                // back to primal if it persists.
                if !self.force_refactor() {
                    self.status = LpStatus::Numerical;
                    return self.status;
                }
                stall += 1;
                if stall > self.params.stall_limit + 20 {
                    return self.solve_primal();
                }
                continue;
            }
            let leaving = self.basis_cols[rpos];
            let (llb, lub) = (self.col_lb(leaving), self.col_ub(leaving));
            let lv = self.xval[leaving];
            let target = if below { llb } else { lub };
            // Step length of entering variable: Δ such that leaving reaches
            // its bound: x_leaving + (−w[rpos])·Δ... leaving moves by
            // −w[rpos]·Δ when q moves by Δ (z_B = −B⁻¹N z_N).
            let delta = (target - lv) / (-w[rpos]);
            if delta.abs() <= 1e-12 {
                stall += 1;
            } else {
                stall = 0;
            }
            for (pos, &col) in self.basis_cols.iter().enumerate() {
                self.xval[col] -= w[pos] * delta;
            }
            self.xval[q] += delta;
            self.vstat[leaving] = if below { VarStatus::AtLower } else { VarStatus::AtUpper };
            self.xval[leaving] = target;
            self.vstat[q] = VarStatus::Basic;
            self.basis_cols[rpos] = q;
            if self.factor.update(rpos, w).is_err() && !self.force_refactor() {
                self.status = LpStatus::Numerical;
                return self.status;
            }
        }
    }

    /// Objective value of the current iterate.
    pub fn obj_value(&self) -> f64 {
        self.prob.obj_offset + (0..self.n()).map(|j| self.prob.obj[j] * self.xval[j]).sum::<f64>()
    }

    /// Extracts the full solution bundle for the last solve.
    pub fn extract_solution(&mut self) -> LpSolution {
        let n = self.n();
        let m = self.m();
        let x: Vec<f64> = self.xval[..n].to_vec();
        let mut row_duals = vec![0.0; m];
        let mut reduced = vec![0.0; n];
        if m > 0 && matches!(self.status, LpStatus::Optimal | LpStatus::IterLimit) {
            if self.factor.needs_refactor() {
                let _ = self.ensure_factorized();
            }
            let cb = self.basic_costs(Phase::Two);
            row_duals = self.factor.btran(&cb);
        }
        for (j, rj) in reduced.iter_mut().enumerate() {
            *rj = self.prob.obj[j] - self.col_dot(j, &row_duals);
        }
        let row_activity: Vec<f64> = (0..m)
            .map(|r| self.prob.rows[r].iter().map(|&(j, c)| c * self.xval[j as usize]).sum())
            .collect();
        LpSolution {
            status: self.status,
            obj: self.obj_value(),
            x,
            row_duals,
            reduced_costs: reduced,
            row_activity,
            iterations: self.iterations,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Block {
    /// Entering variable hits its own opposite bound (no basis change).
    Flip,
    /// Basic variable at position `pos` leaves at its lower/upper bound.
    Leave { pos: usize, at_upper: bool },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &LpProblem) -> LpSolution {
        let mut s = Simplex::new(p.clone(), SimplexParams::default());
        s.solve_primal();
        s.extract_solution()
    }

    #[test]
    fn simple_max_as_min() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0  → (8/5, 6/5), obj 14/5
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY, -1.0);
        let y = p.add_var(0.0, f64::INFINITY, -1.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 2.0)]);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 3.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj + 14.0 / 5.0).abs() < 1e-7, "obj = {}", s.obj);
        assert!((s.x[0] - 8.0 / 5.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0 / 5.0).abs() < 1e-7);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y s.t. x + y = 2, x - y = 0 → x=y=1, obj 2.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 1.0);
        let y = p.add_var(0.0, 10.0, 1.0);
        p.add_row(2.0, 2.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(0.0, 0.0, &[(x, 1.0), (y, -1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj - 2.0).abs() < 1e-7);
        assert!((s.x[0] - 1.0).abs() < 1e-7 && (s.x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 0.0);
        p.add_row(5.0, f64::INFINITY, &[(x, 1.0)]);
        assert_eq!(solve(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY, -1.0);
        let y = p.add_var(0.0, f64::INFINITY, 0.0);
        p.add_row(0.0, f64::INFINITY, &[(x, -1.0), (y, 1.0)]);
        assert_eq!(solve(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn bound_flip_only_problem() {
        // No rows at all: min -x, x in [2, 7] → x = 7.
        let mut p = LpProblem::new();
        p.add_var(2.0, 7.0, -1.0);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 7.0).abs() < 1e-9);
        assert!((s.obj + 7.0).abs() < 1e-9);
    }

    #[test]
    fn ranged_row_lower_side_binds() {
        // min x + y s.t. 3 <= x + y <= 10 → obj 3.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 1.0);
        let y = p.add_var(0.0, 10.0, 1.0);
        p.add_row(3.0, 10.0, &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj - 3.0).abs() < 1e-7);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 and x + y >= -3, y in [0, 1] → x = -4 (y=1).
        let mut p = LpProblem::new();
        let x = p.add_var(-5.0, f64::INFINITY, 1.0);
        let y = p.add_var(0.0, 1.0, 0.0);
        p.add_row(-3.0, f64::INFINITY, &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] + 4.0).abs() < 1e-7, "x = {}", s.x[0]);
    }

    #[test]
    fn free_variable_enters() {
        // min y s.t. y >= x - 2, y >= -x, x free → x = 1, y = -1.
        let mut p = LpProblem::new();
        let x = p.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = p.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_row(-2.0, f64::INFINITY, &[(y, 1.0), (x, -1.0)]); // y - x >= -2
        p.add_row(0.0, f64::INFINITY, &[(y, 1.0), (x, 1.0)]); // y + x >= 0
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj + 1.0).abs() < 1e-7, "obj = {}", s.obj);
    }

    #[test]
    fn duals_satisfy_complementary_slackness() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY, -3.0);
        let y = p.add_var(0.0, f64::INFINITY, -5.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0)]);
        p.add_row(f64::NEG_INFINITY, 12.0, &[(y, 2.0)]);
        p.add_row(f64::NEG_INFINITY, 18.0, &[(x, 3.0), (y, 2.0)]);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj + 36.0).abs() < 1e-6); // classic Dantzig example
                                              // strong duality: obj = Σ y_i · rhs_i for binding rows
        let dual_obj: f64 = s.row_duals[0] * 4.0 + s.row_duals[1] * 12.0 + s.row_duals[2] * 18.0;
        assert!((dual_obj - s.obj).abs() < 1e-6, "dual {} vs {}", dual_obj, s.obj);
    }

    #[test]
    fn warm_start_after_bound_change() {
        // Solve, then branch-like bound change, dual simplex re-solve.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, -1.0);
        let y = p.add_var(0.0, 10.0, -2.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        let mut s = Simplex::new(p, SimplexParams::default());
        assert_eq!(s.solve_primal(), LpStatus::Optimal);
        let first = s.obj_value();
        assert!((first + 8.0).abs() < 1e-7); // y=4 → wait y<=4 via row, y=4, obj -8

        s.set_var_bounds(VarId(1), 0.0, 1.0); // y <= 1
        assert_eq!(s.solve_dual(), LpStatus::Optimal);
        let second = s.obj_value();
        assert!((second + 5.0).abs() < 1e-7, "obj = {second}"); // x=3,y=1
    }

    #[test]
    fn warm_start_after_adding_cut() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, -1.0);
        let y = p.add_var(0.0, 10.0, -1.0);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0), (y, 1.0)]);
        let mut s = Simplex::new(p, SimplexParams::default());
        assert_eq!(s.solve_primal(), LpStatus::Optimal);
        assert!((s.obj_value() + 6.0).abs() < 1e-7);
        // "cut": x <= 2
        s.add_row(f64::NEG_INFINITY, 2.0, &[(VarId(0), 1.0)]);
        assert_eq!(s.solve_dual(), LpStatus::Optimal);
        assert!((s.obj_value() + 6.0).abs() < 1e-7); // still -6: x=2,y=4
        s.add_row(f64::NEG_INFINITY, 3.0, &[(VarId(1), 1.0)]);
        assert_eq!(s.solve_dual(), LpStatus::Optimal);
        assert!((s.obj_value() + 5.0).abs() < 1e-7); // x=2,y=3
    }

    #[test]
    fn dual_detects_infeasible_after_branching() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 1.0);
        let y = p.add_var(0.0, 10.0, 1.0);
        p.add_row(8.0, f64::INFINITY, &[(x, 1.0), (y, 1.0)]);
        let mut s = Simplex::new(p, SimplexParams::default());
        assert_eq!(s.solve_primal(), LpStatus::Optimal);
        s.set_var_bounds(VarId(0), 0.0, 3.0);
        s.set_var_bounds(VarId(1), 0.0, 3.0);
        assert_eq!(s.solve_dual(), LpStatus::Infeasible);
    }

    #[test]
    fn basis_snapshot_round_trip() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, -1.0);
        let y = p.add_var(0.0, 10.0, -2.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        let mut s = Simplex::new(p.clone(), SimplexParams::default());
        s.solve_primal();
        let snap = s.basis_snapshot();

        let mut s2 = Simplex::new(p, SimplexParams::default());
        s2.set_basis(&snap);
        assert_eq!(s2.solve_dual(), LpStatus::Optimal);
        assert!((s2.obj_value() - s.obj_value()).abs() < 1e-9);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut p = LpProblem::new();
        let x = p.add_var(3.0, 3.0, -1.0);
        let y = p.add_var(0.0, 10.0, -1.0);
        p.add_row(f64::NEG_INFINITY, 5.0, &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert_eq!(s.x[0], 3.0);
        assert!((s.x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant rows through the same vertex.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY, -1.0);
        let y = p.add_var(0.0, f64::INFINITY, -1.0);
        for k in 1..=6 {
            let kf = k as f64;
            p.add_row(f64::NEG_INFINITY, 2.0 * kf, &[(x, kf), (y, kf)]);
        }
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj + 2.0).abs() < 1e-7);
    }
}
