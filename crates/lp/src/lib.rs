//! Bounded-variable revised simplex LP solver.
//!
//! This crate is the CPLEX/SoPlex stand-in for the ugrs suite: the LP
//! relaxation engine that the CIP branch-and-cut framework (and through it
//! the Steiner and MISDP solvers) drives. It supports the operations a
//! branch-cut-and-bound loop needs:
//!
//! * solve from scratch (primal simplex with a composite phase 1),
//! * change variable bounds and re-optimize (dual simplex warm start —
//!   this is what branching does),
//! * append rows and re-optimize (dual simplex warm start — this is what
//!   cutting-plane separation does),
//! * extract primal values, duals, reduced costs and the basis.
//!
//! # Formulation
//!
//! Internally every problem is held in the computational form
//!
//! ```text
//! min cᵀx    s.t.  A x − s = 0,   ℓx ≤ x ≤ ux,   ℓs ≤ s ≤ us
//! ```
//!
//! i.e. each row gets a logical (slack) variable carrying the row's
//! activity bounds, so the constraint matrix is `[A | −I]` and the basis
//! is always square of order `m`. The basis inverse is represented by an
//! LU factorization plus an eta file, refactorized periodically.
//!
//! # Example
//!
//! ```
//! use ugrs_lp::{LpProblem, LpStatus};
//!
//! // min -x - 2y  s.t.  x + y <= 4, y <= 2, 0 <= x,y <= 10
//! let mut p = LpProblem::new();
//! let x = p.add_var(0.0, 10.0, -1.0);
//! let y = p.add_var(0.0, 10.0, -2.0);
//! p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
//! p.add_row(f64::NEG_INFINITY, 2.0, &[(y, 1.0)]);
//! let sol = p.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.obj - (-6.0)).abs() < 1e-6); // x=2, y=2
//! ```

pub mod basis;
pub mod problem;
pub mod simplex;

pub use problem::{LpProblem, RowId, VarId};
pub use simplex::{LpSolution, LpStatus, Simplex, SimplexParams, VarStatus};

/// Default primal/dual feasibility tolerance.
pub const FEAS_TOL: f64 = 1e-7;
/// Default reduced-cost (optimality) tolerance.
pub const OPT_TOL: f64 = 1e-7;
/// The solver's notion of infinity for bounds.
pub const INF: f64 = 1e100;

/// Clamp user-provided bounds to the solver's finite infinity.
#[inline]
pub(crate) fn clamp_bound(b: f64) -> f64 {
    b.clamp(-INF, INF)
}
