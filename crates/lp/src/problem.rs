//! LP problem builder: variables, bounds, objective, ranged rows.

use crate::{clamp_bound, INF};

/// Index of a structural variable in an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of a row (linear constraint) in an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

/// A linear program `min cᵀx s.t. lhs ≤ Ax ≤ rhs, ℓ ≤ x ≤ u` under
/// construction. Rows are *ranged* (two-sided); use `-inf`/`+inf` for
/// one-sided constraints and `lhs == rhs` for equalities.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    pub(crate) obj: Vec<f64>,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    /// Column-wise coefficients: per variable, (row, value) pairs.
    pub(crate) cols: Vec<Vec<(u32, f64)>>,
    /// Row-wise coefficients, kept in sync with `cols`.
    pub(crate) rows: Vec<Vec<(u32, f64)>>,
    pub(crate) row_lhs: Vec<f64>,
    pub(crate) row_rhs: Vec<f64>,
    /// Constant term added to every objective value.
    pub obj_offset: f64,
}

impl LpProblem {
    /// Empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with bounds `[lb, ub]` and objective coefficient
    /// `obj` (minimization). Returns its id.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        let (lb, ub) = (clamp_bound(lb), clamp_bound(ub));
        assert!(lb <= ub, "variable bounds crossed: [{lb}, {ub}]");
        let id = VarId(self.obj.len() as u32);
        self.obj.push(obj);
        self.lb.push(lb);
        self.ub.push(ub);
        self.cols.push(Vec::new());
        id
    }

    /// Adds a ranged row `lhs ≤ Σ coef·x ≤ rhs`. Duplicate variable entries
    /// are merged. Returns the row id.
    pub fn add_row(&mut self, lhs: f64, rhs: f64, terms: &[(VarId, f64)]) -> RowId {
        let (lhs, rhs) = (clamp_bound(lhs), clamp_bound(rhs));
        assert!(lhs <= rhs, "row sides crossed: [{lhs}, {rhs}]");
        let r = self.rows.len() as u32;
        let mut row: Vec<(u32, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!((v.0 as usize) < self.obj.len(), "unknown variable {v:?}");
            if c == 0.0 {
                continue;
            }
            if let Some(e) = row.iter_mut().find(|(j, _)| *j == v.0) {
                e.1 += c;
            } else {
                row.push((v.0, c));
            }
        }
        for &(j, c) in &row {
            self.cols[j as usize].push((r, c));
        }
        self.rows.push(row);
        self.row_lhs.push(lhs);
        self.row_rhs.push(rhs);
        RowId(r)
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Objective coefficient of `v`.
    pub fn obj_coef(&self, v: VarId) -> f64 {
        self.obj[v.0 as usize]
    }

    /// Sets the objective coefficient of `v`.
    pub fn set_obj_coef(&mut self, v: VarId, c: f64) {
        self.obj[v.0 as usize] = c;
    }

    /// Bounds of `v`.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.lb[v.0 as usize], self.ub[v.0 as usize])
    }

    /// Sets the bounds of `v` (must not cross).
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        let (lb, ub) = (clamp_bound(lb), clamp_bound(ub));
        assert!(lb <= ub, "variable bounds crossed: [{lb}, {ub}]");
        self.lb[v.0 as usize] = lb;
        self.ub[v.0 as usize] = ub;
    }

    /// Row sides of `r`.
    pub fn row_sides(&self, r: RowId) -> (f64, f64) {
        (self.row_lhs[r.0 as usize], self.row_rhs[r.0 as usize])
    }

    /// Coefficients of row `r` as `(VarId, value)` pairs.
    pub fn row_coefs(&self, r: RowId) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.rows[r.0 as usize].iter().map(|&(j, c)| (VarId(j), c))
    }

    /// Activity `Σ coef·x` of row `r` at the point `x`.
    pub fn row_activity(&self, r: RowId, x: &[f64]) -> f64 {
        self.rows[r.0 as usize].iter().map(|&(j, c)| c * x[j as usize]).sum()
    }

    /// Objective value `cᵀx + offset` at the point `x`.
    pub fn obj_value(&self, x: &[f64]) -> f64 {
        self.obj_offset + self.obj.iter().zip(x.iter()).map(|(c, v)| c * v).sum::<f64>()
    }

    /// Checks `x` for primal feasibility within `tol` (bounds and rows).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (j, &xj) in x.iter().enumerate() {
            if xj < self.lb[j] - tol || xj > self.ub[j] + tol {
                return false;
            }
        }
        for r in 0..self.num_rows() {
            let a = self.row_activity(RowId(r as u32), x);
            if a < self.row_lhs[r] - tol || a > self.row_rhs[r] + tol {
                return false;
            }
        }
        true
    }

    /// True if the bound is the solver's minus infinity.
    pub fn is_neg_inf(b: f64) -> bool {
        b <= -INF
    }

    /// True if the bound is the solver's plus infinity.
    pub fn is_pos_inf(b: f64) -> bool {
        b >= INF
    }

    /// Solves the problem from scratch with default parameters.
    pub fn solve(&self) -> crate::LpSolution {
        let mut s = crate::Simplex::new(self.clone(), crate::SimplexParams::default());
        s.solve_primal();
        s.extract_solution()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shapes() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 2.0);
        let y = p.add_var(-1.0, f64::INFINITY, -3.0);
        let r = p.add_row(1.0, 1.0, &[(x, 1.0), (y, 2.0)]);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_rows(), 1);
        assert_eq!(p.obj_coef(y), -3.0);
        assert_eq!(p.bounds(x), (0.0, 1.0));
        assert_eq!(p.row_sides(r), (1.0, 1.0));
        assert!(LpProblem::is_pos_inf(p.bounds(y).1));
    }

    #[test]
    fn duplicate_terms_merge() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 0.0);
        let r = p.add_row(0.0, 5.0, &[(x, 1.0), (x, 2.0)]);
        let coefs: Vec<_> = p.row_coefs(r).collect();
        assert_eq!(coefs, vec![(x, 3.0)]);
    }

    #[test]
    fn activity_and_objective() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 1.0);
        let y = p.add_var(0.0, 10.0, 2.0);
        p.obj_offset = 5.0;
        let r = p.add_row(0.0, 100.0, &[(x, 2.0), (y, -1.0)]);
        let pt = vec![3.0, 4.0];
        assert_eq!(p.row_activity(r, &pt), 2.0);
        assert_eq!(p.obj_value(&pt), 5.0 + 3.0 + 8.0);
        assert!(p.is_feasible(&pt, 1e-9));
        assert!(!p.is_feasible(&[100.0, 0.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "bounds crossed")]
    fn crossed_bounds_panic() {
        let mut p = LpProblem::new();
        p.add_var(1.0, 0.0, 0.0);
    }
}
