//! Basis factorization: LU plus an eta file (product-form updates).
//!
//! The simplex engine represents the basis inverse as
//! `B⁻¹ = Eₖ⁻¹ ⋯ E₁⁻¹ (LU)⁻¹`, where each eta matrix `Eᵢ` is the identity
//! with one column replaced by the pivot column of update `i`. FTRAN and
//! BTRAN apply the factors in the appropriate order; the factorization is
//! rebuilt from scratch every [`BasisFactor::REFACTOR_INTERVAL`] updates
//! (or when an update pivot is too small to be trusted).

use ugrs_linalg::{LuFactor, Matrix};

/// One product-form update: basis position `pos` was replaced, with pivot
/// column `col = B⁻¹ a_entering` (taken *before* the update).
#[derive(Clone, Debug)]
struct Eta {
    pos: usize,
    col: Vec<f64>,
}

/// Errors surfaced by the basis layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BasisError {
    /// The candidate basis matrix was singular.
    Singular,
    /// An eta pivot was numerically unusable; the caller should
    /// refactorize and retry the pivot.
    UnstablePivot,
}

/// Maintains an invertible representation of the current basis matrix.
pub struct BasisFactor {
    m: usize,
    lu: Option<LuFactor>,
    etas: Vec<Eta>,
}

impl BasisFactor {
    /// Refactorize after this many eta updates.
    pub const REFACTOR_INTERVAL: usize = 60;

    /// New, unfactorized container for bases of order `m`.
    pub fn new(m: usize) -> Self {
        BasisFactor { m, lu: None, etas: Vec::new() }
    }

    /// Basis order.
    pub fn order(&self) -> usize {
        self.m
    }

    /// Number of eta updates since the last refactorization.
    pub fn num_updates(&self) -> usize {
        self.etas.len()
    }

    /// True if a refactorization is due (interval reached or never
    /// factorized).
    pub fn needs_refactor(&self) -> bool {
        self.lu.is_none() || self.etas.len() >= Self::REFACTOR_INTERVAL
    }

    /// Factorizes the dense basis matrix `b` (columns already gathered by
    /// the caller), discarding the eta file.
    pub fn refactor(&mut self, b: &Matrix) -> Result<(), BasisError> {
        debug_assert_eq!(b.rows(), self.m);
        self.etas.clear();
        match LuFactor::with_pivot_tol(b, 1e-11) {
            Ok(f) => {
                self.lu = Some(f);
                Ok(())
            }
            Err(_) => {
                self.lu = None;
                Err(BasisError::Singular)
            }
        }
    }

    /// FTRAN: returns `B⁻¹ v`.
    pub fn ftran(&self, v: &[f64]) -> Vec<f64> {
        let lu = self.lu.as_ref().expect("basis not factorized");
        let mut x = lu.solve(v).expect("factorized basis must solve");
        for eta in &self.etas {
            let xr = x[eta.pos] / eta.col[eta.pos];
            for (i, (xi, &d)) in x.iter_mut().zip(&eta.col).enumerate() {
                if i != eta.pos && d != 0.0 {
                    *xi -= d * xr;
                }
            }
            x[eta.pos] = xr;
        }
        x
    }

    /// BTRAN: returns `B⁻ᵀ v` (equivalently the `y` with `yᵀB = vᵀ`).
    pub fn btran(&self, v: &[f64]) -> Vec<f64> {
        let lu = self.lu.as_ref().expect("basis not factorized");
        let mut c = v.to_vec();
        for eta in self.etas.iter().rev() {
            // Solve Eᵀ u = c:  u_i = c_i (i ≠ pos),
            // u_pos = (c_pos − Σ_{i≠pos} d_i c_i) / d_pos.
            let mut s = c[eta.pos];
            for (i, (&d, &ci)) in eta.col.iter().zip(&c).enumerate() {
                if i != eta.pos {
                    s -= d * ci;
                }
            }
            c[eta.pos] = s / eta.col[eta.pos];
        }
        lu.solve_transposed(&c).expect("factorized basis must solve")
    }

    /// Records the pivot that replaces basis position `pos`; `pivot_col`
    /// must be `B⁻¹ a_entering` w.r.t. the *current* representation.
    /// Fails with [`BasisError::UnstablePivot`] when the pivot element is
    /// too small, in which case the caller should refactorize.
    pub fn update(&mut self, pos: usize, pivot_col: Vec<f64>) -> Result<(), BasisError> {
        let piv = pivot_col[pos];
        if piv.abs() < 1e-10 || !piv.is_finite() {
            return Err(BasisError::UnstablePivot);
        }
        self.etas.push(Eta { pos, col: pivot_col });
        Ok(())
    }

    /// Drops all state (used when the row dimension changes).
    pub fn reset(&mut self, m: usize) {
        self.m = m;
        self.lu = None;
        self.etas.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, v: Vec<f64>) -> Matrix {
        Matrix::from_rows(rows, rows, v).unwrap()
    }

    #[test]
    fn ftran_btran_without_updates() {
        let b = dense(2, vec![2.0, 0.0, 0.0, 4.0]);
        let mut f = BasisFactor::new(2);
        f.refactor(&b).unwrap();
        assert_eq!(f.ftran(&[2.0, 4.0]), vec![1.0, 1.0]);
        assert_eq!(f.btran(&[2.0, 4.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn update_matches_explicit_refactor() {
        // Start with B = I, replace column 1 with a = [1, 3]ᵀ.
        let mut f = BasisFactor::new(2);
        f.refactor(&Matrix::identity(2)).unwrap();
        let a = vec![1.0, 3.0];
        let pivot_col = f.ftran(&a); // = a since B = I
        f.update(1, pivot_col).unwrap();

        let bnew = dense(2, vec![1.0, 1.0, 0.0, 3.0]);
        let mut fresh = BasisFactor::new(2);
        fresh.refactor(&bnew).unwrap();

        let v = vec![5.0, -2.0];
        let x1 = f.ftran(&v);
        let x2 = fresh.ftran(&v);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-12);
        }
        let y1 = f.btran(&v);
        let y2 = fresh.btran(&v);
        for (p, q) in y1.iter().zip(&y2) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn chained_updates_stay_consistent() {
        let mut f = BasisFactor::new(3);
        f.refactor(&Matrix::identity(3)).unwrap();
        // Three successive column replacements; track the explicit basis.
        let mut b = Matrix::identity(3);
        let cols = [
            (0usize, vec![2.0, 1.0, 0.0]),
            (2usize, vec![0.0, 1.0, 3.0]),
            (1usize, vec![1.0, 1.0, 1.0]),
        ];
        for (pos, a) in cols.iter() {
            let pc = f.ftran(a);
            f.update(*pos, pc).unwrap();
            for i in 0..3 {
                b[(i, *pos)] = a[i];
            }
        }
        let mut fresh = BasisFactor::new(3);
        fresh.refactor(&b).unwrap();
        let v = vec![1.0, 2.0, 3.0];
        let (x1, x2) = (f.ftran(&v), fresh.ftran(&v));
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-10);
        }
        let (y1, y2) = (f.btran(&v), fresh.btran(&v));
        for (p, q) in y1.iter().zip(&y2) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_basis_rejected() {
        let b = dense(2, vec![1.0, 2.0, 2.0, 4.0]);
        let mut f = BasisFactor::new(2);
        assert_eq!(f.refactor(&b), Err(BasisError::Singular));
    }

    #[test]
    fn tiny_pivot_rejected() {
        let mut f = BasisFactor::new(2);
        f.refactor(&Matrix::identity(2)).unwrap();
        assert_eq!(f.update(0, vec![1e-13, 1.0]), Err(BasisError::UnstablePivot));
    }

    #[test]
    fn refactor_interval_flag() {
        let mut f = BasisFactor::new(1);
        assert!(f.needs_refactor());
        f.refactor(&Matrix::identity(1)).unwrap();
        assert!(!f.needs_refactor());
        for _ in 0..BasisFactor::REFACTOR_INTERVAL {
            f.update(0, vec![1.0]).unwrap();
        }
        assert!(f.needs_refactor());
    }
}
