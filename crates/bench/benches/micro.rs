//! Criterion micro-benchmarks for the computational kernels the tables
//! stand on, plus the ablation benchmarks for the design choices called
//! out in DESIGN.md (reductions on/off, extended reductions on/off,
//! strong vs slim IP model, LP vs SDP relaxation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ugrs_lp::{LpProblem, Simplex, SimplexParams};
use ugrs_misdp::gen as mgen;
use ugrs_misdp::{Approach, MisdpSolver};
use ugrs_sdp::{solve as sdp_solve, SdpOptions};
use ugrs_steiner::dualascent::dual_ascent;
use ugrs_steiner::gen as sgen;
use ugrs_steiner::maxflow::MaxFlow;
use ugrs_steiner::reduce::{reduce, ReduceParams};
use ugrs_steiner::sap::SapGraph;
use ugrs_steiner::{SteinerOptions, SteinerSolver};

fn lp_random(n: usize, m: usize, seed: u64) -> LpProblem {
    // Deterministic pseudo-random LP (transportation-flavoured).
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % 1000) as f64 / 100.0
    };
    let mut p = LpProblem::new();
    let vars: Vec<_> = (0..n).map(|_| p.add_var(0.0, 10.0, next() - 5.0)).collect();
    for r in 0..m {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .filter(|(j, _)| (j + r) % 3 == 0)
            .map(|(_, &v)| (v, next() - 5.0))
            .collect();
        p.add_row(-20.0, 20.0, &terms);
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let p = lp_random(120, 60, 7);
    c.bench_function("lp/simplex_120x60", |b| {
        b.iter(|| {
            let mut s = Simplex::new(black_box(p.clone()), SimplexParams::default());
            s.solve_primal();
            black_box(s.obj_value())
        })
    });
    c.bench_function("lp/dual_warmstart_bound_change", |b| {
        let mut s = Simplex::new(p.clone(), SimplexParams::default());
        s.solve_primal();
        b.iter(|| {
            s.set_var_bounds(ugrs_lp::VarId(0), 0.0, 4.0);
            s.solve_dual();
            s.set_var_bounds(ugrs_lp::VarId(0), 0.0, 10.0);
            s.solve_dual();
            black_box(s.obj_value())
        })
    });
}

fn bench_steiner_kernels(c: &mut Criterion) {
    let g = sgen::hypercube(5, sgen::CostScheme::Perturbed, 3);
    let sap = SapGraph::from_graph(&g, SapGraph::pick_root(&g));
    c.bench_function("steiner/dual_ascent_hc5", |b| {
        b.iter(|| black_box(dual_ascent(black_box(&sap), 8).bound))
    });
    c.bench_function("steiner/maxflow_hc5", |b| {
        b.iter(|| {
            let mut mf = MaxFlow::new(sap.n);
            for arc in &sap.arcs {
                mf.add_arc(arc.tail as usize, arc.head as usize, 0.5);
            }
            black_box(mf.max_flow(sap.root, (sap.root + 7) % sap.n, 1.0))
        })
    });
    c.bench_function("steiner/reduce_cc3-4", |b| {
        b.iter(|| {
            let mut g = sgen::code_covering(3, 4, 10, sgen::CostScheme::Perturbed, 101);
            black_box(reduce(&mut g, &ReduceParams::default()).total_eliminations())
        })
    });
}

fn bench_sdp(c: &mut Criterion) {
    let p = mgen::truss_topology(5, 12, 5).sdp_relaxation(&[0.0; 12], &[1.0; 12]);
    c.bench_function("sdp/barrier_ttd5x12", |b| {
        b.iter(|| black_box(sdp_solve(black_box(&p), &SdpOptions::default()).obj))
    });
}

/// Ablation: graph reductions on/off (DESIGN.md: "reductions are
/// extremely important").
fn bench_ablation_reductions(c: &mut Criterion) {
    let g = sgen::code_covering(2, 4, 6, sgen::CostScheme::Perturbed, 77);
    c.bench_function("ablation/steiner_with_reductions", |b| {
        b.iter(|| {
            let mut s = SteinerSolver::new(g.clone(), SteinerOptions::default());
            black_box(s.solve().best_cost)
        })
    });
    c.bench_function("ablation/steiner_without_reductions", |b| {
        b.iter(|| {
            let mut s = SteinerSolver::new(
                g.clone(),
                SteinerOptions { skip_reductions: true, ..Default::default() },
            );
            black_box(s.solve().best_cost)
        })
    });
}

/// Ablation: LP vs SDP relaxation on one instance of each family.
fn bench_ablation_approach(c: &mut Criterion) {
    let ttd = mgen::truss_topology(4, 9, 9);
    let cls = mgen::cardinality_ls(7, 3, 9);
    for (name, p) in [("ttd", &ttd), ("cls", &cls)] {
        for (aname, approach) in [("sdp", Approach::Sdp), ("lp", Approach::Lp)] {
            c.bench_function(&format!("ablation/misdp_{name}_{aname}"), |b| {
                b.iter(|| {
                    let res = MisdpSolver::new(p.clone(), approach, ugrs_cip::Settings::default())
                        .solve();
                    black_box(res.best_obj)
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_lp, bench_steiner_kernels, bench_sdp, bench_ablation_reductions, bench_ablation_approach
}
criterion_main!(benches);
