//! **Table 3 reproduction** — "Statistics for solving hc10p on
//! supercomputers": a sequence of *racing* runs on an hc-like instance,
//! each re-run **from scratch with the best solution found so far**
//! injected (§4.1: "we just reran from scratch with the best solution
//! from run 1 with racing ramp-up — since the best solution can be used
//! for presolving, propagation, and heuristics"). The primal bound must
//! improve (or hold) across runs.
//!
//! `cargo run -p ugrs-bench --release --bin table3 [-- --limit <s per run>]`

use ugrs_bench::fmt_time;
use ugrs_core::{ParallelOptions, RampUp};
use ugrs_glue::{stp_racing_settings, ug_solve_stp_seeded};
use ugrs_steiner::gen::{hypercube, CostScheme};
use ugrs_steiner::reduce::ReduceParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let limit: f64 = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(6.0);

    // The hc10p stand-in: a perturbed-cost hypercube.
    let graph = hypercube(5, CostScheme::Perturbed, 1010);
    println!("Table 3: statistics for solving hc10p~ (generated analogue) via racing re-runs");
    println!(
        "instance: {} vertices, {} edges, {} terminals; per-run limit {limit}s\n",
        graph.num_alive_nodes(),
        graph.num_alive_edges(),
        graph.num_terminals()
    );
    println!(
        "{:>4} {:>10} {:>7} {:>9} {:>7} {:>8} {:>12} {:>12} {:>8} {:>12} {:>11}",
        "Run",
        "Computer",
        "Cores",
        "Time(s)",
        "Idle%",
        "Trans.",
        "Primal",
        "Dual",
        "Gap%",
        "Nodes",
        "Open"
    );

    let cores = 4usize;
    let mut best: Option<(Vec<f64>, f64)> = None; // model assignment + internal obj
    let mut best_cost = f64::INFINITY;
    for run in 1..=4 {
        // Fresh racing seeds per run: each restart must explore new search
        // trees (at the paper's scale this happens naturally; at ours the
        // permutation seeds provide the diversification).
        let mut settings = stp_racing_settings(cores);
        for s in settings.iter_mut() {
            s.params["seed"] = serde_json::json!((run * cores + s.index) as u64);
            s.name = format!("{}-run{}", s.name, run);
        }
        let options = ParallelOptions {
            num_solvers: cores,
            time_limit: limit,
            ramp_up: RampUp::Racing {
                settings,
                time_trigger: (limit * 0.25).max(0.2),
                open_nodes_trigger: 24,
            },
            ..Default::default()
        };
        let res = ug_solve_stp_seeded(&graph, &ReduceParams::default(), options, best.clone());
        let primal = res.tree.as_ref().map(|(_, c)| *c).unwrap_or(f64::INFINITY);
        println!(
            "{:>4} {:>10} {:>7} {:>9} {:>7.1} {:>8} {:>12.1} {:>12.4} {:>8.2} {:>12} {:>11}",
            run,
            "ThreadComm",
            cores,
            fmt_time(res.stats.wall_time),
            res.stats.idle_percent,
            res.stats.transferred,
            primal,
            res.dual_bound,
            res.stats.gap_percent(),
            res.stats.nodes_total,
            res.stats.open_nodes,
        );
        // Primal bound may only improve along the chain (the table's
        // upper-bound column shrinks 59,797 → 59,776 → 59,772 → 59,733).
        assert!(primal <= best_cost + 1e-6, "primal regressed: {primal} > {best_cost}");
        if primal < best_cost {
            best_cost = primal;
            println!("{:>4} new best solution: {}", "", primal);
        }
        if res.solved {
            println!("\nsolved to optimality in run {run} ✓");
            return;
        }
        // Carry the model assignment into the next run, like the paper
        // carries the improved solution file.
        if let Some(sol) = res.ug.solution {
            best = Some(sol);
        }
    }
    println!("\nbest solution after all runs: {best_cost} (raise --limit to prove optimality)");
}
