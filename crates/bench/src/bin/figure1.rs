//! **Figure 1 reproduction** — "Racing ramp-up statistics for the
//! different settings over CBLIB": run every generated MISDP instance
//! under racing with the full settings list, record which settings
//! bundle wins each race, and print the winner histogram split by test
//! set. Instances solved to optimality *during* racing are excluded, as
//! in the paper.
//!
//! Expected shape (§4.2): CLS winners (almost) exclusively LP-based
//! (even indices); MkP winners almost exclusively SDP-based (odd
//! indices); TTD mixed.
//!
//! `cargo run -p ugrs-bench --release --bin figure1 [-- --limit <s>] [--settings <n>] [--per-family <k>]`

use ugrs_core::{ParallelOptions, RampUp};
use ugrs_glue::{misdp_racing_settings, ug_solve_misdp};
use ugrs_misdp::gen::table4_testsets;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let limit: f64 = num_arg(&args, "--limit").unwrap_or(20.0);
    let nsettings: usize = num_arg(&args, "--settings").unwrap_or(8.0) as usize;
    let per_family: usize = num_arg(&args, "--per-family").unwrap_or(6.0) as usize;

    let sets = table4_testsets(per_family);
    let settings = misdp_racing_settings(nsettings);
    println!("Figure 1: racing winner statistics over the generated CBLIB-like sets");
    println!(
        "({} settings — odd 1-based = SDP, even = LP; {} instances per set; limit {limit}s)\n",
        nsettings, per_family
    );

    // winners[set][setting] = count
    let mut winners = vec![vec![0usize; nsettings]; sets.len()];
    let mut in_race = vec![0usize; sets.len()];
    for (si, (name, insts)) in sets.iter().enumerate() {
        for p in insts {
            let options = ParallelOptions {
                num_solvers: nsettings,
                time_limit: limit,
                ramp_up: RampUp::Racing {
                    settings: settings.clone(),
                    time_trigger: (limit * 0.2).max(0.15),
                    open_nodes_trigger: 10,
                },
                ..Default::default()
            };
            let res = ug_solve_misdp(p, options);
            match res.stats.racing_winner {
                Some(w) => winners[si][w] += 1,
                None => in_race[si] += 1, // solved during racing → excluded
            }
        }
        println!(
            "{name}: {} races decided, {} instances solved during racing (excluded)",
            winners[si].iter().sum::<usize>(),
            in_race[si]
        );
    }

    println!("\n# racing winner histogram (rows: 1-based setting index)");
    println!("{:>8} {:>10} {:>6} {:>6} {:>6}  bar", "setting", "approach", "TTD", "CLS", "Mk-P");
    for s in 0..nsettings {
        let approach = if (s + 1) % 2 == 1 { "SDP" } else { "LP" };
        let counts: Vec<usize> = winners.iter().map(|w| w[s]).collect();
        let total: usize = counts.iter().sum();
        println!(
            "{:>8} {:>10} {:>6} {:>6} {:>6}  {}",
            s + 1,
            approach,
            counts[0],
            counts[1],
            counts[2],
            "#".repeat(total)
        );
    }

    // Summary in the paper's terms.
    let lp_share = |si: usize| -> f64 {
        let lp: usize = (0..nsettings).filter(|s| (s + 1) % 2 == 0).map(|s| winners[si][s]).sum();
        let tot: usize = winners[si].iter().sum();
        if tot == 0 {
            f64::NAN
        } else {
            100.0 * lp as f64 / tot as f64
        }
    };
    println!(
        "\nLP-settings share of decided races: TTD {:.0}%, CLS {:.0}%, MkP {:.0}%",
        lp_share(0),
        lp_share(1),
        lp_share(2)
    );
}

fn num_arg(args: &[String], key: &str) -> Option<f64> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
