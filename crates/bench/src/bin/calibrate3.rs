//! Third-stage calibration after the parallel-efficiency fixes: find
//! Table-1 instances in the 5–90 s sequential band with visible parallel
//! speedup, and validate the re-tuned MISDP sets.
//!
//! `cargo run -p ugrs-bench --release --bin calibrate3 [limit]`

use std::time::Instant;
use ugrs_core::ParallelOptions;
use ugrs_glue::{ug_solve_misdp, ug_solve_stp};
use ugrs_misdp::gen as mgen;
use ugrs_misdp::{Approach, MisdpSolver};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;

fn stp_par(name: &str, g: &ugrs_steiner::Graph, threads: usize, limit: f64) -> bool {
    let t0 = Instant::now();
    let options = ParallelOptions { num_solvers: threads, time_limit: limit, ..Default::default() };
    let res = ug_solve_stp(g, &ReduceParams::default(), options);
    println!(
        "STP {name:<12} thr={threads} solved={} cost={:?} dual={:.1} nodes={} trans={} time={:.2}",
        res.solved,
        res.tree.as_ref().map(|(_, c)| *c),
        res.dual_bound,
        res.stats.nodes_total,
        res.stats.transferred,
        t0.elapsed().as_secs_f64()
    );
    res.solved
}

fn main() {
    let limit: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(90.0);
    use sgen::CostScheme::*;
    let cands: Vec<(&str, ugrs_steiner::Graph)> = vec![
        ("hc5u-s2", sgen::hypercube_sparse_terminals(5, 2, Unit, 107)),
        ("hc5p-s2", sgen::hypercube_sparse_terminals(5, 2, Perturbed, 106)),
        ("hc5u-s3", sgen::hypercube_sparse_terminals(5, 3, Unit, 117)),
        ("hc6p-s4", sgen::hypercube_sparse_terminals(6, 4, Perturbed, 116)),
        ("cc3-4p-t16", sgen::code_covering(3, 4, 16, Perturbed, 121)),
        ("cc3-4u-t12", sgen::code_covering(3, 4, 12, Unit, 122)),
        ("cc3-5u-t14", sgen::code_covering(3, 5, 14, Unit, 102)),
        ("bip30", sgen::bipartite(12, 28, 3, Unit, 130)),
    ];
    for (name, g) in &cands {
        let solved = stp_par(name, g, 1, limit);
        if solved {
            stp_par(name, g, 4, limit);
        }
    }
    println!("--- MISDP table4 set sizes ---");
    for (fam, insts) in mgen::table4_testsets(3) {
        for p in insts {
            for approach in [Approach::Sdp, Approach::Lp] {
                let st = ugrs_cip::Settings { time_limit: 30.0, ..Default::default() };
                let t0 = Instant::now();
                let res = MisdpSolver::new(p.clone(), approach, st).solve();
                println!(
                    "MISDP {fam} {:<14} {:?} status={:?} obj={:?} nodes={} time={:.2}",
                    p.name,
                    approach,
                    res.status,
                    res.best_obj,
                    res.stats.nodes,
                    t0.elapsed().as_secs_f64()
                );
            }
            let t0 = Instant::now();
            let res = ug_solve_misdp(
                &p,
                ParallelOptions { num_solvers: 4, time_limit: 30.0, ..Default::default() },
            );
            println!(
                "MISDP {fam} {:<14} par4 solved={} obj={:?} time={:.2}",
                p.name,
                res.solved,
                res.best_obj,
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
