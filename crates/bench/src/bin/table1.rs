//! **Table 1 reproduction** — "Shared memory results for selected
//! Steiner tree instances": solve five PUC-like instances with a growing
//! number of ParaSolvers and report, per instance, the wall time per
//! thread count plus the three diagnostics the paper uses to explain the
//! scaling: root time, the maximum number of simultaneously active
//! solvers, and the first time that maximum was reached.
//!
//! `cargo run -p ugrs-bench --release --bin table1 [-- --limit <s>] [--threads 1,2,4]`

use std::time::Instant;
use ugrs_bench::fmt_time;
use ugrs_core::ParallelOptions;
use ugrs_glue::ug_solve_stp;
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;
use ugrs_steiner::{Graph, SteinerOptions, SteinerSolver};

fn instances() -> Vec<(&'static str, Graph)> {
    use sgen::CostScheme::*;
    // Five Table-1 instances, scaled to laptop size and calibrated (see
    // the calibrate* binaries) to span the paper's scaling spectrum:
    // cc3-4u~ scales worst (long root phase relative to its tree, like
    // the paper's cc3-4p), cc3-5u~/bip~ scale best.
    vec![
        ("cc3-4p~", sgen::code_covering(3, 4, 16, Perturbed, 121)),
        ("cc3-4u~", sgen::code_covering(3, 4, 12, Unit, 122)),
        ("cc3-5u~", sgen::code_covering(3, 5, 16, Unit, 142)),
        ("hc5u~", sgen::hypercube_sparse_terminals(5, 2, Unit, 107)),
        ("bip~", sgen::bipartite(12, 28, 3, Unit, 130)),
    ]
}

struct Column {
    name: &'static str,
    times: Vec<f64>,
    root_time: f64,
    max_solvers: usize,
    first_max_active: f64,
    all_solved: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let limit: f64 = arg(&args, "--limit").unwrap_or(120.0);
    let threads: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    println!("Table 1: shared memory results for selected PUC-like Steiner instances");
    println!("(all times in seconds; per-run limit {limit}s)\n");

    let mut cols = Vec::new();
    for (name, g) in instances() {
        // Root time from a sequential run (the paper's "root time" is a
        // property of the base solver at the root node).
        let mut seq_opts = SteinerOptions::default();
        seq_opts.settings.time_limit = limit;
        let mut seq = SteinerSolver::new(g.clone(), seq_opts);
        let seq_res = seq.solve();
        let root_time = seq_res.cip_stats.as_ref().map(|s| s.root_time).unwrap_or(0.0);

        let mut times = Vec::new();
        let mut max_solvers = 0;
        let mut first_max = 0.0;
        let mut all_solved = true;
        for &t in &threads {
            let t0 = Instant::now();
            let options =
                ParallelOptions { num_solvers: t, time_limit: limit, ..Default::default() };
            let res = ug_solve_stp(&g, &ReduceParams::default(), options);
            times.push(t0.elapsed().as_secs_f64());
            all_solved &= res.solved;
            if t == *threads.last().unwrap() {
                max_solvers = res.stats.max_active;
                first_max = res.stats.first_max_active_time;
            }
            // Consistency: every solved run must agree on the cost.
            if res.solved {
                let cost = res.tree.as_ref().map(|(_, c)| *c).unwrap_or(f64::NAN);
                if let Some(sc) = seq_res.best_cost {
                    assert!(
                        (cost - sc).abs() < 1e-6,
                        "{name}: {t} threads found {cost}, sequential {sc}"
                    );
                }
            }
        }
        cols.push(Column {
            name,
            times,
            root_time,
            max_solvers,
            first_max_active: first_max,
            all_solved,
        });
    }

    // Print in the paper's layout: one column per instance.
    print!("{:>22}", "# Threads");
    for c in &cols {
        print!("{:>12}", c.name);
    }
    println!();
    for (ti, &t) in threads.iter().enumerate() {
        print!("{:>22}", t);
        for c in &cols {
            print!("{:>12}", fmt_time(c.times[ti]));
        }
        println!();
    }
    print!("{:>22}", "root time");
    for c in &cols {
        print!("{:>12}", fmt_time(c.root_time));
    }
    println!();
    print!("{:>22}", "max # solvers");
    for c in &cols {
        print!("{:>12}", c.max_solvers);
    }
    println!();
    print!("{:>22}", "first max active time");
    for c in &cols {
        print!("{:>12}", fmt_time(c.first_max_active));
    }
    println!();
    if cols.iter().any(|c| !c.all_solved) {
        println!("\nnote: some runs hit the time limit; their times are the limit");
    }
}

fn arg(args: &[String], key: &str) -> Option<f64> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
