//! Fourth calibration stage: the remaining Table-1 hc candidates and
//! harder MISDP sizes for the Table-4 / Figure-1 LP-vs-SDP signal.
//!
//! `cargo run -p ugrs-bench --release --bin calibrate4 [limit]`

use std::time::Instant;
use ugrs_core::ParallelOptions;
use ugrs_glue::ug_solve_stp;
use ugrs_misdp::gen as mgen;
use ugrs_misdp::{Approach, MisdpSolver};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;

fn stp_par(name: &str, g: &ugrs_steiner::Graph, threads: usize, limit: f64) -> bool {
    let t0 = Instant::now();
    let options = ParallelOptions { num_solvers: threads, time_limit: limit, ..Default::default() };
    let res = ug_solve_stp(g, &ReduceParams::default(), options);
    println!(
        "STP {name:<12} thr={threads} solved={} cost={:?} dual={:.1} nodes={} trans={} time={:.2}",
        res.solved,
        res.tree.as_ref().map(|(_, c)| *c),
        res.dual_bound,
        res.stats.nodes_total,
        res.stats.transferred,
        t0.elapsed().as_secs_f64()
    );
    res.solved
}

fn misdp_both(p: &ugrs_misdp::MisdpProblem, limit: f64) {
    for approach in [Approach::Sdp, Approach::Lp] {
        let st = ugrs_cip::Settings { time_limit: limit, ..Default::default() };
        let t0 = Instant::now();
        let res = MisdpSolver::new(p.clone(), approach, st).solve();
        println!(
            "MISDP {:<14} {:?} status={:?} obj={:?} nodes={} cuts={} time={:.2}",
            p.name,
            approach,
            res.status,
            res.best_obj,
            res.stats.nodes,
            res.stats.cuts_applied,
            t0.elapsed().as_secs_f64()
        );
    }
}

fn main() {
    let limit: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(60.0);
    use sgen::CostScheme::*;
    let cands: Vec<(&str, ugrs_steiner::Graph)> = vec![
        ("hc6u-s2", sgen::hypercube_sparse_terminals(6, 2, Unit, 118)),
        ("hc6p-s2", sgen::hypercube_sparse_terminals(6, 2, Perturbed, 119)),
        ("hc6u-s3", sgen::hypercube_sparse_terminals(6, 3, Unit, 120)),
        ("bip36", sgen::bipartite(14, 32, 3, Unit, 131)),
    ];
    for (name, g) in &cands {
        let solved = stp_par(name, g, 1, limit);
        if solved {
            stp_par(name, g, 4, limit);
        }
    }
    for p in [
        mgen::min_k_partitioning(10, 3, 401),
        mgen::min_k_partitioning(11, 3, 402),
        mgen::min_k_partitioning(12, 4, 403),
        mgen::cardinality_ls(16, 5, 404),
        mgen::cardinality_ls(18, 6, 405),
        mgen::truss_topology(7, 18, 406),
        mgen::truss_topology(8, 22, 407),
    ] {
        misdp_both(&p, limit.min(30.0));
    }
}
