//! **Serve-mode throughput** — what the standing worker pool buys over
//! per-call process spawning: a batch of small STP jobs pushed through
//! one `ugd-server` (workers spawned once, reused across jobs) versus
//! the same batch as back-to-back `solve_parallel_distributed` calls
//! (fleet spawned and reaped per call). Reports jobs/sec and p50/p95
//! per-job latency for both paths.
//!
//! Requires the worker binary:
//!
//! ```sh
//! cargo build --release --bin ugd-worker
//! cargo run -p ugrs-bench --release --bin table_serve [-- --jobs <n>] [--solvers <k>]
//! ```
//!
//! The worker is looked up next to this executable (both live in
//! `target/<profile>/`); override with the `UGD_WORKER` env var.

use std::time::{Duration, Instant};
use ugrs_core::{ParallelOptions, ServerConfig};
use ugrs_glue::{stp_job, SolveClient, SolveServer};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;
use ugrs_steiner::Graph;

fn worker_binary() -> Option<String> {
    if let Ok(path) = std::env::var("UGD_WORKER") {
        return Some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join("ugd-worker");
    candidate.exists().then(|| candidate.to_string_lossy().into_owned())
}

/// Small bipartite instances that stay nontrivial after presolving —
/// a job whose reduced graph is already solved would measure the
/// trivial-solver fast path instead of an actual distributed solve.
fn instances(jobs: usize) -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    let mut seed = 1000u64;
    while out.len() < jobs {
        let g = sgen::bipartite(5, 9, 3, sgen::CostScheme::Perturbed, seed);
        let mut reduced = g.clone();
        ugrs_steiner::reduce::reduce(&mut reduced, &ReduceParams::default());
        if reduced.num_terminals() >= 2 {
            out.push((format!("bip-{seed}"), g));
        }
        seed += 1;
    }
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct Batch {
    wall: f64,
    latencies: Vec<f64>,
}

impl Batch {
    fn report(&self, label: &str) {
        let mut lat = self.latencies.clone();
        lat.sort_by(|a, b| a.total_cmp(b));
        println!(
            "{:>12} {:>9.2} {:>10.1} {:>10.1} {:>10.1}",
            label,
            lat.len() as f64 / self.wall,
            percentile(&lat, 0.5) * 1e3,
            percentile(&lat, 0.95) * 1e3,
            self.wall * 1e3,
        );
    }
}

/// All jobs through one server with a standing pool: submit everything
/// up front, then wait for each — per-job latency is submit → Finished.
/// With `journal_dir` set the full telemetry path is on (run journals +
/// progress snapshots), which is what the overhead row measures.
fn run_served(
    worker: &str,
    graphs: &[(String, Graph)],
    solvers: usize,
    journal_dir: Option<std::path::PathBuf>,
) -> std::io::Result<Batch> {
    let config = ServerConfig {
        worker_command: vec![worker.to_string()],
        pool_size: solvers,
        max_concurrent_jobs: 1,
        journal_dir,
        ..Default::default()
    };
    let server = SolveServer::start(config)?;
    let addr = server.client_addr().to_string();
    let mut client = SolveClient::connect(&addr)?;

    let t0 = Instant::now();
    let mut submitted = Vec::new();
    for (name, g) in graphs {
        let mut spec = stp_job(name.clone(), g, &ReduceParams::default());
        spec.num_solvers = solvers;
        submitted.push((client.submit(spec)?, Instant::now()));
    }
    let mut latencies = Vec::new();
    for (job, since) in submitted {
        let done = client.wait(job)?;
        assert!(
            matches!(
                done.kind,
                ugrs_core::JobEventKind::Finished { state: ugrs_core::JobState::Solved, .. }
            ),
            "served job {job} must be solved: {done:?}"
        );
        latencies.push(since.elapsed().as_secs_f64());
    }
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown_and_join();
    Ok(Batch { wall, latencies })
}

/// The same batch as sequential per-call distributed solves, each
/// paying the full spawn + handshake + reap cost.
fn run_per_call(
    worker: &str,
    graphs: &[(String, Graph)],
    solvers: usize,
) -> std::io::Result<Batch> {
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    for (_, g) in graphs {
        let t = Instant::now();
        let res = ugrs_glue::ug_solve_stp_distributed(
            g,
            &ReduceParams::default(),
            ParallelOptions { num_solvers: solvers, ..Default::default() },
            ugrs_core::DistributedOptions {
                worker_command: vec![worker.to_string()],
                ..Default::default()
            },
        )?;
        assert!(res.solved, "per-call run must solve");
        latencies.push(t.elapsed().as_secs_f64());
    }
    Ok(Batch { wall: t0.elapsed().as_secs_f64(), latencies })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = arg(&args, "--jobs").map(|v| v as usize).unwrap_or(8);
    let solvers = arg(&args, "--solvers").map(|v| v as usize).unwrap_or(2);

    let Some(worker) = worker_binary() else {
        eprintln!(
            "table_serve: ugd-worker not found next to this binary and UGD_WORKER unset;\n\
             build it first: cargo build --release --bin ugd-worker"
        );
        std::process::exit(2);
    };

    let graphs = instances(jobs);
    println!("Serve-mode throughput: {jobs} STP jobs x {solvers} solvers (worker: {worker})\n");
    println!(
        "{:>12} {:>9} {:>10} {:>10} {:>10}",
        "path", "jobs/s", "p50 [ms]", "p95 [ms]", "wall [ms]"
    );

    // Serve the batch once to warm the page cache for both paths.
    let _ = run_served(&worker, &graphs[..1.min(graphs.len())], solvers, None);

    // The served batch is tens of milliseconds; one run's scheduling
    // jitter swamps a few-percent telemetry delta. Interleave the two
    // configurations and keep each one's best run — the standard
    // noise-floor trick for short benchmarks.
    let journal_dir =
        std::env::temp_dir().join(format!("table-serve-journals-{}", std::process::id()));
    let mut plain: Option<Batch> = None;
    let mut telemetered: Option<Batch> = None;
    let best = |best: &mut Option<Batch>, b: Batch| {
        if best.as_ref().is_none_or(|prev| b.wall < prev.wall) {
            *best = Some(b);
        }
    };
    // Alternate which configuration goes first: frequency scaling and
    // cache warmth systematically favor whichever config runs second,
    // which would otherwise masquerade as telemetry overhead.
    for round in 0..6 {
        let mut one = |tel: bool| {
            let dir = tel.then(|| journal_dir.clone());
            if let Ok(b) = run_served(&worker, &graphs, solvers, dir) {
                best(if tel { &mut telemetered } else { &mut plain }, b);
            }
            std::thread::sleep(Duration::from_millis(100));
        };
        one(round % 2 == 0);
        one(round % 2 != 0);
    }
    match &plain {
        Some(b) => b.report("served"),
        None => eprintln!("table_serve: served path failed"),
    }
    match &telemetered {
        Some(b) => b.report("served+tel"),
        None => eprintln!("table_serve: telemetry path failed"),
    }
    match run_per_call(&worker, &graphs, solvers) {
        Ok(b) => b.report("per-call"),
        Err(e) => eprintln!("table_serve: per-call path failed: {e}"),
    }
    if let (Some(p), Some(t)) = (&plain, &telemetered) {
        let plain_jps = p.latencies.len() as f64 / p.wall;
        let tel_jps = t.latencies.len() as f64 / t.wall;
        let overhead = (plain_jps / tel_jps - 1.0) * 100.0;
        println!(
            "\ntelemetry overhead: {overhead:+.1}% on jobs/s \
             (journals + progress snapshots; budget <= 5%)"
        );
    }
    std::fs::remove_dir_all(&journal_dir).ok();
    println!(
        "\nserved = one standing pool, workers reused across jobs; per-call =\n\
         spawn + handshake + reap per job. The gap is the amortized startup cost.\n\
         served+tel = served with --journal-dir run journals and live progress on."
    );
}

fn arg(args: &[String], key: &str) -> Option<f64> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
