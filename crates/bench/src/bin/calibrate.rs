//! Hardness calibration: sequential solve times for candidate generated
//! instances, used to pick the per-table instance sizes so single runs
//! land in the paper-shaped "seconds to a minute" regime on a laptop.
//!
//! `cargo run -p ugrs-bench --release --bin calibrate [limit_secs]`

use std::time::Instant;
use ugrs_bench::fmt_time;
use ugrs_cip::Settings;
use ugrs_misdp::gen as mgen;
use ugrs_misdp::{Approach, MisdpSolver};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::{Graph, SteinerOptions, SteinerSolver};

fn stp(name: &str, g: Graph, limit: f64) {
    let (n, m, k) = (g.num_alive_nodes(), g.num_alive_edges(), g.num_terminals());
    let t0 = Instant::now();
    let mut opts = SteinerOptions::default();
    opts.settings.time_limit = limit;
    let mut s = SteinerSolver::new(g, opts);
    let res = s.solve();
    println!(
        "STP  {name:<14} n={n:<5} m={m:<6} |T|={k:<4} status={:?} cost={:?} nodes={:?} time={}",
        res.status,
        res.best_cost,
        res.cip_stats.as_ref().map(|s| s.nodes).unwrap_or(0),
        fmt_time(t0.elapsed().as_secs_f64()),
    );
}

fn misdp(p: ugrs_misdp::MisdpProblem, approach: Approach, limit: f64) {
    let name = p.name.clone();
    let t0 = Instant::now();
    let st = Settings { time_limit: limit, ..Default::default() };
    let res = MisdpSolver::new(p, approach, st).solve();
    println!(
        "MISDP {name:<14} {:?}  status={:?} obj={:?} nodes={} time={}",
        approach,
        res.status,
        res.best_obj,
        res.stats.nodes,
        fmt_time(t0.elapsed().as_secs_f64()),
    );
}

fn main() {
    let limit: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(60.0);
    use sgen::CostScheme::*;
    stp("cc3-4p~", sgen::code_covering(3, 4, 10, Perturbed, 101), limit);
    stp("cc3-5u~", sgen::code_covering(3, 5, 14, Unit, 102), limit);
    stp("cc4-3p~", sgen::code_covering(4, 3, 14, Perturbed, 103), limit);
    stp("hc4p~", sgen::hypercube(4, Perturbed, 104), limit);
    stp("hc4u~", sgen::hypercube(4, Unit, 105), limit);
    stp("hc5p~", sgen::hypercube(5, Perturbed, 106), limit);
    stp("hc5u~", sgen::hypercube(5, Unit, 107), limit);
    stp("bip-small", sgen::bipartite(10, 24, 3, Perturbed, 108), limit);
    stp("bip-mid", sgen::bipartite(14, 34, 3, Unit, 109), limit);
    stp("bip-big", sgen::bipartite(20, 48, 3, Unit, 110), limit);

    for approach in [Approach::Sdp, Approach::Lp] {
        misdp(mgen::truss_topology(4, 10, 201), approach, limit);
        misdp(mgen::truss_topology(5, 13, 202), approach, limit);
        misdp(mgen::cardinality_ls(8, 3, 203), approach, limit);
        misdp(mgen::cardinality_ls(10, 4, 204), approach, limit);
        misdp(mgen::min_k_partitioning(6, 2, 205), approach, limit);
        misdp(mgen::min_k_partitioning(7, 3, 206), approach, limit);
    }
}
