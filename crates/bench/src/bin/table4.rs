//! **Table 4 reproduction** — "Results for ug[SCIP-SDP,C++11] over all
//! CBLIB instances": sequential SCIP-SDP versus the UG parallelization
//! with 1..N threads over the three generated test sets (TTD, CLS,
//! MkP). Reported per set and in total: instances solved and the
//! shifted geometric mean of solve times (shift 10), exactly the paper's
//! aggregation.
//!
//! Expected shape (§4.2): single-threaded UG is *slower* than plain
//! SCIP-SDP (parallelization overhead); two threads bring the LP-based
//! settings into the race, which helps CLS enormously; MkP profits
//! least; speedups saturate early at this instance scale.
//!
//! `cargo run -p ugrs-bench --release --bin table4 [-- --limit <s>] [--per-family <k>]`

use std::time::Instant;
use ugrs_bench::shifted_geomean;
use ugrs_core::{ParallelOptions, RampUp};
use ugrs_glue::{misdp_racing_settings, ug_solve_misdp};
use ugrs_misdp::gen::table4_testsets;
use ugrs_misdp::{Approach, MisdpSolver};

struct Cell {
    solved: usize,
    times: Vec<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let limit: f64 = num_arg(&args, "--limit").unwrap_or(20.0);
    let per_family: usize = num_arg(&args, "--per-family").unwrap_or(6.0) as usize;
    let thread_counts = [1usize, 2, 4, 8];

    let sets = table4_testsets(per_family);
    println!("Table 4: results for ug[ScipSdp,ThreadComm] over the generated CBLIB-like sets");
    println!(
        "({} instances per set; per-instance limit {limit}s; shifted geometric mean, s=10)\n",
        per_family
    );

    let mut rows: Vec<(String, Vec<Cell>)> = Vec::new();

    // Row 1: sequential SCIP-SDP (the paper's default = SDP approach).
    let mut cells = Vec::new();
    for (_, insts) in &sets {
        let mut c = Cell { solved: 0, times: Vec::new() };
        for p in insts {
            let st = ugrs_cip::Settings { time_limit: limit, ..Default::default() };
            let t0 = Instant::now();
            let res = MisdpSolver::new(p.clone(), Approach::Sdp, st).solve();
            let dt = t0.elapsed().as_secs_f64().min(limit);
            if res.status == ugrs_cip::SolveStatus::Optimal {
                c.solved += 1;
                c.times.push(dt);
            } else {
                c.times.push(limit);
            }
        }
        cells.push(c);
    }
    rows.push(("SCIP-SDP".into(), cells));

    // Rows 2+: ug[SCIP-SDP, ThreadComm] with racing ramp-up.
    for &threads in &thread_counts {
        let mut cells = Vec::new();
        for (_, insts) in &sets {
            let mut c = Cell { solved: 0, times: Vec::new() };
            for p in insts {
                let options = ParallelOptions {
                    num_solvers: threads,
                    time_limit: limit,
                    ramp_up: if threads >= 2 {
                        RampUp::Racing {
                            settings: misdp_racing_settings(threads),
                            time_trigger: (limit * 0.15).max(0.1),
                            open_nodes_trigger: 12,
                        }
                    } else {
                        // One solver: no race possible; SDP default, like
                        // the paper's 1-thread ug runs.
                        RampUp::Normal
                    },
                    ..Default::default()
                };
                let t0 = Instant::now();
                let res = ug_solve_misdp(p, options);
                let dt = t0.elapsed().as_secs_f64().min(limit);
                if res.solved {
                    c.solved += 1;
                    c.times.push(dt);
                } else {
                    c.times.push(limit);
                }
            }
            cells.push(c);
        }
        rows.push((format!("ug[SCIP-SDP] {threads} thr."), cells));
    }

    // ---- print ----------------------------------------------------------
    print!("{:<22}", "solver");
    for (name, insts) in &sets {
        print!("{:>8}{:>9}", format!("{name}"), "time");
        let _ = insts;
    }
    println!("{:>8}{:>9}", "Total", "time");
    print!("{:<22}", "");
    for _ in 0..sets.len() + 1 {
        print!("{:>8}{:>9}", "solved", "(sgm)");
    }
    println!();
    for (name, cells) in &rows {
        print!("{:<22}", name);
        let mut all_times = Vec::new();
        let mut all_solved = 0;
        for c in cells {
            print!("{:>8}{:>9.2}", c.solved, shifted_geomean(&c.times, 10.0));
            all_times.extend_from_slice(&c.times);
            all_solved += c.solved;
        }
        println!("{:>8}{:>9.2}", all_solved, shifted_geomean(&all_times, 10.0));
    }
}

fn num_arg(args: &[String], key: &str) -> Option<f64> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
