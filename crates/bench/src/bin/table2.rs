//! **Table 2 reproduction** — "Statistics for solving bip52u on
//! supercomputers": a checkpoint/restart chain on a hard bip-like
//! instance. Each row is one run resuming from the previous run's
//! checkpoint; the number of "cores" (ParaSolvers) grows along the chain
//! the way the paper moves from 72 ISM cores to 12,288 HLRN III cores.
//! The signature effects to observe:
//!
//! * open-node counts collapse at restarts (only primitive nodes are
//!   checkpointed),
//! * the dual bound is carried over and improves monotonically,
//! * the final run closes the instance to gap 0.
//!
//! `cargo run -p ugrs-bench --release --bin table2 [-- --limit <s per run>]`

use ugrs_bench::fmt_time;
use ugrs_core::ParallelOptions;
use ugrs_glue::ug_solve_stp;
use ugrs_steiner::gen::{bipartite, CostScheme};
use ugrs_steiner::reduce::ReduceParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let limit: f64 = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    // The bip52u stand-in: a bipartite instance with unit-free costs and
    // enough symmetry to resist both reductions and bounding.
    let graph = bipartite(14, 34, 3, CostScheme::Unit, 141);
    println!("Table 2: statistics for solving bip52u~ (generated analogue) via a restart chain");
    println!(
        "instance: {} vertices, {} edges, {} terminals; per-run limit {limit}s\n",
        graph.num_alive_nodes(),
        graph.num_alive_edges(),
        graph.num_terminals()
    );
    println!(
        "{:>5} {:>10} {:>7} {:>9} {:>7} {:>8} {:>12} {:>12} {:>8} {:>12} {:>11}",
        "Run",
        "Computer",
        "Cores",
        "Time(s)",
        "Idle%",
        "Trans.",
        "Primal",
        "Dual",
        "Gap%",
        "Nodes",
        "Open"
    );

    // Core schedule: grows like the paper's (72 → 12,288), laptop scale.
    // The per-run budget also grows when the dual bound stalls — the
    // paper's chain does the same in the large (its final ISM run alone
    // got 3.8M seconds).
    let cores = [2usize, 2, 3, 3, 4, 4, 4, 4];
    let mut restart: Option<String> = None;
    let mut prev_primal = f64::INFINITY;
    let mut prev_dual = f64::NEG_INFINITY;
    let mut run_limit = limit;
    let mut stalls = 0u32;
    for (i, &nc) in cores.iter().enumerate() {
        let options = ParallelOptions {
            num_solvers: nc,
            time_limit: run_limit,
            restart_from: restart.take(),
            ..Default::default()
        };
        let res = ug_solve_stp(&graph, &ReduceParams::default(), options);
        let primal = res.tree.as_ref().map(|(_, c)| *c).unwrap_or(f64::INFINITY);
        let dual = res.dual_bound;
        // Monotonicity checks across the chain (the paper's tables show
        // exactly this carry-over).
        assert!(primal <= prev_primal + 1e-6, "primal must not regress");
        assert!(dual >= prev_dual - 1e-6, "dual must not regress: {dual} < {prev_dual}");
        if dual <= prev_dual + 1e-9 {
            stalls += 1;
            if stalls >= 2 {
                run_limit *= 2.0;
                stalls = 0;
            }
        } else {
            stalls = 0;
        }
        prev_primal = primal;
        prev_dual = dual;
        println!(
            "{:>5} {:>10} {:>7} {:>9} {:>7.1} {:>8} {:>12.1} {:>12.4} {:>8.2} {:>12} {:>11}",
            format!("1.{}", i + 1),
            "ThreadComm",
            nc,
            fmt_time(res.stats.wall_time),
            res.stats.idle_percent,
            res.stats.transferred,
            primal,
            dual,
            res.stats.gap_percent(),
            res.stats.nodes_total,
            res.stats.open_nodes,
        );
        if res.solved {
            println!("\nsolved to optimality in run 1.{} — gap closed ✓", i + 1);
            return;
        }
        restart = res
            .ug
            .final_checkpoint
            .as_ref()
            .map(|cp| serde_json::to_string(cp).expect("checkpoint serializes"));
        if let Some(cp) = &res.ug.final_checkpoint {
            println!(
                "{:>5} checkpoint: {} primitive nodes carried to run 1.{}",
                "",
                cp.num_primitive_nodes(),
                i + 2
            );
        }
    }
    println!("\nchain budget exhausted before optimality — raise --limit to close the gap");
}
