//! Second-stage calibration: sequential + parallel timings for the
//! shortlisted Table-1/2/3 candidates and harder MISDP instances.
//!
//! `cargo run -p ugrs-bench --release --bin calibrate2 [limit]`

use std::time::Instant;
use ugrs_core::ParallelOptions;
use ugrs_glue::{ug_solve_misdp, ug_solve_stp};
use ugrs_misdp::gen as mgen;
use ugrs_misdp::{Approach, MisdpSolver};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;

fn stp_par(name: &str, g: &ugrs_steiner::Graph, threads: usize, limit: f64) {
    let t0 = Instant::now();
    let options = ParallelOptions { num_solvers: threads, time_limit: limit, ..Default::default() };
    let res = ug_solve_stp(g, &ReduceParams::default(), options);
    println!(
        "STP {name:<10} thr={threads} solved={} cost={:?} dual={:.1} nodes={} time={:.2}",
        res.solved,
        res.tree.as_ref().map(|(_, c)| *c),
        res.dual_bound,
        res.stats.nodes_total,
        t0.elapsed().as_secs_f64()
    );
}

fn misdp_seq(p: &ugrs_misdp::MisdpProblem, approach: Approach, limit: f64) {
    let st = ugrs_cip::Settings { time_limit: limit, ..Default::default() };
    let t0 = Instant::now();
    let res = MisdpSolver::new(p.clone(), approach, st).solve();
    println!(
        "MISDP {:<14} {:?} status={:?} obj={:?} nodes={} time={:.2}",
        p.name,
        approach,
        res.status,
        res.best_obj,
        res.stats.nodes,
        t0.elapsed().as_secs_f64()
    );
}

fn misdp_par(p: &ugrs_misdp::MisdpProblem, threads: usize, limit: f64) {
    let t0 = Instant::now();
    let options = ParallelOptions { num_solvers: threads, time_limit: limit, ..Default::default() };
    let res = ug_solve_misdp(p, options);
    println!(
        "MISDP {:<14} par thr={threads} solved={} obj={:?} time={:.2}",
        p.name,
        res.solved,
        res.best_obj,
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    let limit: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(90.0);
    use sgen::CostScheme::*;
    let hc5u = sgen::hypercube(5, Unit, 107);
    let hc5p = sgen::hypercube(5, Perturbed, 106);
    let cc43 = sgen::code_covering(4, 3, 14, Perturbed, 103);
    let bipm = sgen::bipartite(14, 34, 3, Unit, 109);
    for threads in [1usize, 4] {
        stp_par("hc5u~", &hc5u, threads, limit);
        stp_par("hc5p~", &hc5p, threads, limit);
        stp_par("cc4-3p~", &cc43, threads, limit);
        stp_par("bip-mid~", &bipm, threads, limit);
    }
    for p in [
        mgen::truss_topology(6, 16, 301),
        mgen::truss_topology(6, 20, 302),
        mgen::cardinality_ls(12, 4, 303),
        mgen::cardinality_ls(14, 5, 304),
        mgen::min_k_partitioning(8, 3, 305),
        mgen::min_k_partitioning(9, 3, 306),
    ] {
        misdp_seq(&p, Approach::Sdp, limit.min(30.0));
        misdp_seq(&p, Approach::Lp, limit.min(30.0));
        misdp_par(&p, 4, limit.min(30.0));
    }
}
