//! **Table 1, ProcessComm variant** — the paper's distributed-memory
//! (ParaSCIP-style) configuration at laptop scale: the same PUC-like
//! instances as `table1`, each solved with `ug [SteinerJack,
//! ThreadComm]` and `ug [SteinerJack, ProcessComm]` at a growing rank
//! count, reporting wall times side by side. The gap between the two
//! columns is the transport overhead (process spawn + handshake + JSON
//! frames over localhost TCP) that the shared-memory runs avoid.
//!
//! Requires the worker binary:
//!
//! ```sh
//! cargo build --release --bin ugd-worker
//! cargo run -p ugrs-bench --release --bin table1p [-- --limit <s>] [--ranks 1,2,4]
//! ```
//!
//! The worker is looked up next to this executable (both live in
//! `target/<profile>/`); override with the `UGD_WORKER` env var.

use std::time::Instant;
use ugrs_bench::fmt_time;
use ugrs_core::{DistributedOptions, ParallelOptions};
use ugrs_glue::{ug_solve_stp, ug_solve_stp_distributed};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;
use ugrs_steiner::Graph;

fn instances() -> Vec<(&'static str, Graph)> {
    use sgen::CostScheme::*;
    // The two best-scaling Table-1 instances plus the worst-scaling one
    // (see table1.rs) — enough to show where transport overhead hides
    // behind solve time and where it dominates.
    vec![
        ("cc3-4u~", sgen::code_covering(3, 4, 12, Unit, 122)),
        ("cc3-5u~", sgen::code_covering(3, 5, 16, Unit, 142)),
        ("bip~", sgen::bipartite(12, 28, 3, Unit, 130)),
    ]
}

fn worker_binary() -> Option<String> {
    if let Ok(path) = std::env::var("UGD_WORKER") {
        return Some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join("ugd-worker");
    candidate.exists().then(|| candidate.to_string_lossy().into_owned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let limit: f64 = arg(&args, "--limit").unwrap_or(120.0);
    let ranks: Vec<usize> = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4]);

    let Some(worker) = worker_binary() else {
        eprintln!(
            "table1p: ugd-worker not found next to this binary and UGD_WORKER unset;\n\
             build it first: cargo build --release --bin ugd-worker"
        );
        std::process::exit(2);
    };

    println!("Table 1 (ProcessComm): thread vs process back-end wall times");
    println!("(worker: {worker}; per-run limit {limit}s)\n");
    println!(
        "{:>10} {:>7} {:>12} {:>12} {:>10} {:>7}",
        "instance", "ranks", "ThreadComm", "ProcessComm", "overhead", "agree"
    );

    for (name, g) in instances() {
        for &n in &ranks {
            let options =
                ParallelOptions { num_solvers: n, time_limit: limit, ..Default::default() };

            let t0 = Instant::now();
            let threaded = ug_solve_stp(&g, &ReduceParams::default(), options.clone());
            let t_thread = t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let dist = ug_solve_stp_distributed(
                &g,
                &ReduceParams::default(),
                options,
                DistributedOptions { worker_command: vec![worker.clone()], ..Default::default() },
            );
            let t_proc = t0.elapsed().as_secs_f64();

            let (verdict, note) = match &dist {
                Ok(d) => {
                    let tc = threaded.tree.as_ref().map(|(_, c)| *c);
                    let pc = d.tree.as_ref().map(|(_, c)| *c);
                    if !threaded.solved || !d.solved {
                        // Timed-out runs hold whatever incumbent each
                        // back-end reached; comparing them says nothing.
                        ("t.o.", String::new())
                    } else {
                        match (tc, pc) {
                            (Some(a), Some(b)) if (a - b).abs() < 1e-6 => ("yes", String::new()),
                            _ => ("NO", format!("  ({tc:?} vs {pc:?})")),
                        }
                    }
                }
                Err(e) => ("NO", format!("  (error: {e})")),
            };
            println!(
                "{:>10} {:>7} {:>12} {:>12} {:>10} {:>7}{}",
                name,
                n,
                fmt_time(t_thread),
                fmt_time(t_proc),
                fmt_time(t_proc - t_thread),
                verdict,
                note
            );
        }
    }
    println!(
        "\noverhead = ProcessComm - ThreadComm wall time (spawn + handshake + wire\n\
         framing); it is roughly constant per run, so it fades on harder instances."
    );
}

fn arg(args: &[String], key: &str) -> Option<f64> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}
