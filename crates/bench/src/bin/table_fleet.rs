//! **Fleet sustained-load harness** — hundreds of concurrent submitters
//! against a `ugd-gateway` over three `ugd-server` shards, with one
//! shard SIGKILLed mid-run. Reports submit-to-ack and submit-to-solved
//! latency distributions and *asserts* the ack SLO: admission control
//! plus the gateway's write-ahead ledger must stay off the hot path
//! even while a third of the fleet is dying.
//!
//! ```sh
//! cargo build --release --bin ugd-server --bin ugd-worker
//! cargo run -p ugrs-bench --release --bin table_fleet \
//!     [-- --jobs 240] [--submitters 200] [--slo-ms 250] [--no-kill]
//! ```
//!
//! The `ugd-server` and `ugd-worker` binaries are looked up next to
//! this executable (all live in `target/<profile>/`); override with the
//! `UGD_SERVER` / `UGD_WORKER` env vars.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ugrs_core::gateway::{GatewayConfig, ShardSpec};
use ugrs_core::{JobEventKind, JobState, SubmitOutcome};
use ugrs_glue::{stp_job, SolveClient, SolveGateway};
use ugrs_steiner::gen as sgen;
use ugrs_steiner::reduce::ReduceParams;
use ugrs_steiner::Graph;

fn find_binary(env: &str, name: &str) -> Option<String> {
    if let Ok(path) = std::env::var(env) {
        return Some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join(name);
    candidate.exists().then(|| candidate.to_string_lossy().into_owned())
}

struct Shard {
    child: Child,
    addr: String,
    state_dir: PathBuf,
}

impl Drop for Shard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_shard(server: &str, worker: &str, state_dir: &Path) -> std::io::Result<Shard> {
    std::fs::create_dir_all(state_dir)?;
    let mut child = Command::new(server)
        .args([
            "--client-addr",
            "127.0.0.1:0",
            "--worker-addr",
            "127.0.0.1:0",
            "--pool-size",
            "4",
            "--max-jobs",
            "4",
            "--worker",
            worker,
            "--handicap-ms",
            "100",
            "--status-interval",
            "0.05",
            "--checkpoint-interval",
            "0.05",
            "--state-dir",
            &state_dir.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected shard banner: {line:?}"))
        .to_string();
    Ok(Shard { child, addr, state_dir: state_dir.to_path_buf() })
}

fn instances(jobs: usize) -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    let mut seed = 4000u64;
    while out.len() < jobs {
        let g = sgen::bipartite(5, 9, 3, sgen::CostScheme::Perturbed, seed);
        let mut reduced = g.clone();
        ugrs_steiner::reduce::reduce(&mut reduced, &ReduceParams::default());
        if reduced.num_terminals() >= 2 {
            out.push((format!("fleet-{seed}"), g));
        }
        seed += 1;
    }
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn arg(args: &[String], flag: &str) -> Option<f64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = arg(&args, "--jobs").map(|v| v as usize).unwrap_or(240);
    let submitters = arg(&args, "--submitters").map(|v| v as usize).unwrap_or(200);
    let slo_ms = arg(&args, "--slo-ms").unwrap_or(250.0);
    let kill = !args.iter().any(|a| a == "--no-kill");

    let (Some(server), Some(worker)) =
        (find_binary("UGD_SERVER", "ugd-server"), find_binary("UGD_WORKER", "ugd-worker"))
    else {
        eprintln!(
            "table_fleet: ugd-server/ugd-worker not found next to this binary;\n\
             build them first: cargo build --release --bin ugd-server --bin ugd-worker"
        );
        std::process::exit(2);
    };

    let root = std::env::temp_dir().join(format!("table-fleet-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let shards: Vec<Shard> = (0..3)
        .map(|i| {
            spawn_shard(&server, &worker, &root.join(format!("shard-{i}"))).expect("spawn shard")
        })
        .collect();
    let config = GatewayConfig {
        shards: shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSpec {
                name: format!("shard-{i}"),
                addr: s.addr.clone(),
                state_dir: Some(s.state_dir.clone()),
            })
            .collect(),
        health_interval: Duration::from_millis(100),
        shard_liveness: Duration::from_millis(600),
        probe_timeout: Duration::from_millis(800),
        steal_margin: 2,
        max_inflight: jobs.max(1024),
        state_dir: Some(root.join("gateway")),
        journal_dir: Some(root.join("journal")),
        ..GatewayConfig::default()
    };
    let gateway = SolveGateway::start(config).expect("gateway start");
    let addr = gateway.client_addr().to_string();
    println!(
        "Fleet sustained load: {jobs} STP jobs, {submitters} concurrent submitters, \
         3 shards{}",
        if kill { ", one SIGKILLed mid-run" } else { "" }
    );

    // Every submitter thread drains the shared worklist: `submitters`
    // concurrent client connections pushing as fast as their acks come
    // back — the arrival pattern admission control exists to survive.
    let work = Arc::new(Mutex::new(instances(jobs)));
    let acks: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let accepted: Arc<Mutex<Vec<(u64, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..submitters)
        .map(|_| {
            let (work, acks, accepted, addr) =
                (work.clone(), acks.clone(), accepted.clone(), addr.clone());
            std::thread::spawn(move || {
                let mut client = SolveClient::connect(&addr).expect("submitter connect");
                loop {
                    let Some((name, g)) = work.lock().unwrap().pop() else { return };
                    let mut spec = stp_job(name, &g, &ReduceParams::default());
                    spec.num_solvers = 1;
                    let t = Instant::now();
                    match client.try_submit(spec).expect("submit rpc") {
                        SubmitOutcome::Accepted(gid) => {
                            acks.lock().unwrap().push(t.elapsed().as_secs_f64());
                            accepted.lock().unwrap().push((gid, t));
                        }
                        SubmitOutcome::Rejected(reason) => {
                            panic!("submission rejected without a quota: {reason}")
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread");
    }
    let submit_wall = t0.elapsed().as_secs_f64();

    if kill {
        // Let the fleet get properly busy, then lose a shard.
        std::thread::sleep(Duration::from_millis(500));
        let _ = Command::new("kill").args(["-9", &shards[0].child.id().to_string()]).status();
        println!("killed shard-0 (pid {}) mid-run", shards[0].child.id());
    }

    // Wait for every accepted job; end-to-end latency is submit → Solved.
    let accepted = Arc::try_unwrap(accepted).unwrap().into_inner().unwrap();
    let total = accepted.len();
    let queue = Arc::new(Mutex::new(accepted));
    let solved: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let recovered = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let watchers: Vec<_> = (0..16)
        .map(|_| {
            let (queue, solved, recovered, addr) =
                (queue.clone(), solved.clone(), recovered.clone(), addr.clone());
            std::thread::spawn(move || {
                let mut client = SolveClient::connect(&addr).expect("watcher connect");
                loop {
                    let Some((gid, since)) = queue.lock().unwrap().pop() else { return };
                    let mut resumed = false;
                    let done = client
                        .watch(gid, 0, |ev| {
                            if matches!(ev.kind, JobEventKind::Recovered { .. }) {
                                resumed = true;
                            }
                        })
                        .expect("watch");
                    if resumed {
                        recovered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    match done.kind {
                        JobEventKind::Finished { state: JobState::Solved, .. } => {
                            solved.lock().unwrap().push(since.elapsed().as_secs_f64())
                        }
                        other => panic!("job {gid} did not solve: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in watchers {
        h.join().expect("watcher thread");
    }
    let wall = t0.elapsed().as_secs_f64();

    let mut acks = Arc::try_unwrap(acks).unwrap().into_inner().unwrap();
    acks.sort_by(|a, b| a.total_cmp(b));
    let mut e2e = Arc::try_unwrap(solved).unwrap().into_inner().unwrap();
    e2e.sort_by(|a, b| a.total_cmp(b));
    assert_eq!(e2e.len(), total, "every accepted job must solve");

    println!();
    println!(
        "{:>16} {:>8} {:>10} {:>10} {:>10}",
        "metric", "n", "p50 [ms]", "p95 [ms]", "p99 [ms]"
    );
    println!(
        "{:>16} {:>8} {:>10.2} {:>10.2} {:>10.2}",
        "submit-to-ack",
        acks.len(),
        percentile(&acks, 0.5) * 1e3,
        percentile(&acks, 0.95) * 1e3,
        percentile(&acks, 0.99) * 1e3,
    );
    println!(
        "{:>16} {:>8} {:>10.0} {:>10.0} {:>10.0}",
        "submit-to-solved",
        e2e.len(),
        percentile(&e2e, 0.5) * 1e3,
        percentile(&e2e, 0.95) * 1e3,
        percentile(&e2e, 0.99) * 1e3,
    );
    println!();
    println!(
        "{} jobs solved in {wall:.1}s ({:.1} jobs/s; submissions took {submit_wall:.2}s); \
         {} resumed from the killed shard's checkpoints",
        total,
        total as f64 / wall,
        recovered.load(std::sync::atomic::Ordering::Relaxed),
    );

    let p99_ms = percentile(&acks, 0.99) * 1e3;
    assert!(p99_ms < slo_ms, "p99 submit-to-ack {p99_ms:.2} ms breaches the {slo_ms} ms SLO");
    println!("SLO: p99 submit-to-ack {p99_ms:.2} ms < {slo_ms} ms — ok");

    gateway.shutdown_and_join();
    drop(shards);
    std::fs::remove_dir_all(&root).ok();
}
