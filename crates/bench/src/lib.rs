//! Shared helpers for the table/figure harness binaries.
//!
//! Every table and figure of the paper's evaluation (§4) has a binary in
//! `src/bin/` that regenerates it on generated PUC-like / CBLIB-like
//! instances:
//!
//! | paper artifact | binary | what it shows |
//! |----------------|--------|---------------|
//! | Table 1 | `table1` | shared-memory ug\[SteinerJack\] scaling on five PUC-like instances |
//! | Table 2 | `table2` | checkpoint/restart chain on a bip-like open instance |
//! | Table 3 | `table3` | racing re-runs with injected incumbents on an hc-like instance |
//! | Table 4 | `table4` | SCIP-SDP vs ug[SCIP-SDP] with 1..8 threads over TTD/CLS/MkP |
//! | Figure 1 | `figure1` | racing-winner histogram across the settings list |

/// Shifted geometric mean with shift `s` — the aggregation used by
/// Table 4 ("shifted geometric mean with shift s = 10").
pub fn shifted_geomean(values: &[f64], shift: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| (v + shift).max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp() - shift
}

/// Formats seconds like the paper's tables (one decimal under 100s).
pub fn fmt_time(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else {
        format!("{t:.2}")
    }
}

/// Simple fixed-width row printer.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} ", w = w));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_geomean_matches_hand_computation() {
        // sqrt((1+10)(9+10)) − 10 = sqrt(209) − 10 ≈ 4.4568.
        let g = shifted_geomean(&[1.0, 9.0], 10.0);
        assert!((g - (209.0f64.sqrt() - 10.0)).abs() < 1e-12);
        // Without shift it reduces to the plain geometric mean.
        let g0 = shifted_geomean(&[4.0, 9.0], 0.0);
        assert!((g0 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_geomean_empty_is_zero() {
        assert_eq!(shifted_geomean(&[], 10.0), 0.0);
    }

    #[test]
    fn fmt_time_switches_precision() {
        assert_eq!(fmt_time(3.2468), "3.25");
        assert_eq!(fmt_time(123.4), "123");
    }
}
