//! SCIP-SDP's randomized rounding heuristic (§3.2 mentions "heuristics
//! ... like dual fixing and randomized rounding"): round the relaxation
//! solution's integer variables randomly, biased by their fractional
//! parts, and keep the best PSD-feasible candidate.

use crate::model::MisdpProblem;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ugrs_cip::{Heuristic, SolveCtx};

pub struct RandomizedRounding {
    pub problem: Arc<MisdpProblem>,
    pub tries: usize,
}

impl RandomizedRounding {
    pub fn new(problem: Arc<MisdpProblem>) -> Self {
        RandomizedRounding { problem, tries: 8 }
    }
}

impl Heuristic for RandomizedRounding {
    fn name(&self) -> &str {
        "misdp-randround"
    }

    fn run(&mut self, ctx: &mut SolveCtx) -> Option<Vec<f64>> {
        let y = ctx.relax_x?;
        let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0x5d5d_0001);
        let p = &self.problem;
        let mut best: Option<(f64, Vec<f64>)> = None;
        for t in 0..self.tries {
            let mut cand = y.to_vec();
            for (i, ci) in cand.iter_mut().enumerate() {
                if !p.integer[i] {
                    continue;
                }
                let frac = *ci - ci.floor();
                let up = if t == 0 { frac >= 0.5 } else { rng.gen_bool(frac.clamp(0.02, 0.98)) };
                *ci = if up { ci.ceil() } else { ci.floor() };
                *ci = ci.clamp(ctx.local_lb[i], ctx.local_ub[i]);
            }
            if p.is_feasible(&cand, 1e-6) {
                let obj = p.obj(&cand);
                if best.as_ref().is_none_or(|(b, _)| obj > *b) {
                    best = Some((obj, cand));
                }
            }
        }
        best.map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrs_cip::{CutBuffer, Model};
    use ugrs_linalg::Matrix;
    use ugrs_sdp::SdpBlock;

    #[test]
    fn rounds_to_feasible_candidate() {
        // max y0 + y1 binary with block 1.5 − y0 − y1 ≥ 0 → best is one of
        // them set to 1.
        let mut p = MisdpProblem::new("t", 2);
        p.b = vec![1.0, 1.0];
        p.lb = vec![0.0, 0.0];
        p.ub = vec![1.0, 1.0];
        p.integer = vec![true, true];
        let mut blk = SdpBlock::new(1, 2);
        blk.c = Matrix::from_rows(1, 1, vec![1.5]).unwrap();
        blk.set_a(0, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        blk.set_a(1, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        p.blocks.push(blk);
        let p = Arc::new(p);

        let mut h = RandomizedRounding::new(p.clone());
        let model = Model::new("t");
        let mut cuts = CutBuffer::default();
        let mut tight = Vec::new();
        let lb = vec![0.0, 0.0];
        let ub = vec![1.0, 1.0];
        let relax = vec![0.75, 0.75];
        let mut ctx = SolveCtx {
            model: &model,
            depth: 0,
            local_lb: &lb,
            local_ub: &ub,
            relax_x: Some(&relax),
            relax_obj: Some(-1.5),
            incumbent_obj: None,
            incumbent_x: None,
            reduced_costs: &[],
            cuts: &mut cuts,
            tightenings: &mut tight,
            seed: 3,
        };
        let cand = h.run(&mut ctx).expect("some rounding must be feasible");
        assert!(p.is_feasible(&cand, 1e-8));
        assert!((p.obj(&cand) - 1.0).abs() < 1e-9);
    }
}
