//! A SCIP-SDP-style solver for mixed integer semidefinite programs.
//!
//! Following §3.2 of the paper, MISDPs of the form
//!
//! ```text
//! sup bᵀy   s.t.  C − Σᵢ Aᵢ yᵢ ⪰ 0,  ℓ ≤ y ≤ u,  yᵢ ∈ ℤ for i ∈ I
//! ```
//!
//! are solved by **two approaches**, both built as plugins on the
//! `ugrs-cip` framework:
//!
//! * **LP-based cutting planes** ([`eigcut`]): the SDP constraint is
//!   enforced through Sherali–Fraticelli eigenvector cuts
//!   `vᵀ(C − Σ Aᵢ yᵢ)v ≥ 0` with `v` the eigenvector of the most
//!   negative eigenvalue — inequality (9) of the paper;
//! * **nonlinear branch-and-bound** ([`relax`]): each node solves a
//!   continuous SDP relaxation through `ugrs-sdp`, with the penalty
//!   formulation as fallback when branching harms the Slater condition.
//!
//! The racing settings of `ug [SCIP-SDP, *]` ([`settings`]) alternate
//! between the two (§3.2: "half of them using LP-based settings and the
//! rest using SDP-settings"), which is what Figure 1 of the paper
//! measures. Instance generators for the three CBLIB families of Table 4
//! (truss topology design, cardinality-constrained least squares,
//! minimum k-partitioning) live in [`gen`].

pub mod cbf;
pub mod eigcut;
pub mod gen;
pub mod heur;
pub mod model;
pub mod relax;
pub mod settings;
pub mod solver;

pub use model::MisdpProblem;
pub use settings::{decode_settings, racing_settings, Approach};
pub use solver::{MisdpResult, MisdpSolver};
