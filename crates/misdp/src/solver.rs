//! The SCIP-SDP-style solver facade: build the CIP model, register the
//! approach-specific plugins, solve, report in maximization sense.

use crate::eigcut::EigenCutHandler;
use crate::heur::RandomizedRounding;
use crate::model::MisdpProblem;
use crate::relax::SdpRelaxator;
use crate::settings::Approach;
use std::sync::Arc;
use ugrs_cip::{ControlHooks, Model, NoHooks, Settings, SolveStatus, Solver as CipSolver, VarType};

/// Result of a MISDP solve (maximization sense).
#[derive(Clone, Debug)]
pub struct MisdpResult {
    pub status: SolveStatus,
    pub best_obj: Option<f64>,
    pub y: Option<Vec<f64>>,
    /// Upper bound on the supremum.
    pub dual_bound: f64,
    pub stats: ugrs_cip::Statistics,
}

/// Builds the CIP model (variables, bounds, integrality, linear rows) —
/// the SDP blocks enter through plugins.
pub fn build_cip_model(p: &MisdpProblem) -> Model {
    let mut model = Model::new(&p.name);
    model.set_maximize();
    let vars: Vec<ugrs_cip::VarId> = (0..p.m)
        .map(|i| {
            let vtype = if p.integer[i] { VarType::Integer } else { VarType::Continuous };
            model.add_var("y", vtype, p.lb[i], p.ub[i], p.b[i])
        })
        .collect();
    for row in &p.lin {
        let terms: Vec<(ugrs_cip::VarId, f64)> =
            row.terms.iter().map(|&(i, c)| (vars[i], c)).collect();
        model.add_linear(row.lhs.max(-1e18), row.rhs.min(1e18), &terms);
    }
    model
}

/// Registers the approach-specific plugin set on a CIP solver.
pub fn register_plugins(solver: &mut CipSolver, p: Arc<MisdpProblem>, approach: Approach) {
    // The eigenvector handler doubles as the exact feasibility checker in
    // both modes; in SDP mode its cuts are never needed because relaxation
    // solutions are PSD by construction.
    solver.add_conshdlr(Box::new(EigenCutHandler::new(p.clone())));
    solver.add_heuristic(Box::new(RandomizedRounding::new(p.clone())));
    if approach == Approach::Sdp {
        solver.set_relaxator(Box::new(SdpRelaxator::new(p)));
    }
}

/// The high-level solver.
pub struct MisdpSolver {
    pub problem: Arc<MisdpProblem>,
    pub approach: Approach,
    pub settings: Settings,
}

impl MisdpSolver {
    pub fn new(problem: MisdpProblem, approach: Approach, mut settings: Settings) -> Self {
        settings.use_relaxator = approach == Approach::Sdp;
        MisdpSolver { problem: Arc::new(problem), approach, settings }
    }

    pub fn solve(&self) -> MisdpResult {
        self.solve_hooked(&mut NoHooks)
    }

    pub fn solve_hooked(&self, hooks: &mut dyn ControlHooks) -> MisdpResult {
        let model = build_cip_model(&self.problem);
        let mut solver = CipSolver::new(model, self.settings.clone());
        register_plugins(&mut solver, self.problem.clone(), self.approach);
        let res = solver.solve(hooks);
        MisdpResult {
            status: res.status,
            best_obj: res.best_obj,
            y: res.best_x,
            dual_bound: res.dual_bound,
            stats: res.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cardinality_ls, min_k_partitioning, truss_topology};
    use crate::settings::{decode_settings, racing_settings};
    use ugrs_linalg::Matrix;
    use ugrs_sdp::SdpBlock;

    fn toy() -> MisdpProblem {
        // max 2·y0 + y1: y0 ∈ {0,1}, y1 ∈ [0,1] cont.;
        // block [[1.2 − y0, 0.4·y1], [0.4·y1, 1 − y1]] ⪰ 0.
        let mut p = MisdpProblem::new("toy", 2);
        p.b = vec![2.0, 1.0];
        p.lb = vec![0.0, 0.0];
        p.ub = vec![1.0, 1.0];
        p.integer = vec![true, false];
        let mut blk = SdpBlock::new(2, 2);
        blk.c = Matrix::from_rows(2, 2, vec![1.2, 0.0, 0.0, 1.0]).unwrap();
        let mut a0 = Matrix::zeros(2, 2);
        a0[(0, 0)] = 1.0;
        blk.set_a(0, a0);
        let mut a1 = Matrix::zeros(2, 2);
        a1[(0, 1)] = -0.4;
        a1[(1, 0)] = -0.4;
        a1[(1, 1)] = 1.0;
        blk.set_a(1, a1);
        p.blocks.push(blk);
        p
    }

    fn solve_both(p: MisdpProblem) -> (MisdpResult, MisdpResult) {
        let lp = MisdpSolver::new(p.clone(), Approach::Lp, Settings::default()).solve();
        let sdp = MisdpSolver::new(p, Approach::Sdp, Settings::default()).solve();
        (lp, sdp)
    }

    #[test]
    fn both_approaches_agree_on_toy() {
        let (lp, sdp) = solve_both(toy());
        assert_eq!(lp.status, SolveStatus::Optimal, "lp failed");
        assert_eq!(sdp.status, SolveStatus::Optimal, "sdp failed");
        let (a, b) = (lp.best_obj.unwrap(), sdp.best_obj.unwrap());
        assert!((a - b).abs() < 1e-3, "lp {a} vs sdp {b}");
        // Both must return genuinely feasible points.
        let p = toy();
        assert!(p.is_feasible(lp.y.as_ref().unwrap(), 1e-4));
        assert!(p.is_feasible(sdp.y.as_ref().unwrap(), 1e-4));
    }

    #[test]
    fn both_approaches_agree_on_ttd() {
        let (lp, sdp) = solve_both(truss_topology(3, 6, 2));
        assert_eq!(lp.status, SolveStatus::Optimal);
        assert_eq!(sdp.status, SolveStatus::Optimal);
        assert!(
            (lp.best_obj.unwrap() - sdp.best_obj.unwrap()).abs() < 1e-3,
            "lp {:?} vs sdp {:?}",
            lp.best_obj,
            sdp.best_obj
        );
    }

    #[test]
    fn both_approaches_agree_on_cls() {
        let (lp, sdp) = solve_both(cardinality_ls(5, 2, 4));
        assert_eq!(lp.status, SolveStatus::Optimal);
        assert_eq!(sdp.status, SolveStatus::Optimal);
        assert!((lp.best_obj.unwrap() - sdp.best_obj.unwrap()).abs() < 1e-3);
    }

    #[test]
    fn both_approaches_agree_on_mkp() {
        let (lp, sdp) = solve_both(min_k_partitioning(4, 2, 6));
        assert_eq!(lp.status, SolveStatus::Optimal);
        assert_eq!(sdp.status, SolveStatus::Optimal);
        assert!((lp.best_obj.unwrap() - sdp.best_obj.unwrap()).abs() < 1e-3);
    }

    #[test]
    fn racing_settings_drive_solver_modes() {
        let p = toy();
        for s in racing_settings(4) {
            let (approach, cip) = decode_settings(&s);
            let res = MisdpSolver::new(p.clone(), approach, cip).solve();
            assert_eq!(res.status, SolveStatus::Optimal, "settings {}", s.name);
        }
    }
}
