//! CBF-lite I/O: a reader/writer for the subset of the Conic Benchmark
//! Format (CBLIB's format, [Friberg 2016]) that MISDPs of form (8) need.
//!
//! Supported sections: `VER`, `OBJSENSE`, `VAR` (with `F`/`L+`/`L-`
//! domains folded into bounds), `INT`, `PSDCON` (one entry per block
//! dimension), `OBJACOORD` (objective), `ACOORD`-style linear rows via
//! `CON`/`LCOORD`/`LRHS` (simplified), and the PSD coefficient sections
//! `HCOORD` (variable k, block b, row i, col j, value) and `DCOORD`
//! (block constants). This covers everything our generators and solver
//! need; exotic CBF features (power cones etc.) are rejected loudly.
//!
//! The writer emits exactly the dialect the reader accepts, so generated
//! instances can be exported, inspected and re-imported.

use crate::model::MisdpProblem;
use ugrs_linalg::Matrix;
use ugrs_sdp::SdpBlock;

/// Errors from CBF parsing.
#[derive(Debug)]
pub enum CbfError {
    Io(std::io::Error),
    Parse(String),
}

impl std::fmt::Display for CbfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbfError::Io(e) => write!(f, "io error: {e}"),
            CbfError::Parse(s) => write!(f, "cbf parse error: {s}"),
        }
    }
}
impl std::error::Error for CbfError {}
impl From<std::io::Error> for CbfError {
    fn from(e: std::io::Error) -> Self {
        CbfError::Io(e)
    }
}

/// `(lhs, rhs, sparse coefficients)` of a parsed linear row.
type LinearRow = (f64, f64, Vec<(usize, f64)>);

fn perr(msg: impl Into<String>) -> CbfError {
    CbfError::Parse(msg.into())
}

/// Writes a problem in CBF-lite text.
pub fn write_cbf(p: &MisdpProblem) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "VER\n3\n").unwrap();
    writeln!(s, "OBJSENSE\nMAX\n").unwrap();
    writeln!(s, "VAR\n{} 1\nF {}\n", p.m, p.m).unwrap();
    let ints: Vec<usize> = (0..p.m).filter(|&i| p.integer[i]).collect();
    if !ints.is_empty() {
        writeln!(s, "INT\n{}", ints.len()).unwrap();
        for i in &ints {
            writeln!(s, "{i}").unwrap();
        }
        writeln!(s).unwrap();
    }
    // Bounds as a BOUNDS extension (not core CBF, but self-describing).
    writeln!(s, "BOUNDS\n{}", p.m).unwrap();
    for i in 0..p.m {
        writeln!(s, "{} {} {}", i, p.lb[i], p.ub[i]).unwrap();
    }
    writeln!(s).unwrap();
    writeln!(s, "OBJACOORD\n{}", p.b.iter().filter(|v| **v != 0.0).count()).unwrap();
    for (i, v) in p.b.iter().enumerate() {
        if *v != 0.0 {
            writeln!(s, "{i} {v}").unwrap();
        }
    }
    writeln!(s).unwrap();
    if !p.blocks.is_empty() {
        writeln!(s, "PSDCON\n{}", p.blocks.len()).unwrap();
        for b in &p.blocks {
            writeln!(s, "{}", b.dim).unwrap();
        }
        writeln!(s).unwrap();
        // HCOORD: var, block, row, col, value — note CBF's convention is
        // Σ H y + D ⪰ 0; ours is C − Σ A y ⪰ 0, so H = −A, D = C.
        let mut hcoords = Vec::new();
        let mut dcoords = Vec::new();
        for (bi, blk) in p.blocks.iter().enumerate() {
            for (vi, a) in blk.a.iter().enumerate() {
                if let Some(a) = a {
                    for r in 0..blk.dim {
                        for c in 0..=r {
                            if a[(r, c)] != 0.0 {
                                hcoords.push((vi, bi, r, c, -a[(r, c)]));
                            }
                        }
                    }
                }
            }
            for r in 0..blk.dim {
                for c in 0..=r {
                    if blk.c[(r, c)] != 0.0 {
                        dcoords.push((bi, r, c, blk.c[(r, c)]));
                    }
                }
            }
        }
        writeln!(s, "HCOORD\n{}", hcoords.len()).unwrap();
        for (v, b, r, c, val) in hcoords {
            writeln!(s, "{v} {b} {r} {c} {val}").unwrap();
        }
        writeln!(s).unwrap();
        writeln!(s, "DCOORD\n{}", dcoords.len()).unwrap();
        for (b, r, c, val) in dcoords {
            writeln!(s, "{b} {r} {c} {val}").unwrap();
        }
        writeln!(s).unwrap();
    }
    if !p.lin.is_empty() {
        writeln!(s, "LROWS\n{}", p.lin.len()).unwrap();
        for row in &p.lin {
            write!(s, "{} {} {}", row.lhs, row.rhs, row.terms.len()).unwrap();
            for (i, c) in &row.terms {
                write!(s, " {i} {c}").unwrap();
            }
            writeln!(s).unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// Parses CBF-lite text into a problem.
pub fn parse_cbf(text: &str) -> Result<MisdpProblem, CbfError> {
    let mut tokens: Vec<&str> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        tokens.push(line);
    }
    let mut pos = 0usize;
    let mut m = 0usize;
    let mut maximize = true;
    let mut integers: Vec<usize> = Vec::new();
    let mut bounds: Vec<(usize, f64, f64)> = Vec::new();
    let mut obj: Vec<(usize, f64)> = Vec::new();
    let mut dims: Vec<usize> = Vec::new();
    let mut hcoords: Vec<(usize, usize, usize, usize, f64)> = Vec::new();
    let mut dcoords: Vec<(usize, usize, usize, f64)> = Vec::new();
    let mut lrows: Vec<LinearRow> = Vec::new();

    let next = |pos: &mut usize, tokens: &[&str]| -> Result<String, CbfError> {
        let t = tokens.get(*pos).ok_or_else(|| perr("unexpected end of file"))?;
        *pos += 1;
        Ok(t.to_string())
    };

    while pos < tokens.len() {
        let section = next(&mut pos, &tokens)?;
        match section.as_str() {
            "VER" => {
                let _ = next(&mut pos, &tokens)?;
            }
            "OBJSENSE" => {
                let s = next(&mut pos, &tokens)?;
                maximize = s.eq_ignore_ascii_case("MAX");
            }
            "VAR" => {
                let header = next(&mut pos, &tokens)?;
                let mut it = header.split_whitespace();
                m = it
                    .next()
                    .ok_or_else(|| perr("VAR needs a count"))?
                    .parse()
                    .map_err(|e| perr(format!("bad VAR count: {e}")))?;
                let ncones: usize = it
                    .next()
                    .ok_or_else(|| perr("VAR needs a cone count"))?
                    .parse()
                    .map_err(|e| perr(format!("bad cone count: {e}")))?;
                let mut seen = 0usize;
                for _ in 0..ncones {
                    let cone = next(&mut pos, &tokens)?;
                    let mut it = cone.split_whitespace();
                    let kind = it.next().ok_or_else(|| perr("empty cone line"))?.to_string();
                    let len: usize = it
                        .next()
                        .ok_or_else(|| perr("cone needs a length"))?
                        .parse()
                        .map_err(|e| perr(format!("bad cone length: {e}")))?;
                    match kind.as_str() {
                        "F" => {}
                        "L+" => {
                            for i in seen..seen + len {
                                bounds.push((i, 0.0, 1e9));
                            }
                        }
                        "L-" => {
                            for i in seen..seen + len {
                                bounds.push((i, -1e9, 0.0));
                            }
                        }
                        other => return Err(perr(format!("unsupported cone `{other}`"))),
                    }
                    seen += len;
                }
            }
            "INT" => {
                let n: usize = next(&mut pos, &tokens)?
                    .parse()
                    .map_err(|e| perr(format!("bad INT count: {e}")))?;
                for _ in 0..n {
                    integers.push(
                        next(&mut pos, &tokens)?
                            .parse()
                            .map_err(|e| perr(format!("bad INT index: {e}")))?,
                    );
                }
            }
            "BOUNDS" => {
                let n: usize = next(&mut pos, &tokens)?
                    .parse()
                    .map_err(|e| perr(format!("bad BOUNDS count: {e}")))?;
                for _ in 0..n {
                    let line = next(&mut pos, &tokens)?;
                    let v: Vec<&str> = line.split_whitespace().collect();
                    if v.len() != 3 {
                        return Err(perr("BOUNDS line needs `idx lb ub`"));
                    }
                    bounds.push((
                        v[0].parse().map_err(|e| perr(format!("bad index: {e}")))?,
                        v[1].parse().map_err(|e| perr(format!("bad lb: {e}")))?,
                        v[2].parse().map_err(|e| perr(format!("bad ub: {e}")))?,
                    ));
                }
            }
            "OBJACOORD" => {
                let n: usize = next(&mut pos, &tokens)?
                    .parse()
                    .map_err(|e| perr(format!("bad OBJACOORD count: {e}")))?;
                for _ in 0..n {
                    let line = next(&mut pos, &tokens)?;
                    let v: Vec<&str> = line.split_whitespace().collect();
                    if v.len() != 2 {
                        return Err(perr("OBJACOORD line needs `idx value`"));
                    }
                    obj.push((
                        v[0].parse().map_err(|e| perr(format!("bad index: {e}")))?,
                        v[1].parse().map_err(|e| perr(format!("bad value: {e}")))?,
                    ));
                }
            }
            "PSDCON" => {
                let n: usize = next(&mut pos, &tokens)?
                    .parse()
                    .map_err(|e| perr(format!("bad PSDCON count: {e}")))?;
                for _ in 0..n {
                    dims.push(
                        next(&mut pos, &tokens)?
                            .parse()
                            .map_err(|e| perr(format!("bad PSDCON dim: {e}")))?,
                    );
                }
            }
            "HCOORD" => {
                let n: usize = next(&mut pos, &tokens)?
                    .parse()
                    .map_err(|e| perr(format!("bad HCOORD count: {e}")))?;
                for _ in 0..n {
                    let line = next(&mut pos, &tokens)?;
                    let v: Vec<&str> = line.split_whitespace().collect();
                    if v.len() != 5 {
                        return Err(perr("HCOORD line needs 5 fields"));
                    }
                    hcoords.push((
                        v[0].parse().map_err(|e| perr(format!("bad var: {e}")))?,
                        v[1].parse().map_err(|e| perr(format!("bad block: {e}")))?,
                        v[2].parse().map_err(|e| perr(format!("bad row: {e}")))?,
                        v[3].parse().map_err(|e| perr(format!("bad col: {e}")))?,
                        v[4].parse().map_err(|e| perr(format!("bad value: {e}")))?,
                    ));
                }
            }
            "DCOORD" => {
                let n: usize = next(&mut pos, &tokens)?
                    .parse()
                    .map_err(|e| perr(format!("bad DCOORD count: {e}")))?;
                for _ in 0..n {
                    let line = next(&mut pos, &tokens)?;
                    let v: Vec<&str> = line.split_whitespace().collect();
                    if v.len() != 4 {
                        return Err(perr("DCOORD line needs 4 fields"));
                    }
                    dcoords.push((
                        v[0].parse().map_err(|e| perr(format!("bad block: {e}")))?,
                        v[1].parse().map_err(|e| perr(format!("bad row: {e}")))?,
                        v[2].parse().map_err(|e| perr(format!("bad col: {e}")))?,
                        v[3].parse().map_err(|e| perr(format!("bad value: {e}")))?,
                    ));
                }
            }
            "LROWS" => {
                let n: usize = next(&mut pos, &tokens)?
                    .parse()
                    .map_err(|e| perr(format!("bad LROWS count: {e}")))?;
                for _ in 0..n {
                    let line = next(&mut pos, &tokens)?;
                    let v: Vec<&str> = line.split_whitespace().collect();
                    if v.len() < 3 {
                        return Err(perr("LROWS line needs `lhs rhs n [idx coef]...`"));
                    }
                    let lhs: f64 = v[0].parse().map_err(|e| perr(format!("bad lhs: {e}")))?;
                    let rhs: f64 = v[1].parse().map_err(|e| perr(format!("bad rhs: {e}")))?;
                    let k: usize = v[2].parse().map_err(|e| perr(format!("bad count: {e}")))?;
                    if v.len() != 3 + 2 * k {
                        return Err(perr("LROWS line has wrong term count"));
                    }
                    let mut terms = Vec::with_capacity(k);
                    for t in 0..k {
                        terms.push((
                            v[3 + 2 * t].parse().map_err(|e| perr(format!("bad idx: {e}")))?,
                            v[4 + 2 * t].parse().map_err(|e| perr(format!("bad coef: {e}")))?,
                        ));
                    }
                    lrows.push((lhs, rhs, terms));
                }
            }
            other => return Err(perr(format!("unsupported section `{other}`"))),
        }
    }

    if m == 0 {
        return Err(perr("no VAR section"));
    }
    let mut p = MisdpProblem::new("cbf", m);
    if !maximize {
        // Internal form maximizes; flip the objective.
        for (_, v) in obj.iter_mut() {
            *v = -*v;
        }
    }
    for (i, v) in obj {
        if i >= m {
            return Err(perr("objective index out of range"));
        }
        p.b[i] = v;
    }
    for (i, l, u) in bounds {
        if i >= m {
            return Err(perr("bound index out of range"));
        }
        p.lb[i] = l;
        p.ub[i] = u;
    }
    for i in integers {
        if i >= m {
            return Err(perr("integer index out of range"));
        }
        p.integer[i] = true;
    }
    let mut blocks: Vec<SdpBlock> = dims.iter().map(|&d| SdpBlock::new(d, m)).collect();
    for (b, r, c, v) in dcoords {
        let blk = blocks.get_mut(b).ok_or_else(|| perr("DCOORD block out of range"))?;
        if r >= blk.dim || c >= blk.dim {
            return Err(perr("DCOORD entry out of range"));
        }
        blk.c[(r, c)] = v;
        blk.c[(c, r)] = v;
    }
    // H = −A: accumulate into dense A matrices.
    let mut amats: Vec<Vec<Option<Matrix>>> = dims.iter().map(|&_d| vec![None; m]).collect();
    for (var, b, r, c, v) in hcoords {
        if var >= m {
            return Err(perr("HCOORD var out of range"));
        }
        let dim = *dims.get(b).ok_or_else(|| perr("HCOORD block out of range"))?;
        if r >= dim || c >= dim {
            return Err(perr("HCOORD entry out of range"));
        }
        let slot = &mut amats[b][var];
        let mat = slot.get_or_insert_with(|| Matrix::zeros(dim, dim));
        mat[(r, c)] = -v;
        mat[(c, r)] = -v;
    }
    for (b, vars) in amats.into_iter().enumerate() {
        for (var, mat) in vars.into_iter().enumerate() {
            if let Some(mat) = mat {
                blocks[b].set_a(var, mat);
            }
        }
    }
    for blk in blocks {
        p.blocks.push(blk);
    }
    for (lhs, rhs, terms) in lrows {
        for (i, _) in &terms {
            if *i >= m {
                return Err(perr("LROWS index out of range"));
            }
        }
        p.lin.push(ugrs_sdp::LinRow { lhs, rhs, terms });
    }
    Ok(p)
}

/// Reads a CBF-lite file.
pub fn read_cbf(path: &std::path::Path) -> Result<MisdpProblem, CbfError> {
    let text = std::fs::read_to_string(path)?;
    parse_cbf(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cardinality_ls, min_k_partitioning, truss_topology};

    fn round_trip(p: &MisdpProblem) {
        let text = write_cbf(p);
        let q = parse_cbf(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(q.m, p.m);
        assert_eq!(q.integer, p.integer);
        assert_eq!(q.b, p.b);
        assert_eq!(q.blocks.len(), p.blocks.len());
        assert_eq!(q.lin.len(), p.lin.len());
        // Semantics: feasibility of reference points must agree.
        let mid: Vec<f64> =
            (0..p.m).map(|i| 0.5 * (p.lb[i] + p.ub[i]).clamp(-10.0, 10.0)).collect();
        assert_eq!(p.is_feasible(&mid, 1e-7), q.is_feasible(&mid, 1e-7));
        let ones: Vec<f64> = (0..p.m).map(|i| p.ub[i].min(1.0)).collect();
        assert_eq!(p.is_feasible(&ones, 1e-7), q.is_feasible(&ones, 1e-7));
    }

    #[test]
    fn generated_families_round_trip() {
        round_trip(&truss_topology(3, 6, 1));
        round_trip(&cardinality_ls(5, 2, 2));
        round_trip(&min_k_partitioning(4, 2, 3));
    }

    #[test]
    fn rejects_unknown_sections() {
        assert!(parse_cbf("POWCONES\n1\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let text = "VER\n3\nVAR\n2 1\nF 2\nOBJACOORD\n1\n5 1.0\n";
        assert!(parse_cbf(text).is_err());
    }

    #[test]
    fn minimization_objective_is_flipped() {
        let text = "VER\n3\nOBJSENSE\nMIN\nVAR\n1 1\nF 1\nOBJACOORD\n1\n0 2.0\n";
        let p = parse_cbf(text).unwrap();
        assert_eq!(p.b[0], -2.0); // internal sense maximizes
    }
}
