//! Generators for the three CBLIB application families of Table 4 /
//! Figure 1, at laptop scale:
//!
//! * **TTD** — truss-topology-design-like: choose bars (binaries) whose
//!   rank-1 stiffness contributions must dominate `τ·I`; minimize
//!   material volume. Genuinely coupled PSD constraint → both
//!   approaches work, LP slightly ahead (as in Figure 1).
//! * **CLS** — cardinality-constrained least-squares-like (best subset
//!   selection): pick at most `k` features so the regularized residual
//!   operator `D(z) + t·I − Q` stays PSD with minimal `t`. The block is
//!   diagonally dominated → eigenvector cuts converge fast, so LP-based
//!   settings dominate (Figure 1's lopsided CLS column).
//! * **MkP** — minimum-k-partitioning: the classic SDP formulation with
//!   `X_ij ∈ {−1/(k−1), 1}` entries and `X ⪰ 0` (transitivity and the
//!   cluster cap are enforced by positive semidefiniteness alone); the
//!   SDP bound is far stronger than the polyhedral one, so SDP-based
//!   settings win (Figure 1's MkP column).

use crate::model::MisdpProblem;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugrs_linalg::Matrix;
use ugrs_sdp::SdpBlock;

/// Truss-topology-like instance: `bars` candidate bars in a `dim`-DOF
/// space; minimize Σ cost_j x_j s.t. Σ x_j K_j ⪰ τ·I, x binary.
pub fn truss_topology(dim: usize, bars: usize, seed: u64) -> MisdpProblem {
    assert!(bars >= dim);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7474_6400);
    let mut p = MisdpProblem::new(&format!("ttd-{dim}-{bars}-{seed}"), bars);
    let mut total = Matrix::zeros(dim, dim);
    let mut ks = Vec::with_capacity(bars);
    for j in 0..bars {
        // Direction vector: axis-aligned for the first `dim` bars (so the
        // full structure is nonsingular), random afterwards.
        let mut g = vec![0.0; dim];
        if j < dim {
            g[j] = 1.0 + rng.gen_range(0.0..0.5);
        } else {
            for v in g.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        let mut k = Matrix::zeros(dim, dim);
        for a in 0..dim {
            for b in 0..dim {
                k[(a, b)] = g[a] * g[b];
            }
        }
        total.add_scaled(1.0, &k).unwrap();
        ks.push(k);
        p.b[j] = -(1.0 + rng.gen_range(0..5) as f64); // maximize −cost
        p.lb[j] = 0.0;
        p.ub[j] = 1.0;
        p.integer[j] = true;
    }
    // τ = a fraction of λmin(Σ K): all-ones is strictly feasible.
    let lam_min = ugrs_linalg::eigen::symmetric_eigen(&total).unwrap().values[0];
    let tau = 0.3 * lam_min.max(0.1);
    let mut blk = SdpBlock::new(dim, bars);
    let mut c = Matrix::zeros(dim, dim);
    for d in 0..dim {
        c[(d, d)] = -tau;
    }
    blk.c = c;
    for (j, k) in ks.into_iter().enumerate() {
        let mut a = k;
        ugrs_linalg::vector::scale(-1.0, a.data_mut()); // A_j = −K_j
        blk.set_a(j, a);
    }
    p.blocks.push(blk);
    p
}

/// Cardinality-constrained least-squares-like instance: variables
/// `z_1..z_p` binary plus continuous `t`; maximize `−t` s.t.
/// `diag(σ·z) + t·I − Q ⪰ 0` and `Σ z ≤ k`.
pub fn cardinality_ls(pdim: usize, k: usize, seed: u64) -> MisdpProblem {
    let m = pdim + 1; // z's then t
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x636c_7300);
    let mut p = MisdpProblem::new(&format!("cls-{pdim}-{k}-{seed}"), m);
    for i in 0..pdim {
        p.b[i] = 0.0;
        p.lb[i] = 0.0;
        p.ub[i] = 1.0;
        p.integer[i] = true;
    }
    let t = pdim;
    p.b[t] = -1.0; // maximize −t
    p.lb[t] = 0.0;
    p.ub[t] = 1e4;
    // Q: PSD with dominant diagonal and small couplings.
    let mut q = Matrix::zeros(pdim, pdim);
    for i in 0..pdim {
        q[(i, i)] = 1.0 + rng.gen_range(0.0..3.0);
        for j in (i + 1)..pdim {
            let v = rng.gen_range(-0.15..0.15);
            q[(i, j)] = v;
            q[(j, i)] = v;
        }
    }
    let sigmas: Vec<f64> = (0..pdim).map(|_| 1.0 + rng.gen_range(0.0..2.0)).collect();
    // Block: diag(σ z) + t·I − Q ⪰ 0  ⇔  C − Σ A y ⪰ 0 with C = −Q,
    // A_{z_i} = −σ_i e_i e_iᵀ, A_t = −I.
    let mut blk = SdpBlock::new(pdim, m);
    let mut c = q.clone();
    ugrs_linalg::vector::scale(-1.0, c.data_mut());
    blk.c = c;
    for i in 0..pdim {
        let mut a = Matrix::zeros(pdim, pdim);
        a[(i, i)] = -sigmas[i];
        blk.set_a(i, a);
    }
    let mut at = Matrix::zeros(pdim, pdim);
    for d in 0..pdim {
        at[(d, d)] = -1.0;
    }
    blk.set_a(t, at);
    p.blocks.push(blk);
    // Cardinality row.
    p.lin.push(ugrs_sdp::LinRow {
        lhs: f64::NEG_INFINITY,
        rhs: k as f64,
        terms: (0..pdim).map(|i| (i, 1.0)).collect(),
    });
    p
}

/// Minimum-k-partitioning instance on a random weighted graph with `n`
/// vertices: variables `y_{ij} ∈ {0,1}` (1 = same cluster); minimize the
/// weight inside clusters, under `X(y) ⪰ 0` with
/// `X_ij = −1/(k−1) + y_ij·k/(k−1)`.
pub fn min_k_partitioning(n: usize, k: usize, seed: u64) -> MisdpProblem {
    assert!(k >= 2 && n >= 3);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d6b_7000);
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))).collect();
    let m = pairs.len();
    let mut p = MisdpProblem::new(&format!("mkp-{n}-{k}-{seed}"), m);
    for (v, _) in pairs.iter().enumerate() {
        p.b[v] = -(rng.gen_range(1..10) as f64); // maximize −(within weight)
        p.lb[v] = 0.0;
        p.ub[v] = 1.0;
        p.integer[v] = true;
    }
    let off = -1.0 / (k as f64 - 1.0);
    let step = k as f64 / (k as f64 - 1.0);
    let mut blk = SdpBlock::new(n, m);
    let mut c = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            c[(i, j)] = if i == j { 1.0 } else { off };
        }
    }
    blk.c = c;
    for (v, &(i, j)) in pairs.iter().enumerate() {
        // X = C + step·y_ij (E_ij + E_ji) ⇒ A = −step (E_ij + E_ji).
        let mut a = Matrix::zeros(n, n);
        a[(i, j)] = -step;
        a[(j, i)] = -step;
        blk.set_a(v, a);
    }
    p.blocks.push(blk);
    // Deliberately *no* triangle inequalities: for integral points the
    // PSD constraint alone enforces transitivity (an intransitive triple
    // gives a principal 3×3 submatrix [[1,1,o],[1,1,1],[o,1,1]] with
    // determinant −(1−o)² < 0) and caps the number of clusters at k.
    // This is what makes MkP the family where the semidefinite
    // relaxation decisively beats the polyhedral one — the Figure 1
    // signal.
    p
}

/// The benchmark sets used by the Table 4 / Figure 1 harness:
/// `(family name, instances)`.
pub fn table4_testsets(per_family: usize) -> Vec<(&'static str, Vec<MisdpProblem>)> {
    let ttd: Vec<MisdpProblem> =
        (0..per_family).map(|s| truss_topology(7 + s % 2, 18 + 2 * (s % 3), s as u64)).collect();
    let cls: Vec<MisdpProblem> =
        (0..per_family).map(|s| cardinality_ls(15 + s % 4, 5 + s % 2, s as u64)).collect();
    let mkp: Vec<MisdpProblem> =
        (0..per_family).map(|s| min_k_partitioning(10 + s % 2, 3, s as u64)).collect();
    vec![("TTD", ttd), ("CLS", cls), ("Mk-P", mkp)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttd_all_ones_is_feasible() {
        let p = truss_topology(4, 9, 1);
        let y = vec![1.0; 9];
        assert!(p.is_feasible(&y, 1e-7), "all bars chosen must be feasible");
        assert!(p.obj(&y) < 0.0); // costs are negative in max sense
    }

    #[test]
    fn cls_full_selection_with_big_t_is_feasible() {
        let p = cardinality_ls(6, 2, 3);
        // z = 0, t large: t·I − Q ⪰ 0 for t ≥ λmax(Q).
        let mut y = vec![0.0; 7];
        y[6] = 50.0;
        assert!(p.is_feasible(&y, 1e-7));
    }

    #[test]
    fn mkp_single_cluster_is_feasible() {
        let p = min_k_partitioning(5, 3, 7);
        let y = vec![1.0; p.m]; // everyone together: X = J ⪰ 0
        assert!(p.is_feasible(&y, 1e-7));
    }

    #[test]
    fn mkp_psd_catches_intransitivity() {
        let p = min_k_partitioning(4, 2, 7);
        // y_01 = 1, y_12 = 1 but y_02 = 0 violates transitivity — the PSD
        // block alone must reject it (no triangle rows in the model).
        let mut y = vec![0.0; p.m];
        y[0] = 1.0; // (0,1)
        y[3] = 1.0; // (1,2)
        assert!(!p.is_feasible(&y, 1e-7));
    }

    #[test]
    fn mkp_psd_caps_cluster_count() {
        // k = 2 but three singleton clusters on 3 vertices: X = C (all
        // off-diagonals −1) has eigenvalue 1 − 2 < 0 → infeasible.
        let p = min_k_partitioning(3, 2, 7);
        let y = vec![0.0; p.m];
        assert!(!p.is_feasible(&y, 1e-7));
    }

    #[test]
    fn generators_deterministic() {
        let a = truss_topology(3, 7, 5);
        let b = truss_topology(3, 7, 5);
        assert_eq!(a.b, b.b);
        let c = min_k_partitioning(5, 2, 9);
        let d = min_k_partitioning(5, 2, 9);
        assert_eq!(c.b, d.b);
    }

    #[test]
    fn testsets_shape() {
        let sets = table4_testsets(3);
        assert_eq!(sets.len(), 3);
        for (name, insts) in &sets {
            assert_eq!(insts.len(), 3, "{name}");
        }
    }
}
