//! The SDP relaxator: SCIP-SDP's nonlinear branch-and-bound mode (§3.2).
//! Each node solves a continuous SDP through the interior-point solver,
//! retrying with the penalty formulation when the plain solve runs into
//! Slater-condition trouble.

use crate::model::MisdpProblem;
use std::sync::Arc;
use ugrs_cip::{RelaxResult, Relaxator, SolveCtx};
use ugrs_sdp::{solve, solve_penalty, SdpOptions, SdpStatus};

/// The relaxator plugin.
pub struct SdpRelaxator {
    pub problem: Arc<MisdpProblem>,
    pub options: SdpOptions,
    /// Counts of plain/penalty solves (exposed for statistics/ablation).
    pub plain_solves: u64,
    pub penalty_solves: u64,
}

impl SdpRelaxator {
    pub fn new(problem: Arc<MisdpProblem>) -> Self {
        SdpRelaxator { problem, options: SdpOptions::default(), plain_solves: 0, penalty_solves: 0 }
    }
}

impl Relaxator for SdpRelaxator {
    fn name(&self) -> &str {
        "misdp-sdp-relax"
    }

    fn solve_relaxation(&mut self, ctx: &mut SolveCtx) -> RelaxResult {
        let sdp = self.problem.sdp_relaxation(ctx.local_lb, ctx.local_ub);
        self.plain_solves += 1;
        let mut res = solve(&sdp, &self.options);
        if res.status == SdpStatus::Numerical {
            // The penalty formulation (§3.2) repairs ill-posed relaxations
            // created by branching.
            self.penalty_solves += 1;
            res = solve_penalty(&sdp, &self.options);
        }
        match res.status {
            SdpStatus::Infeasible => RelaxResult::Infeasible,
            SdpStatus::Optimal => {
                // cip minimizes internally; the model stores obj = −b, so
                // the internal bound is −(bᵀy).
                RelaxResult::Bounded { bound: -res.obj, x: res.y }
            }
            SdpStatus::Unbounded | SdpStatus::Numerical => RelaxResult::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrs_cip::{CutBuffer, Model};
    use ugrs_linalg::Matrix;
    use ugrs_sdp::SdpBlock;

    fn run_relax(p: Arc<MisdpProblem>, lb: Vec<f64>, ub: Vec<f64>) -> RelaxResult {
        let mut r = SdpRelaxator::new(p);
        let model = Model::new("t");
        let mut cuts = CutBuffer::default();
        let mut tight = Vec::new();
        let mut ctx = SolveCtx {
            model: &model,
            depth: 0,
            local_lb: &lb,
            local_ub: &ub,
            relax_x: None,
            relax_obj: None,
            incumbent_obj: None,
            incumbent_x: None,
            reduced_costs: &[],
            cuts: &mut cuts,
            tightenings: &mut tight,
            seed: 0,
        };
        r.solve_relaxation(&mut ctx)
    }

    fn toy() -> Arc<MisdpProblem> {
        // max y, 1 − y ≥ 0 block, y ∈ [0, 5] integer.
        let mut p = MisdpProblem::new("t", 1);
        p.b = vec![1.0];
        p.lb = vec![0.0];
        p.ub = vec![5.0];
        p.integer = vec![true];
        let mut blk = SdpBlock::new(1, 1);
        blk.c = Matrix::from_rows(1, 1, vec![1.0]).unwrap();
        blk.set_a(0, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        p.blocks.push(blk);
        Arc::new(p)
    }

    #[test]
    fn bound_is_internal_sense() {
        match run_relax(toy(), vec![0.0], vec![5.0]) {
            RelaxResult::Bounded { bound, x } => {
                // max y = 1 → internal bound −1.
                assert!((bound + 1.0).abs() < 1e-3, "bound = {bound}");
                assert!((x[0] - 1.0).abs() < 1e-3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branching_bounds_propagate() {
        // Tighten y ≤ 0.4: SDP optimum moves to 0.4.
        match run_relax(toy(), vec![0.0], vec![0.4]) {
            RelaxResult::Bounded { bound, .. } => {
                assert!((bound + 0.4).abs() < 1e-3, "bound = {bound}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_bounds_detected() {
        // Force y ≥ 2 while the block caps y ≤ 1.
        match run_relax(toy(), vec![2.0], vec![5.0]) {
            RelaxResult::Infeasible => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
