//! The MISDP problem container (the paper's form (8) plus integrality).

use ugrs_sdp::{LinRow, SdpBlock, SdpProblem};

/// A mixed integer semidefinite program, maximized: `sup bᵀy`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MisdpProblem {
    pub name: String,
    pub m: usize,
    pub b: Vec<f64>,
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    /// Integrality flags (the set `I` of the paper).
    pub integer: Vec<bool>,
    pub blocks: Vec<SdpBlock>,
    pub lin: Vec<LinRow>,
}

impl MisdpProblem {
    pub fn new(name: &str, m: usize) -> Self {
        MisdpProblem {
            name: name.to_string(),
            m,
            b: vec![0.0; m],
            lb: vec![-1e6; m],
            ub: vec![1e6; m],
            integer: vec![false; m],
            blocks: Vec::new(),
            lin: Vec::new(),
        }
    }

    /// The continuous SDP relaxation with the given (possibly tightened)
    /// bounds.
    pub fn sdp_relaxation(&self, lb: &[f64], ub: &[f64]) -> SdpProblem {
        let mut p = SdpProblem::new(self.m);
        p.b = self.b.clone();
        p.lb = lb.to_vec();
        p.ub = ub.to_vec();
        p.blocks = self.blocks.clone();
        p.lin = self.lin.clone();
        p
    }

    /// Objective `bᵀy` (maximization sense).
    pub fn obj(&self, y: &[f64]) -> f64 {
        self.b.iter().zip(y).map(|(b, y)| b * y).sum()
    }

    /// Full feasibility check: bounds, integrality, rows, PSD blocks.
    pub fn is_feasible(&self, y: &[f64], tol: f64) -> bool {
        if y.len() != self.m {
            return false;
        }
        for (i, &yi) in y.iter().enumerate() {
            if self.integer[i] && (yi - yi.round()).abs() > tol {
                return false;
            }
        }
        self.sdp_relaxation(&self.lb, &self.ub).is_feasible(y, tol)
    }

    /// True if the objective vector is integral on the integer support
    /// and zero elsewhere (enables the stronger B&B cutoff).
    pub fn has_integral_objective(&self) -> bool {
        self.b.iter().zip(&self.integer).all(|(b, int)| {
            if *int {
                (b - b.round()).abs() < 1e-12
            } else {
                *b == 0.0
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrs_linalg::Matrix;

    fn toy() -> MisdpProblem {
        // max y0 + y1, y0 ∈ {0,1}, y1 ∈ [0, 2] cont., block: 2 − y0 − y1 ≥ 0.
        let mut p = MisdpProblem::new("toy", 2);
        p.b = vec![1.0, 1.0];
        p.lb = vec![0.0, 0.0];
        p.ub = vec![1.0, 2.0];
        p.integer = vec![true, false];
        let mut blk = SdpBlock::new(1, 2);
        blk.c = Matrix::from_rows(1, 1, vec![2.0]).unwrap();
        blk.set_a(0, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        blk.set_a(1, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        p.blocks.push(blk);
        p
    }

    #[test]
    fn feasibility_includes_integrality() {
        let p = toy();
        assert!(p.is_feasible(&[1.0, 1.0], 1e-8));
        assert!(!p.is_feasible(&[0.5, 0.5], 1e-8)); // fractional integer var
        assert!(!p.is_feasible(&[1.0, 1.5], 1e-8)); // block violated
        assert_eq!(p.obj(&[1.0, 1.0]), 2.0);
    }

    #[test]
    fn relaxation_carries_bounds() {
        let p = toy();
        let relax = p.sdp_relaxation(&[0.0, 0.5], &[0.0, 2.0]);
        assert_eq!(relax.lb, vec![0.0, 0.5]);
        assert!(relax.is_feasible(&[0.0, 1.0], 1e-9));
    }

    #[test]
    fn integral_objective_detection() {
        let mut p = toy();
        assert!(!p.has_integral_objective()); // continuous var has b ≠ 0
        p.b = vec![2.0, 0.0];
        assert!(p.has_integral_objective());
    }
}
