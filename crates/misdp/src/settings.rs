//! The racing settings of `ug [SCIP-SDP, *]`.
//!
//! §3.2: "the solution process in ug[SCIP-SDP,*] starts by creating a
//! number of SCIP-SDP solver instances with half of them using LP-based
//! settings and the rest using SDP-settings, with other parameter
//! settings also being changed". §4.2 / Figure 1: "each odd number
//! refers to an SDP-based setting while all even numbers belong to
//! LP-based settings" (1-based), with emphasis variations such as
//! `easycip`.

use ugrs_cip::{Emphasis, Settings};
use ugrs_core::SolverSettings;

/// Which relaxation backend a solver instance uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approach {
    /// Nonlinear branch-and-bound on SDP relaxations.
    Sdp,
    /// LP relaxation + eigenvector cutting planes.
    Lp,
}

const EMPHASES: [(&str, Emphasis); 4] = [
    ("default", Emphasis::Default),
    ("easycip", Emphasis::EasyCip),
    ("feas", Emphasis::Feasibility),
    ("opt", Emphasis::Optimality),
];

/// Builds `n` racing settings: odd 1-based indices are SDP-based, even
/// are LP-based; the emphasis cycles and the permutation seed varies.
pub fn racing_settings(n: usize) -> Vec<SolverSettings> {
    (0..n)
        .map(|i| {
            let one_based = i + 1;
            let approach = if one_based % 2 == 1 { "sdp" } else { "lp" };
            let (ename, _) = EMPHASES[(i / 2) % EMPHASES.len()];
            SolverSettings {
                index: i,
                name: format!("{approach}-{ename}-{i}"),
                params: serde_json::json!({
                    "approach": approach,
                    "emphasis": ename,
                    "seed": i as u64,
                }),
            }
        })
        .collect()
}

/// Decodes a settings bundle into the backend choice plus CIP settings.
pub fn decode_settings(s: &SolverSettings) -> (Approach, Settings) {
    let approach = match s.params.get("approach").and_then(|v| v.as_str()) {
        Some("lp") => Approach::Lp,
        _ => Approach::Sdp,
    };
    let emphasis = match s.params.get("emphasis").and_then(|v| v.as_str()) {
        Some("easycip") => Emphasis::EasyCip,
        Some("feas") => Emphasis::Feasibility,
        Some("opt") => Emphasis::Optimality,
        _ => Emphasis::Default,
    };
    let seed = s.params.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
    let mut settings = Settings::default().with_emphasis(emphasis).with_seed(seed);
    settings.use_relaxator = approach == Approach::Sdp;
    (approach, settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_indices_are_sdp_even_are_lp() {
        let set = racing_settings(8);
        assert_eq!(set.len(), 8);
        for (i, s) in set.iter().enumerate() {
            let (approach, cip) = decode_settings(s);
            if (i + 1) % 2 == 1 {
                assert_eq!(approach, Approach::Sdp, "index {i}");
                assert!(cip.use_relaxator);
            } else {
                assert_eq!(approach, Approach::Lp, "index {i}");
                assert!(!cip.use_relaxator);
            }
            assert_eq!(cip.permutation_seed, i as u64);
        }
    }

    #[test]
    fn emphasis_cycles() {
        let set = racing_settings(10);
        let (_, s0) = decode_settings(&set[0]);
        let (_, s2) = decode_settings(&set[2]);
        assert_eq!(s0.emphasis, Emphasis::Default);
        assert_eq!(s2.emphasis, Emphasis::EasyCip);
    }

    #[test]
    fn default_bundle_decodes_to_sdp_default() {
        let (a, s) = decode_settings(&SolverSettings::default_bundle());
        assert_eq!(a, Approach::Sdp);
        assert_eq!(s.emphasis, Emphasis::Default);
    }
}
