//! The eigenvector-cut constraint handler (LP-based approach, §3.2).
//!
//! For a candidate `y*` violating `S(y) = C − Σ Aᵢ yᵢ ⪰ 0`, the
//! eigenvector `v` of the most negative eigenvalue of `S(y*)` yields the
//! valid inequality (9):
//!
//! ```text
//! vᵀ C v − Σᵢ (vᵀ Aᵢ v) yᵢ ≥ 0,
//! ```
//!
//! which cuts `y*` off because `vᵀ S(y*) v = λmin ‖v‖² < 0`.

use crate::model::MisdpProblem;
use std::sync::Arc;
use ugrs_cip::{
    ConstraintHandler, Cut, CutBuffer, EnforceResult, Model, SepaResult, SolveCtx, VarId,
};
use ugrs_linalg::eigen::symmetric_eigen;

/// PSD feasibility tolerance for candidate checking.
pub const PSD_TOL: f64 = 1e-6;

/// The handler: owns the (immutable) problem and separates eigenvector
/// cuts for fractional and integral candidates alike.
pub struct EigenCutHandler {
    pub problem: Arc<MisdpProblem>,
    /// How many eigenvectors (from the most negative up) to turn into
    /// cuts per violated block and round.
    pub cuts_per_block: usize,
}

impl EigenCutHandler {
    pub fn new(problem: Arc<MisdpProblem>) -> Self {
        EigenCutHandler { problem, cuts_per_block: 2 }
    }

    /// Builds the cut for eigenvector `v` of block `blk`; `None` when the
    /// cut is trivial (all coefficients ~0).
    fn cut_for(&self, blk: usize, v: &[f64]) -> Option<Cut> {
        let block = &self.problem.blocks[blk];
        let rhs_free = block.c.quad_form(v); // vᵀCv
        let mut terms = Vec::new();
        for (i, ai) in block.a.iter().enumerate() {
            if let Some(a) = ai {
                let coef = a.quad_form(v);
                if coef.abs() > 1e-10 {
                    terms.push((VarId(i as u32), coef));
                }
            }
        }
        if terms.is_empty() {
            return None;
        }
        // Σ (vᵀAᵢv) yᵢ ≤ vᵀCv.
        Some(Cut::new("eigcut", f64::NEG_INFINITY, rhs_free, terms))
    }

    /// Separates all blocks at `y`; returns the number of cuts added.
    fn separate_at(&mut self, y: &[f64], buf: &mut CutBuffer) -> usize {
        let mut added = 0;
        for (bi, block) in self.problem.blocks.iter().enumerate() {
            let s = block.slack(y);
            let Ok(e) = symmetric_eigen(&s) else { continue };
            for k in 0..self.cuts_per_block.min(e.values.len()) {
                if e.values[k] < -PSD_TOL {
                    if let Some(cut) = self.cut_for(bi, &e.vectors.col(k)) {
                        buf.add(cut);
                        added += 1;
                    }
                } else {
                    break;
                }
            }
        }
        added
    }
}

impl ConstraintHandler for EigenCutHandler {
    fn name(&self) -> &str {
        "misdp-eigcut"
    }

    fn check(&mut self, _model: &Model, x: &[f64]) -> bool {
        self.problem
            .blocks
            .iter()
            .all(|b| symmetric_eigen(&b.slack(x)).map(|e| e.values[0] >= -PSD_TOL).unwrap_or(false))
    }

    fn enforce(&mut self, ctx: &mut SolveCtx) -> EnforceResult {
        let y = ctx.relax_x.expect("enforce needs a relaxation solution").to_vec();
        let mut buf = CutBuffer::default();
        let n = self.separate_at(&y, &mut buf);
        if n == 0 {
            return EnforceResult::Feasible;
        }
        for c in buf.cuts {
            ctx.cuts.add(c);
        }
        EnforceResult::AddedCuts(n)
    }

    fn separate(&mut self, ctx: &mut SolveCtx) -> SepaResult {
        let Some(y) = ctx.relax_x else { return SepaResult::DidNotRun };
        let y = y.to_vec();
        let mut buf = CutBuffer::default();
        let n = self.separate_at(&y, &mut buf);
        for c in buf.cuts {
            ctx.cuts.add(c);
        }
        if n == 0 {
            SepaResult::NoCuts
        } else {
            SepaResult::AddedCuts(n)
        }
    }

    fn init_lp(&mut self, _model: &Model, cuts: &mut CutBuffer) {
        // Diagonal relaxation rows S_jj ≥ 0 — the standard starting
        // polyhedral outer approximation.
        for (bi, block) in self.problem.blocks.iter().enumerate() {
            for j in 0..block.dim {
                let mut v = vec![0.0; block.dim];
                v[j] = 1.0;
                if let Some(cut) = self.cut_for(bi, &v) {
                    cuts.add(cut);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugrs_linalg::Matrix;
    use ugrs_sdp::SdpBlock;

    fn problem_2x2() -> Arc<MisdpProblem> {
        // Block [[1, y0], [y0, 1]] ⪰ 0 ⇔ |y0| ≤ 1.
        let mut p = MisdpProblem::new("t", 1);
        p.b = vec![1.0];
        p.lb = vec![-3.0];
        p.ub = vec![3.0];
        let mut blk = SdpBlock::new(2, 1);
        blk.c = Matrix::identity(2);
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = -1.0;
        a[(1, 0)] = -1.0;
        blk.set_a(0, a);
        p.blocks.push(blk);
        Arc::new(p)
    }

    #[test]
    fn check_validates_psd() {
        let mut h = EigenCutHandler::new(problem_2x2());
        let m = Model::new("x");
        assert!(h.check(&m, &[0.5]));
        assert!(!h.check(&m, &[2.0]));
    }

    #[test]
    fn cut_separates_violator() {
        let mut h = EigenCutHandler::new(problem_2x2());
        let mut buf = CutBuffer::default();
        let n = h.separate_at(&[2.0], &mut buf);
        assert!(n >= 1);
        // The produced cut must be violated at y=2 and valid at y=0.5.
        let cut = &buf.cuts[0];
        assert!(cut.violation(&[2.0]) > 1e-6, "cut must cut off y=2");
        assert!(cut.violation(&[0.5]) <= 1e-9, "cut must keep y=0.5");
    }

    #[test]
    fn no_cut_for_feasible_point() {
        let mut h = EigenCutHandler::new(problem_2x2());
        let mut buf = CutBuffer::default();
        assert_eq!(h.separate_at(&[0.3], &mut buf), 0);
    }

    #[test]
    fn init_lp_adds_diagonal_rows() {
        let mut h = EigenCutHandler::new(problem_2x2());
        let mut buf = CutBuffer::default();
        h.init_lp(&Model::new("x"), &mut buf);
        // Both diagonal rows have zero y-coefficient here (A has zero
        // diagonal), so they are dropped as trivial — use a problem with
        // diagonal structure instead.
        let mut p = MisdpProblem::new("d", 1);
        p.lb = vec![0.0];
        p.ub = vec![9.0];
        let mut blk = SdpBlock::new(1, 1);
        blk.c = Matrix::from_rows(1, 1, vec![4.0]).unwrap();
        blk.set_a(0, Matrix::from_rows(1, 1, vec![1.0]).unwrap());
        p.blocks.push(blk);
        let mut h2 = EigenCutHandler::new(Arc::new(p));
        let mut buf2 = CutBuffer::default();
        h2.init_lp(&Model::new("x"), &mut buf2);
        assert_eq!(buf2.cuts.len(), 1); // 4 − y ≥ 0
        assert!(buf2.cuts[0].violation(&[5.0]) > 0.9);
    }
}
