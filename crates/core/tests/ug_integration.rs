//! End-to-end tests of the UG framework against a self-contained toy
//! base solver: a DFS branch-and-bound for 0/1 knapsack. The toy solver
//! implements the full Algorithm-2 contract — status reports, incumbent
//! exchange, collect-mode node export, aborts — so these tests exercise
//! every coordinator path without depending on the CIP stack.

use std::sync::Arc;
use ugrs_core::{
    solve_parallel, BaseSolver, ParaControl, ParallelOptions, RampUp, SolverSettings,
    SubproblemOutcome,
};

/// Knapsack instance shared by all solver instances.
#[derive(Clone, Debug)]
struct Knapsack {
    weights: Vec<f64>,
    profits: Vec<f64>,
    capacity: f64,
}

impl Knapsack {
    fn gen(n: usize, seed: u64) -> Self {
        // Deterministic LCG so the test needs no rand dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64
        };
        let weights: Vec<f64> = (0..n).map(|_| 1.0 + next() % 97.0).collect();
        let profits: Vec<f64> = (0..n).map(|_| 1.0 + next() % 89.0).collect();
        let capacity = weights.iter().sum::<f64>() * 0.5;
        Knapsack { weights, profits, capacity }
    }

    /// A strongly correlated instance (profit = weight + k): weak LP
    /// bounds make these notoriously hard for B&B — ideal for forcing a
    /// time-limit checkpoint.
    fn gen_hard(n: usize, seed: u64) -> Self {
        let mut k = Self::gen(n, seed);
        k.profits = k.weights.iter().map(|w| w + 10.0).collect();
        k
    }

    /// Exact optimum via exhaustive search (n ≤ 20).
    fn brute_force(&self) -> f64 {
        let n = self.weights.len();
        assert!(n <= 20);
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut w, mut p) = (0.0, 0.0);
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    w += self.weights[i];
                    p += self.profits[i];
                }
            }
            if w <= self.capacity {
                best = best.max(p);
            }
        }
        best
    }
}

/// Subproblem: fixings for a prefix-free set of items, as (index, taken).
type Sub = Vec<(u32, bool)>;
/// Solution: the taken-set as a bit vector.
type Sol = Vec<bool>;

/// DFS B&B with fractional (greedy LP) bound. Internal objective =
/// negative profit (UG minimizes).
struct KnapsackSolver {
    inst: Arc<Knapsack>,
    /// artificial per-node delay so collect mode has time to engage
    delay_us: u64,
    /// node order permutation seed from the racing settings
    seed: u64,
}

impl KnapsackSolver {
    /// Greedy fractional bound on remaining profit (classic Dantzig).
    fn bound(&self, fixed: &[Option<bool>], used_w: f64, got_p: f64) -> f64 {
        let mut items: Vec<usize> =
            (0..self.inst.weights.len()).filter(|&i| fixed[i].is_none()).collect();
        items.sort_by(|&a, &b| {
            let ra = self.inst.profits[a] / self.inst.weights[a];
            let rb = self.inst.profits[b] / self.inst.weights[b];
            rb.partial_cmp(&ra).unwrap()
        });
        let mut cap = self.inst.capacity - used_w;
        let mut p = got_p;
        for i in items {
            if cap <= 0.0 {
                break;
            }
            let take = self.inst.weights[i].min(cap);
            p += self.inst.profits[i] * take / self.inst.weights[i];
            cap -= take;
        }
        p
    }
}

impl BaseSolver for KnapsackSolver {
    type Sub = Sub;
    type Sol = Sol;

    fn solve_subproblem(
        &mut self,
        sub: &Sub,
        _known_bound: f64,
        incumbent: Option<&Sol>,
        ctl: &mut dyn ParaControl<Sub, Sol>,
    ) -> SubproblemOutcome {
        let n = self.inst.weights.len();
        let mut best_obj = incumbent
            .map(|s| {
                -s.iter()
                    .enumerate()
                    .filter(|(_, t)| **t)
                    .map(|(i, _)| self.inst.profits[i])
                    .sum::<f64>()
            })
            .unwrap_or(0.0); // empty knapsack is always feasible
                             // The subproblem root's bound is a valid bound for everything in
                             // this subtree — that is what on_status must report.
        let root_bound = {
            let mut fixed: Vec<Option<bool>> = vec![None; n];
            let (mut w, mut p) = (0.0, 0.0);
            for &(i, t) in sub {
                fixed[i as usize] = Some(t);
                if t {
                    w += self.inst.weights[i as usize];
                    p += self.inst.profits[i as usize];
                }
            }
            -self.bound(&fixed, w, p)
        };
        // DFS stack of (fixings). Each entry extends `sub`.
        let mut stack: Vec<Sub> = vec![sub.clone()];
        let mut nodes = 0u64;
        let mut aborted = false;
        while let Some(fixings) = stack.pop() {
            nodes += 1;
            if self.delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(self.delay_us));
            }
            if ctl.should_abort() {
                // Remaining open nodes are lost; the outcome reports
                // NEG_INFINITY for an aborted subtree.
                aborted = true;
                break;
            }
            if let Some((sol, obj)) = ctl.poll_incumbent() {
                let _ = sol;
                if obj < best_obj {
                    best_obj = obj;
                }
            }
            // Build the fixed view.
            let mut fixed: Vec<Option<bool>> = vec![None; n];
            let mut used_w = 0.0;
            let mut got_p = 0.0;
            let mut infeasible = false;
            for &(i, t) in &fixings {
                fixed[i as usize] = Some(t);
                if t {
                    used_w += self.inst.weights[i as usize];
                    got_p += self.inst.profits[i as usize];
                }
            }
            if used_w > self.inst.capacity {
                infeasible = true;
            }
            if infeasible {
                continue;
            }
            let ub_profit = self.bound(&fixed, used_w, got_p);
            let dual = -ub_profit; // internal sense
            if dual >= best_obj - 1e-9 {
                continue; // pruned
            }
            // Export a node when the coordinator is collecting. The bound
            // shipped with it must be valid for *that* node, so it is
            // recomputed from the exported node's own fixings.
            if ctl.collect_requested() && stack.len() >= 2 {
                let exported = stack.remove(0);
                let mut efixed: Vec<Option<bool>> = vec![None; n];
                let (mut ew, mut ep) = (0.0, 0.0);
                for &(i, t) in &exported {
                    efixed[i as usize] = Some(t);
                    if t {
                        ew += self.inst.weights[i as usize];
                        ep += self.inst.profits[i as usize];
                    }
                }
                let ebound = -self.bound(&efixed, ew, ep);
                ctl.export_subproblem(exported, ebound);
            }
            // Next undecided item (permuted by the racing seed).
            let nexts: Vec<usize> = (0..n).filter(|&i| fixed[i].is_none()).collect();
            match nexts.first() {
                None => {
                    // Complete assignment: feasible leaf.
                    let obj = -got_p;
                    if obj < best_obj - 1e-9 {
                        best_obj = obj;
                        let sol: Sol = fixed.iter().map(|f| f == &Some(true)).collect();
                        ctl.on_solution(sol, obj);
                    }
                }
                Some(&pick) => {
                    let pick = if self.seed % 2 == 1 { *nexts.last().unwrap() } else { pick };
                    let mut with = fixings.clone();
                    with.push((pick as u32, true));
                    let mut without = fixings.clone();
                    without.push((pick as u32, false));
                    stack.push(without);
                    stack.push(with);
                }
            }
            ctl.on_status(root_bound, stack.len(), nodes);
        }
        SubproblemOutcome {
            dual_bound: if aborted { f64::NEG_INFINITY } else { best_obj },
            nodes,
            aborted,
        }
    }
}

fn factory(inst: Arc<Knapsack>, delay_us: u64) -> ugrs_core::worker::SolverFactory<KnapsackSolver> {
    Arc::new(move |_rank, settings: &SolverSettings| KnapsackSolver {
        inst: inst.clone(),
        delay_us,
        seed: settings.params.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
    })
}

fn profit_of(inst: &Knapsack, sol: &Sol) -> f64 {
    sol.iter().enumerate().filter(|(_, t)| **t).map(|(i, _)| inst.profits[i]).sum()
}

#[test]
fn parallel_matches_brute_force() {
    let inst = Arc::new(Knapsack::gen(14, 3));
    let expected = inst.brute_force();
    for threads in [1, 2, 4] {
        let opts = ParallelOptions { num_solvers: threads, ..Default::default() };
        let res = solve_parallel(factory(inst.clone(), 20), Vec::new(), opts);
        assert!(res.solved, "threads={threads}");
        let (sol, obj) = res.solution.expect("must find the optimum");
        assert!((profit_of(&inst, &sol) - expected).abs() < 1e-9, "threads={threads}");
        assert!((obj + expected).abs() < 1e-9);
        assert!((res.dual_bound + expected).abs() < 1e-9);
    }
}

#[test]
fn collect_mode_transfers_nodes() {
    let inst = Arc::new(Knapsack::gen(16, 7));
    let opts = ParallelOptions { num_solvers: 4, ..Default::default() };
    let res = solve_parallel(factory(inst.clone(), 50), Vec::new(), opts);
    assert!(res.solved);
    // With 4 solvers and a single root, work can only have spread through
    // collect mode.
    assert!(res.stats.transferred >= 2, "transferred = {}", res.stats.transferred);
    assert!(res.stats.collected >= 1, "collected = {}", res.stats.collected);
    assert!(res.stats.max_active >= 2, "max_active = {}", res.stats.max_active);
}

#[test]
fn racing_ramp_up_picks_a_winner_or_solves_in_race() {
    let inst = Arc::new(Knapsack::gen(16, 11));
    let expected = inst.brute_force();
    let opts = ParallelOptions {
        num_solvers: 3,
        ramp_up: RampUp::Racing {
            settings: SolverSettings::default_racing_set(3),
            time_trigger: 0.05,
            open_nodes_trigger: 6,
        },
        ..Default::default()
    };
    let res = solve_parallel(factory(inst.clone(), 60), Vec::new(), opts);
    assert!(res.solved);
    let (sol, _) = res.solution.unwrap();
    assert!((profit_of(&inst, &sol) - expected).abs() < 1e-9);
    // Either the race was decided (winner recorded) or some racer solved
    // the root before the trigger.
    if let Some(w) = res.stats.racing_winner {
        assert!(w < 3);
    }
}

#[test]
fn time_limit_checkpoints_and_restart_completes() {
    let inst = Arc::new(Knapsack::gen_hard(18, 23));
    let expected = inst.brute_force();
    // Phase 1: absurdly small time limit → checkpoint.
    let opts = ParallelOptions { num_solvers: 3, time_limit: 0.15, ..Default::default() };
    let res1 = solve_parallel(factory(inst.clone(), 300), Vec::new(), opts);
    assert!(!res1.solved, "phase 1 should hit the time limit");
    let cp = res1.final_checkpoint.expect("checkpoint must exist");
    assert!(cp.num_primitive_nodes() >= 1);
    // Phase 2: restart and finish.
    let opts2 = ParallelOptions {
        num_solvers: 3,
        restart_from: Some(serde_json::to_string(&cp).unwrap()),
        ..Default::default()
    };
    let res2 = solve_parallel(factory(inst.clone(), 0), Vec::new(), opts2);
    assert!(res2.solved, "restart must finish");
    let (sol, _) = res2.solution.unwrap();
    assert!((profit_of(&inst, &sol) - expected).abs() < 1e-9);
}

#[test]
fn seeded_incumbent_survives() {
    // Injecting the optimum as a starting incumbent must not be lost.
    let inst = Arc::new(Knapsack::gen(12, 5));
    let expected = inst.brute_force();
    let opts = ParallelOptions { num_solvers: 2, ..Default::default() };
    // No direct seeding API on solve_parallel; emulate Table 3's workflow
    // by running twice: the first run's solution is re-validated by the
    // second run reaching the same optimum.
    let res1 = solve_parallel(factory(inst.clone(), 0), Vec::new(), opts.clone());
    let res2 = solve_parallel(factory(inst.clone(), 0), Vec::new(), opts);
    let p1 = profit_of(&inst, &res1.solution.unwrap().0);
    let p2 = profit_of(&inst, &res2.solution.unwrap().0);
    assert!((p1 - expected).abs() < 1e-9);
    assert!((p1 - p2).abs() < 1e-9);
}

#[test]
fn idle_statistics_are_consistent() {
    let inst = Arc::new(Knapsack::gen(14, 9));
    let opts = ParallelOptions { num_solvers: 4, ..Default::default() };
    let res = solve_parallel(factory(inst, 20), Vec::new(), opts);
    assert!(res.stats.idle_percent >= 0.0 && res.stats.idle_percent <= 100.0);
    assert!(res.stats.wall_time > 0.0);
    assert!(res.stats.nodes_total > 0);
}

/// A solver that reports a dominated bound and then spins until aborted —
/// the coordinator's bound-based termination must reap it.
struct DominatedSpinner;
impl BaseSolver for DominatedSpinner {
    type Sub = Sub;
    type Sol = Sol;
    fn solve_subproblem(
        &mut self,
        _sub: &Sub,
        _known_bound: f64,
        _inc: Option<&Sol>,
        ctl: &mut dyn ParaControl<Sub, Sol>,
    ) -> SubproblemOutcome {
        // Report a feasible solution of value 5, then a bound equal to it.
        ctl.on_solution(vec![true], 5.0);
        let mut n = 0u64;
        loop {
            n += 1;
            ctl.on_status(5.0, 1, n); // dual == incumbent: dominated
            if ctl.should_abort() {
                return SubproblemOutcome { dual_bound: 5.0, nodes: n, aborted: true };
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}

#[test]
fn bound_based_termination_reaps_dominated_solvers() {
    let opts = ParallelOptions {
        num_solvers: 2,
        time_limit: 20.0, // far beyond what bound termination needs
        status_interval: 0.01,
        ..Default::default()
    };
    let factory: ugrs_core::worker::SolverFactory<DominatedSpinner> =
        std::sync::Arc::new(|_, _| DominatedSpinner);
    let t0 = std::time::Instant::now();
    let res = solve_parallel(factory, Vec::new(), opts);
    assert!(res.solved, "dominated work must terminate the run");
    assert!(t0.elapsed().as_secs_f64() < 10.0, "must not run to the time limit");
    let (_, obj) = res.solution.unwrap();
    assert_eq!(obj, 5.0);
}

#[test]
fn serde_fidelity_wrapper_preserves_results() {
    use ugrs_core::worker::SerdeFidelity;
    let inst = Arc::new(Knapsack::gen(13, 17));
    let expected = inst.brute_force();
    let inner = factory(inst.clone(), 10);
    let wrapped: ugrs_core::worker::SolverFactory<SerdeFidelity<KnapsackSolver>> =
        Arc::new(move |rank, settings| {
            SerdeFidelity(
                // reuse the plain factory to build the inner solver
                (inner)(rank, settings),
            )
        });
    let opts = ParallelOptions { num_solvers: 3, ..Default::default() };
    let res = solve_parallel(wrapped, Vec::new(), opts);
    assert!(res.solved);
    let (sol, _) = res.solution.unwrap();
    assert!(
        (profit_of(&inst, &sol) - expected).abs() < 1e-9,
        "byte-boundary round trips must not change the optimum"
    );
}
