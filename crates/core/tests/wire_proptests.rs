//! Property tests for the ProcessComm wire codec (satellite of the
//! distributed back-end PR): every `Message` variant must survive
//! encode → arbitrary re-chunking → `FrameDecoder` → decode, because a
//! TCP stream may hand the reader any fragmentation whatsoever.
//!
//! `Message` has no `PartialEq` (it carries `f64` payloads including
//! NaN), so equality is checked on the canonical re-encoded byte
//! string: the codec serializes deterministically, so a faithful
//! round-trip re-encodes to the identical frame.

use proptest::prelude::*;
use ugrs_core::messages::{Message, SubproblemMsg};
use ugrs_core::wire::{decode, encode, FrameDecoder};
use ugrs_core::SolverSettings;

type Msg = Message<Vec<u32>, Vec<f64>>;

/// Finite and non-finite doubles — the bound fields routinely carry
/// `-inf` (unbounded dual) and must round-trip through the JSON frames.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0usize..8, -1.0e12f64..1.0e12).prop_map(|(k, x)| match k {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => f64::NAN,
        3 => 0.0,
        _ => x,
    })
}

fn arb_sub() -> impl Strategy<Value = SubproblemMsg<Vec<u32>>> {
    (proptest::collection::vec(0u32..10_000, 0..8), arb_f64())
        .prop_map(|(sub, dual_bound)| SubproblemMsg { sub, dual_bound })
}

fn arb_sol() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(arb_f64(), 0..8)
}

fn arb_settings() -> impl Strategy<Value = SolverSettings> {
    (0usize..16).prop_map(|i| SolverSettings {
        index: i,
        name: format!("racing-{i}"),
        params: serde_json::json!({ "seed": i as u64, "emphasis": "default" }),
    })
}

/// One strategy per protocol variant, so the proptest provably covers
/// the whole `Message` enum (a new variant without a generator here is
/// caught by the exhaustiveness check in `variant_count`).
fn arb_msg() -> impl Strategy<Value = Msg> {
    (
        0usize..11,
        (arb_sub(), arb_sol(), arb_settings()),
        (0usize..64, arb_f64(), 0u64..1_000_000),
        (0usize..4, 0usize..2000),
    )
        .prop_map(|(variant, (sub, sol, settings), (rank, bound, nodes), (flags, open))| {
            match variant {
                0 => Message::Subproblem {
                    sub,
                    incumbent: if flags & 1 == 0 { None } else { Some((sol, bound)) },
                    settings: if flags & 2 == 0 { None } else { Some(settings) },
                },
                1 => Message::Incumbent { sol, obj: bound },
                2 => Message::StartCollecting,
                3 => Message::StopCollecting,
                4 => Message::AbortSubproblem,
                5 => Message::Terminate,
                6 => Message::SolutionFound { rank, sol, obj: bound },
                7 => Message::Status { rank, dual_bound: bound, open, nodes },
                8 => Message::ExportedNode { rank, sub },
                9 => Message::Completed { rank, dual_bound: bound, nodes, aborted: flags & 1 == 1 },
                _ => Message::WorkerDied { rank },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode a batch of messages, glue the frames into one byte
    /// stream, feed it to the decoder in arbitrary-size chunks, and
    /// require the exact message sequence back out.
    #[test]
    fn wire_roundtrip_survives_any_chunking(
        msgs in proptest::collection::vec(arb_msg(), 1..6),
        chunk in 1usize..23,
    ) {
        let frames: Vec<Vec<u8>> = msgs.iter().map(encode).collect();
        let stream: Vec<u8> = frames.concat();

        let mut dec = FrameDecoder::new();
        let mut out: Vec<Msg> = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(payload) = dec.next_frame().unwrap() {
                out.push(decode(&payload).unwrap());
            }
        }

        prop_assert!(dec.next_frame().unwrap().is_none());
        prop_assert_eq!(out.len(), msgs.len());
        for (orig_frame, decoded) in frames.iter().zip(&out) {
            // Canonical-bytes equality: re-encoding the decoded message
            // must reproduce the original frame exactly.
            prop_assert_eq!(orig_frame, &encode(decoded));
        }
    }

    /// A frame split at *every* byte boundary (worst-case TCP
    /// trickle) still decodes, and tags survive.
    #[test]
    fn wire_roundtrip_byte_at_a_time(msg in arb_msg()) {
        let frame = encode(&msg);
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for b in &frame {
            dec.push(std::slice::from_ref(b));
            if let Some(payload) = dec.next_frame().unwrap() {
                prop_assert!(got.is_none(), "frame produced twice");
                got = Some(decode::<Msg>(&payload).unwrap());
            }
        }
        let got = got.expect("frame never completed");
        prop_assert_eq!(got.tag(), msg.tag());
    }
}

/// Compile-time guard: if someone adds a `Message` variant, this match
/// stops compiling and points them at `arb_msg()` above.
#[allow(dead_code)]
fn variant_count(m: &Msg) {
    match m {
        Message::Subproblem { .. }
        | Message::Incumbent { .. }
        | Message::StartCollecting
        | Message::StopCollecting
        | Message::AbortSubproblem
        | Message::Terminate
        | Message::SolutionFound { .. }
        | Message::Status { .. }
        | Message::ExportedNode { .. }
        | Message::Completed { .. }
        | Message::WorkerDied { .. } => {}
    }
}
