//! Property tests for the ProcessComm wire codec (satellite of the
//! distributed back-end PR): every `Message` variant must survive
//! encode → arbitrary re-chunking → `FrameDecoder` → decode, because a
//! TCP stream may hand the reader any fragmentation whatsoever.
//!
//! `Message` has no `PartialEq` (it carries `f64` payloads including
//! NaN), so equality is checked on the canonical re-encoded byte
//! string: the codec serializes deterministically, so a faithful
//! round-trip re-encodes to the identical frame.

use proptest::prelude::*;
use ugrs_core::messages::{Message, SubproblemMsg};
use ugrs_core::server::{JobEvent, JobEventKind, JobSummary, PoolDown, PoolUp, WorkerInfo};
use ugrs_core::wire::{
    decode, encode, frame_v2, to_payload, FrameDecoder, FrameHeader, WireError, MAX_FRAME_LEN,
};
use ugrs_core::{
    ClientRequest, FleetStatus, JobProgress, JobSpec, JobState, MetricsReport, ProgressMsg,
    ServerReply, ServerStatus, ShardSummary, SolverSettings,
};

type Msg = Message<Vec<u32>, Vec<f64>>;
type Req = ClientRequest<String, Vec<u32>>;
type Reply = ServerReply<Vec<f64>>;
type Down = PoolDown<String, Vec<u32>, Vec<f64>>;
type Up = PoolUp<Vec<u32>, Vec<f64>>;

/// Finite and non-finite doubles — the bound fields routinely carry
/// `-inf` (unbounded dual) and must round-trip through the JSON frames.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0usize..8, -1.0e12f64..1.0e12).prop_map(|(k, x)| match k {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => f64::NAN,
        3 => 0.0,
        _ => x,
    })
}

fn arb_sub() -> impl Strategy<Value = SubproblemMsg<Vec<u32>>> {
    (proptest::collection::vec(0u32..10_000, 0..8), arb_f64())
        .prop_map(|(sub, dual_bound)| SubproblemMsg { sub, dual_bound })
}

fn arb_sol() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(arb_f64(), 0..8)
}

fn arb_settings() -> impl Strategy<Value = SolverSettings> {
    (0usize..16).prop_map(|i| SolverSettings {
        index: i,
        name: format!("racing-{i}"),
        params: serde_json::json!({ "seed": i as u64, "emphasis": "default" }),
    })
}

/// One strategy per protocol variant, so the proptest provably covers
/// the whole `Message` enum (a new variant without a generator here is
/// caught by the exhaustiveness check in `variant_count`).
fn arb_msg() -> impl Strategy<Value = Msg> {
    (
        0usize..11,
        (arb_sub(), arb_sol(), arb_settings()),
        (0usize..64, arb_f64(), 0u64..1_000_000),
        (0usize..4, 0usize..2000),
    )
        .prop_map(|(variant, (sub, sol, settings), (rank, bound, nodes), (flags, open))| {
            match variant {
                0 => Message::Subproblem {
                    sub,
                    incumbent: if flags & 1 == 0 { None } else { Some((sol, bound)) },
                    settings: if flags & 2 == 0 { None } else { Some(settings) },
                },
                1 => Message::Incumbent { sol, obj: bound },
                2 => Message::StartCollecting,
                3 => Message::StopCollecting,
                4 => Message::AbortSubproblem,
                5 => Message::Terminate,
                6 => Message::SolutionFound { rank, sol, obj: bound },
                7 => Message::Status { rank, dual_bound: bound, open, nodes },
                8 => Message::ExportedNode { rank, sub },
                9 => Message::Completed { rank, dual_bound: bound, nodes, aborted: flags & 1 == 1 },
                _ => Message::WorkerDied { rank },
            }
        })
}

// -------------------------------------------------------------------
// Job-control protocol strategies (the `ugd-server` PR's messages)
// -------------------------------------------------------------------

fn arb_job_state() -> impl Strategy<Value = JobState> {
    (0usize..7).prop_map(|k| match k {
        0 => JobState::Queued,
        1 => JobState::Running,
        2 => JobState::Solved,
        3 => JobState::Infeasible,
        4 => JobState::TimedOut,
        5 => JobState::Cancelled,
        _ => JobState::Failed,
    })
}

fn arb_job_spec() -> impl Strategy<Value = JobSpec<String, Vec<u32>>> {
    (
        0usize..1_000,
        proptest::collection::vec(0u32..10_000, 0..8),
        -4i32..4,
        0usize..16,
        arb_f64(),
        (any::<bool>(), 0u64..1_000_000_000, any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(
                n,
                root,
                priority,
                num_solvers,
                time_limit,
                (has_limit, limit, has_tenant, has_restart),
            )| JobSpec {
                name: format!("job-{n}"),
                instance: format!("inst-{n}"),
                root,
                priority,
                num_solvers,
                time_limit,
                node_limit: has_limit.then_some(limit),
                tenant: has_tenant.then(|| format!("tenant-{}", n % 7)),
                restart_from: has_restart
                    .then(|| format!("{{\"queue\":[],\"run_index\":{}}}", n % 5)),
                family: (n % 3 == 0).then(|| ["stp", "misdp", "maxcut"][n % 3].to_string()),
                checksum: (n % 2 == 0).then(|| format!("{:016x}", n as u64)),
            },
        )
}

fn arb_client_request() -> impl Strategy<Value = Req> {
    (0usize..8, arb_job_spec(), 0u64..1_000, 0usize..1_000).prop_map(
        |(variant, spec, job, from_seq)| match variant {
            0 => ClientRequest::Submit { spec },
            1 => ClientRequest::Cancel { job },
            2 => ClientRequest::Watch { job, from_seq },
            3 => ClientRequest::Status,
            4 => ClientRequest::Metrics,
            5 => ClientRequest::Reclaim { job },
            6 => ClientRequest::Fleet,
            _ => ClientRequest::Shutdown,
        },
    )
}

fn arb_event_kind() -> impl Strategy<Value = JobEventKind<Vec<f64>>> {
    (
        0usize..8,
        (arb_f64(), arb_f64(), (any::<bool>(), arb_sol())),
        (arb_job_state(), 0u64..1_000_000, 0u64..16, 0usize..64),
    )
        .prop_map(
            |(variant, (obj, dual_bound, (has_sol, sol)), (state, nodes, workers_lost, rank))| {
                let solution = has_sol.then_some(sol);
                match variant {
                    0 => JobEventKind::Queued,
                    7 => JobEventKind::Routed { shard: format!("shard-{rank}") },
                    1 => JobEventKind::Started { workers: rank },
                    2 => JobEventKind::Incumbent { obj },
                    3 => JobEventKind::Bound { dual_bound },
                    4 => JobEventKind::WorkerLost { rank },
                    5 => JobEventKind::Recovered {
                        run_index: (workers_lost as u32 % 5) + 2,
                        nodes_so_far: nodes,
                    },
                    _ => JobEventKind::Finished {
                        state,
                        obj: if nodes % 2 == 0 { Some(obj) } else { None },
                        dual_bound,
                        solution,
                        nodes,
                        open_nodes: nodes / 3,
                        workers_lost,
                        wall_time: obj.abs().min(1e6),
                        run_index: (workers_lost as u32 % 5) + 1,
                        nodes_so_far: nodes + rank as u64,
                        final_checkpoint: (workers_lost % 2 == 1)
                            .then(|| format!("{{\"queue\":[],\"run_index\":{workers_lost}}}")),
                    },
                }
            },
        )
}

fn arb_status() -> impl Strategy<Value = ServerStatus> {
    let worker = (0u64..64, (any::<bool>(), 1u32..99_999), 0usize..2, any::<bool>()).prop_map(
        |(id, (has_pid, pid), kind, draining)| WorkerInfo {
            id,
            pid: has_pid.then_some(pid),
            job: if kind == 0 { None } else { Some(id + 1) },
            rank: if kind == 0 { None } else { Some(kind) },
            draining,
        },
    );
    let job = (0usize..1_000, 0u64..64, arb_job_state(), -4i32..4, 0usize..16).prop_map(
        |(n, job, state, priority, num_solvers)| JobSummary {
            job,
            name: format!("job-{n}"),
            state,
            priority,
            num_solvers,
            open_nodes: (n % 2 == 0).then_some(job * 3),
            run_index: (n as u32 % 4) + 1,
        },
    );
    (
        0usize..32,
        proptest::collection::vec(worker, 0..4),
        proptest::collection::vec(0u64..64, 0..4),
        proptest::collection::vec(job, 0..4),
    )
        .prop_map(|(pool_target, workers, queued, jobs)| ServerStatus {
            pool_target,
            workers,
            queued,
            jobs,
        })
}

fn arb_progress() -> impl Strategy<Value = ProgressMsg> {
    (arb_f64(), arb_f64(), 0u64..100_000, 0usize..16, any::<bool>()).prop_map(
        |(primal, dual, nodes, active, racing)| ProgressMsg {
            wall: (nodes as f64) / 100.0,
            phase: if racing { "racing".into() } else { "normal".into() },
            primal_bound: primal,
            dual_bound: dual,
            gap_percent: ugrs_core::stats::gap_percent(primal, dual),
            open_nodes: nodes / 7,
            nodes,
            transferred: nodes / 11,
            collected: nodes / 13,
            incumbents: nodes % 5,
            active,
            idle_percent: (nodes % 101) as f64,
            workers_died: nodes % 3,
        },
    )
}

fn arb_metrics_report() -> impl Strategy<Value = MetricsReport> {
    let jobs = (0u64..64, arb_job_state(), any::<bool>(), arb_progress()).prop_map(
        |(job, state, has_progress, progress)| JobProgress {
            job,
            name: format!("job-{job} \"quoted\"\n"),
            state,
            progress: has_progress.then_some(progress),
        },
    );
    (0usize..1_000, proptest::collection::vec(jobs, 0..4)).prop_map(|(n, jobs)| MetricsReport {
        text: format!("# HELP ugrs_x_total x\n# TYPE ugrs_x_total counter\nugrs_x_total {n}\n"),
        jobs,
    })
}

fn arb_fleet_status() -> impl Strategy<Value = FleetStatus> {
    let shard = (0usize..8, any::<bool>(), 0u64..64, 0u64..16, 0u64..10_000).prop_map(
        |(n, healthy, queue_depth, workers, last_heard_ms)| ShardSummary {
            name: format!("shard-{n}"),
            addr: format!("127.0.0.1:{}", 7000 + n),
            healthy,
            queue_depth,
            workers_busy: workers / 2,
            pool_workers: workers,
            jobs_running: workers / 3,
            last_heard_ms,
        },
    );
    (
        proptest::collection::vec(shard, 0..4),
        0usize..1_000,
        0usize..64,
        (0u64..100, 0u64..100, 0u64..100),
        proptest::collection::vec((0usize..4, 0u64..50), 0..4),
    )
        .prop_map(
            |(shards, inflight, dispatch_depth, (stolen, failed_over, rejected), fams)| {
                let families = fams
                    .into_iter()
                    .map(|(f, n)| (["stp", "misdp", "maxcut", "unknown"][f].to_string(), n))
                    .collect();
                FleetStatus {
                    shards,
                    inflight,
                    dispatch_depth,
                    stolen_total: stolen,
                    failed_over_total: failed_over,
                    rejected_total: rejected,
                    families,
                }
            },
        )
}

fn arb_server_reply() -> impl Strategy<Value = Reply> {
    (
        0usize..9,
        (0u64..1_000, any::<bool>(), 0usize..1_000),
        (0usize..1_000, arb_event_kind()),
        arb_status(),
        arb_metrics_report(),
        arb_fleet_status(),
    )
        .prop_map(
            |(variant, (job, ok, err), (seq, kind), status, report, fleet)| match variant {
                0 => ServerReply::Submitted { job },
                1 => ServerReply::CancelResult { job, ok },
                2 => ServerReply::Event { event: JobEvent { job, seq, kind } },
                3 => ServerReply::Status { status },
                4 => ServerReply::Metrics { report },
                5 => ServerReply::ShuttingDown,
                6 => ServerReply::Rejected {
                    reason: ["quota", "capacity", "draining"][err % 3].to_string(),
                },
                7 => ServerReply::Fleet { fleet },
                _ => ServerReply::Error { message: format!("error #{err}: \"quoted\"\n") },
            },
        )
}

fn arb_pool_down() -> impl Strategy<Value = Down> {
    (any::<bool>(), 0u64..1_000, 0usize..1_000, arb_msg()).prop_map(|(begin, job, n, msg)| {
        if begin {
            PoolDown::Begin { job, instance: format!("inst-{n}") }
        } else {
            PoolDown::Ug { job, msg }
        }
    })
}

fn arb_pool_up() -> impl Strategy<Value = Up> {
    (0usize..3, 0u64..1_000, 0u64..64, arb_msg()).prop_map(|(variant, job, worker, msg)| {
        match variant {
            0 => PoolUp::Ping { worker },
            1 => PoolUp::Ug { job, worker, msg },
            _ => PoolUp::JobDone { job, worker },
        }
    })
}

/// Canonical-bytes round trip through worst-case-ish chunking, shared
/// by all four job-control protocol directions.
fn roundtrip_canonical<T: serde::Serialize + serde::de::DeserializeOwned>(
    msgs: &[T],
    chunk: usize,
) -> Result<(), TestCaseError> {
    let frames: Vec<Vec<u8>> = msgs.iter().map(encode).collect();
    let stream: Vec<u8> = frames.concat();
    let mut dec = FrameDecoder::new();
    let mut out: Vec<T> = Vec::new();
    for piece in stream.chunks(chunk) {
        dec.push(piece);
        while let Some(payload) = dec.next_frame().unwrap() {
            out.push(decode(&payload).unwrap());
        }
    }
    prop_assert!(dec.next_frame().unwrap().is_none());
    prop_assert_eq!(out.len(), msgs.len());
    for (orig, decoded) in frames.iter().zip(&out) {
        prop_assert_eq!(orig, &encode(decoded));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode a batch of messages, glue the frames into one byte
    /// stream, feed it to the decoder in arbitrary-size chunks, and
    /// require the exact message sequence back out.
    #[test]
    fn wire_roundtrip_survives_any_chunking(
        msgs in proptest::collection::vec(arb_msg(), 1..6),
        chunk in 1usize..23,
    ) {
        let frames: Vec<Vec<u8>> = msgs.iter().map(encode).collect();
        let stream: Vec<u8> = frames.concat();

        let mut dec = FrameDecoder::new();
        let mut out: Vec<Msg> = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(payload) = dec.next_frame().unwrap() {
                out.push(decode(&payload).unwrap());
            }
        }

        prop_assert!(dec.next_frame().unwrap().is_none());
        prop_assert_eq!(out.len(), msgs.len());
        for (orig_frame, decoded) in frames.iter().zip(&out) {
            // Canonical-bytes equality: re-encoding the decoded message
            // must reproduce the original frame exactly.
            prop_assert_eq!(orig_frame, &encode(decoded));
        }
    }

    /// A frame split at *every* byte boundary (worst-case TCP
    /// trickle) still decodes, and tags survive.
    #[test]
    fn wire_roundtrip_byte_at_a_time(msg in arb_msg()) {
        let frame = encode(&msg);
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for b in &frame {
            dec.push(std::slice::from_ref(b));
            if let Some(payload) = dec.next_frame().unwrap() {
                prop_assert!(got.is_none(), "frame produced twice");
                got = Some(decode::<Msg>(&payload).unwrap());
            }
        }
        let got = got.expect("frame never completed");
        prop_assert_eq!(got.tag(), msg.tag());
    }

    /// Every client-request variant survives the codec under arbitrary
    /// chunking.
    #[test]
    fn client_requests_roundtrip(
        msgs in proptest::collection::vec(arb_client_request(), 1..5),
        chunk in 1usize..23,
    ) {
        roundtrip_canonical(&msgs, chunk)?;
    }

    /// Every server-reply variant — including full status snapshots and
    /// event streams — survives the codec.
    #[test]
    fn server_replies_roundtrip(
        msgs in proptest::collection::vec(arb_server_reply(), 1..5),
        chunk in 1usize..23,
    ) {
        roundtrip_canonical(&msgs, chunk)?;
    }

    /// Pool downlink frames (`Begin` + wrapped coordination messages).
    #[test]
    fn pool_down_roundtrip(
        msgs in proptest::collection::vec(arb_pool_down(), 1..5),
        chunk in 1usize..23,
    ) {
        roundtrip_canonical(&msgs, chunk)?;
    }

    /// Pool uplink frames (heartbeats, wrapped messages, `JobDone`).
    #[test]
    fn pool_up_roundtrip(
        msgs in proptest::collection::vec(arb_pool_up(), 1..5),
        chunk in 1usize..23,
    ) {
        roundtrip_canonical(&msgs, chunk)?;
    }

    /// A single flipped bit *anywhere* in a v2 frame — length prefix,
    /// header, or payload — must surface as `WireError::Corrupt`, the
    /// structured kind the reconnect policy treats as retryable.
    #[test]
    fn v2_single_bit_flip_surfaces_as_corrupt(
        msg in arb_msg(),
        seq in 0u64..1_000_000,
        ack in 0u64..1_000_000,
        bit_pick in any::<u64>(),
    ) {
        let framed = frame_v2(&to_payload(&msg), FrameHeader { seq, ack });
        let bit = (bit_pick % (framed.len() * 8) as u64) as usize;
        let mut bad = framed;
        bad[bit / 8] ^= 1 << (bit % 8);
        let mut dec = FrameDecoder::new();
        dec.set_v2(true);
        dec.push(&bad);
        match dec.next_frame2() {
            Err(e @ WireError::Corrupt(_)) => prop_assert!(e.is_retryable()),
            other => prop_assert!(false, "bit {bit}: expected Corrupt, got {other:?}"),
        }
    }

    /// Error kinds are structured and classified: an over-limit length
    /// prefix is `TooLarge` (retryable), a CRC-clean frame carrying
    /// garbage is `Codec` (fatal) — the distinction the reconnect
    /// policy is built on.
    #[test]
    fn error_kinds_are_structured(extra in 1usize..1_000_000, garbage in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut dec = FrameDecoder::new();
        let len = MAX_FRAME_LEN + extra;
        dec.push(&(len as u32).to_be_bytes());
        match dec.next_frame() {
            Err(e @ WireError::TooLarge { len: l }) => {
                prop_assert_eq!(l, len as u32 as usize);
                prop_assert!(e.is_retryable());
            }
            other => prop_assert!(false, "expected TooLarge, got {other:?}"),
        }

        prop_assume!(serde_json::from_slice::<Msg>(&garbage).is_err());
        match decode::<Msg>(&garbage) {
            Err(e @ WireError::Codec(_)) => prop_assert!(!e.is_retryable()),
            other => prop_assert!(false, "expected Codec, got {other:?}"),
        }
    }
}

/// Compile-time guard: if someone adds a `Message` variant, this match
/// stops compiling and points them at `arb_msg()` above.
#[allow(dead_code)]
fn variant_count(m: &Msg) {
    match m {
        Message::Subproblem { .. }
        | Message::Incumbent { .. }
        | Message::StartCollecting
        | Message::StopCollecting
        | Message::AbortSubproblem
        | Message::Terminate
        | Message::SolutionFound { .. }
        | Message::Status { .. }
        | Message::ExportedNode { .. }
        | Message::Completed { .. }
        | Message::WorkerDied { .. } => {}
    }
}

/// Same guards for the job-control protocol: a new variant without a
/// generator in the strategies above stops compiling here.
#[allow(dead_code)]
fn job_protocol_variant_count(req: &Req, reply: &Reply, down: &Down, up: &Up, state: &JobState) {
    match req {
        ClientRequest::Submit { .. }
        | ClientRequest::Cancel { .. }
        | ClientRequest::Watch { .. }
        | ClientRequest::Status
        | ClientRequest::Metrics
        | ClientRequest::Reclaim { .. }
        | ClientRequest::Fleet
        | ClientRequest::Shutdown => {}
    }
    match reply {
        ServerReply::Submitted { .. }
        | ServerReply::CancelResult { .. }
        | ServerReply::Event {
            event:
                JobEvent {
                    kind:
                        JobEventKind::Queued
                        | JobEventKind::Routed { .. }
                        | JobEventKind::Started { .. }
                        | JobEventKind::Incumbent { .. }
                        | JobEventKind::Bound { .. }
                        | JobEventKind::WorkerLost { .. }
                        | JobEventKind::Recovered { .. }
                        | JobEventKind::Finished { .. },
                    ..
                },
        }
        | ServerReply::Status { .. }
        | ServerReply::Metrics { .. }
        | ServerReply::ShuttingDown
        | ServerReply::Rejected { .. }
        | ServerReply::Fleet { .. }
        | ServerReply::Error { .. } => {}
    }
    match down {
        PoolDown::Begin { .. } | PoolDown::Ug { .. } => {}
    }
    match up {
        PoolUp::Ping { .. } | PoolUp::Ug { .. } | PoolUp::JobDone { .. } => {}
    }
    match state {
        JobState::Queued
        | JobState::Running
        | JobState::Solved
        | JobState::Infeasible
        | JobState::TimedOut
        | JobState::Cancelled
        | JobState::Failed => {}
    }
}
