//! Boundary tests of the wire codec's frame-length limit: a frame of
//! exactly [`MAX_FRAME_LEN`] must pass, one byte more must be refused,
//! and the refusal must not poison the decoder for subsequent valid
//! frames on a fresh connection.

use ugrs_core::wire::{decode, encode, FrameDecoder, MAX_FRAME_LEN};

/// Feeds a length prefix plus `len` payload bytes in 1 MiB chunks, so
/// the test never materializes a second full-size copy of the payload.
fn push_frame_of(dec: &mut FrameDecoder, len: usize) {
    dec.push(&(len as u32).to_be_bytes());
    let chunk = vec![0u8; 1024 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(chunk.len());
        dec.push(&chunk[..n]);
        remaining -= n;
    }
}

#[test]
fn frame_of_exactly_max_len_decodes() {
    let mut dec = FrameDecoder::new();
    push_frame_of(&mut dec, MAX_FRAME_LEN);
    let frame = dec.next_frame().expect("limit is inclusive").expect("frame is complete");
    assert_eq!(frame.len(), MAX_FRAME_LEN);
    assert!(frame.iter().all(|&b| b == 0));
    assert!(dec.next_frame().unwrap().is_none(), "no bytes may linger");
}

#[test]
fn frame_one_byte_over_max_len_is_refused() {
    let mut dec = FrameDecoder::new();
    // The refusal happens on the prefix alone — no payload needed.
    dec.push(&((MAX_FRAME_LEN + 1) as u32).to_be_bytes());
    let err = dec.next_frame().expect_err("one byte over the limit must error");
    assert!(err.to_string().contains("exceeds"), "unexpected error: {err}");
}

/// After an over-limit prefix the decoder must discard the poisoned
/// bytes and decode a subsequent valid frame normally — the behavior a
/// reconnect handler relies on when it reuses its decoder.
#[test]
fn decoder_recovers_after_over_limit_error() {
    let mut dec = FrameDecoder::new();
    dec.push(&u32::MAX.to_be_bytes());
    assert!(dec.next_frame().is_err());

    // Same decoder, fresh valid frame: must come out intact, once.
    let msg = vec![1u64, 2, 3];
    dec.push(&encode(&msg));
    let frame = dec.next_frame().expect("recovered").expect("complete");
    let back: Vec<u64> = decode(&frame).expect("payload intact");
    assert_eq!(back, msg);
    assert!(dec.next_frame().unwrap().is_none());
}
