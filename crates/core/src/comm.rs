//! The message-passing layer.
//!
//! UG abstracts the transport behind base classes so that the *same*
//! coordination logic runs over pthreads/C++11 threads (FiberSCIP) and
//! MPI (ParaSCIP). We reproduce that boundary: [`LcComm`] and
//! [`WorkerComm`] are enum-dispatched endpoints with two back-ends —
//!
//! * **ThreadComm** (this module): in-process, one `std::sync::mpsc`
//!   channel pair per rank — the FiberSCIP half, `ug [ugrs-*,
//!   ThreadComm]`;
//! * **ProcessComm** ([`crate::process`]): length-prefixed frames
//!   ([`crate::wire`]) over localhost TCP between a coordinator process
//!   and spawned worker processes — the ParaSCIP half, `ug [ugrs-*,
//!   ProcessComm]`, standing in for MPI.
//!
//! All coordination code talks *only* in rank-addressed [`Message`]s —
//! no shared state crosses this boundary (the supervisor and workers
//! share nothing but endpoints), which is what makes the substitution
//! faithful to UG's design: `supervisor`, `worker` and `runner` never
//! know which transport carries their messages.
//!
//! **Delivery guarantees.** ThreadComm delivers every message exactly
//! once, in order (it *is* an mpsc channel). ProcessComm at protocol
//! v2 matches that for every [`Message`]: payloads are
//! CRC32-checksummed, sequence-numbered, ring-buffered until acked,
//! replayed across reconnects and de-duplicated by seq — a transient
//! connection loss is invisible above this layer. Transport-internal
//! heartbeats are fire-and-forget (loss only delays liveness, never
//! state). The guarantee is bounded by the reconnect deadline: when it
//! expires the back-end synthesizes [`Message::WorkerDied`] upward —
//! exactly once per rank — and the coordinator requeues the rank's
//! in-flight subproblem; messages from a dead rank's final moments may
//! then be lost, which is precisely the case the requeue covers. The
//! thread back-end never emits `WorkerDied` (a panicked thread takes
//! the whole process down anyway).

use crate::messages::Message;
use crate::process::{ProcessLcComm, ProcessWorkerComm};
use crate::server::JobComm;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// The LoadCoordinator's endpoint: can send to any rank and receive
/// from all of them.
pub enum LcComm<Sub, Sol> {
    /// In-process channels (FiberSCIP-style).
    Thread(ThreadLcComm<Sub, Sol>),
    /// TCP to spawned worker processes (ParaSCIP-style).
    Process(ProcessLcComm<Sub, Sol>),
    /// Leased standing-pool workers of one `ugd-server` job
    /// ([`crate::server`]): same frames as `Process`, but multiplexed
    /// over connections that outlive the job.
    Job(JobComm<Sub, Sol>),
}

/// A ParaSolver's endpoint: receives its own messages, sends upward.
pub enum WorkerComm<Sub, Sol> {
    /// In-process channels (FiberSCIP-style).
    Thread(ThreadWorkerComm<Sub, Sol>),
    /// TCP back to the spawning coordinator (ParaSCIP-style).
    Process(ProcessWorkerComm<Sub, Sol>),
}

// ---------------------------------------------------------------------
// Thread back-end
// ---------------------------------------------------------------------

/// Coordinator side of the in-process transport.
pub struct ThreadLcComm<Sub, Sol> {
    to_workers: Vec<Sender<Message<Sub, Sol>>>,
    from_workers: Receiver<Message<Sub, Sol>>,
}

/// Worker side of the in-process transport.
pub struct ThreadWorkerComm<Sub, Sol> {
    rank: usize,
    rx: Receiver<Message<Sub, Sol>>,
    tx: Sender<Message<Sub, Sol>>,
}

/// Builds an in-process communicator for `n` workers.
pub fn thread_comm<Sub, Sol>(n: usize) -> (LcComm<Sub, Sol>, Vec<WorkerComm<Sub, Sol>>) {
    let (up_tx, up_rx) = channel();
    let mut to_workers = Vec::with_capacity(n);
    let mut endpoints = Vec::with_capacity(n);
    for rank in 0..n {
        let (tx, rx) = channel();
        to_workers.push(tx);
        endpoints.push(WorkerComm::Thread(ThreadWorkerComm { rank, rx, tx: up_tx.clone() }));
    }
    (LcComm::Thread(ThreadLcComm { to_workers, from_workers: up_rx }), endpoints)
}

/// Marker alias documenting the substitution: the paper's experiments
/// use MPI on supercomputers; our shared-memory runs use the identical
/// protocol over in-process channels.
pub type ThreadComm<Sub, Sol> = (LcComm<Sub, Sol>, Vec<WorkerComm<Sub, Sol>>);

impl<Sub, Sol> LcComm<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// Number of solver ranks this endpoint can address.
    pub fn num_workers(&self) -> usize {
        match self {
            LcComm::Thread(c) => c.to_workers.len(),
            LcComm::Process(c) => c.num_workers(),
            LcComm::Job(c) => c.num_workers(),
        }
    }

    /// Sends `msg` to `rank`. Returns false — rather than panicking —
    /// when the rank is out of range or the worker is gone, so the
    /// coordinator treats a dead rank like a full channel instead of
    /// crashing the whole run.
    pub fn send_to(&self, rank: usize, msg: Message<Sub, Sol>) -> bool {
        match self {
            LcComm::Thread(c) => match c.to_workers.get(rank) {
                Some(tx) => tx.send(msg).is_ok(),
                None => false,
            },
            LcComm::Process(c) => c.send_to(rank, msg),
            LcComm::Job(c) => c.send_to(rank, msg),
        }
    }

    /// Broadcasts clones of `msg` to every rank.
    pub fn broadcast(&self, msg: &Message<Sub, Sol>)
    where
        Sub: Clone,
        Sol: Clone,
    {
        for rank in 0..self.num_workers() {
            let _ = self.send_to(rank, msg.clone());
        }
    }

    /// Blocking receive with timeout; `None` on timeout or when all
    /// workers hung up. On the process transport this is also where
    /// heartbeat liveness is checked: a rank silent past its deadline
    /// comes back as a synthesized [`Message::WorkerDied`].
    pub fn recv_timeout(&self, d: Duration) -> Option<Message<Sub, Sol>> {
        match self {
            LcComm::Thread(c) => match c.from_workers.recv_timeout(d) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
            },
            LcComm::Process(c) => c.recv_timeout(d),
            LcComm::Job(c) => c.recv_timeout(d),
        }
    }
}

impl<Sub, Sol> WorkerComm<Sub, Sol>
where
    Sub: Serialize + DeserializeOwned,
    Sol: Serialize + DeserializeOwned,
{
    /// This endpoint's rank as assigned by the communicator.
    pub fn rank(&self) -> usize {
        match self {
            WorkerComm::Thread(c) => c.rank,
            WorkerComm::Process(c) => c.rank(),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message<Sub, Sol>> {
        match self {
            WorkerComm::Thread(c) => c.rx.try_recv().ok(),
            WorkerComm::Process(c) => c.try_recv(),
        }
    }

    /// Blocking receive; `None` when the coordinator hung up.
    pub fn recv(&self) -> Option<Message<Sub, Sol>> {
        match self {
            WorkerComm::Thread(c) => c.rx.recv().ok(),
            WorkerComm::Process(c) => c.recv(),
        }
    }

    /// Sends upward to the LoadCoordinator.
    pub fn send(&self, msg: Message<Sub, Sol>) -> bool {
        match self {
            WorkerComm::Thread(c) => c.tx.send(msg).is_ok(),
            WorkerComm::Process(c) => c.send(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let (lc, workers) = thread_comm::<u32, u32>(2);
        assert_eq!(lc.num_workers(), 2);
        assert!(lc.send_to(1, Message::StartCollecting));
        assert!(matches!(workers[1].try_recv(), Some(Message::StartCollecting)));
        assert!(workers[0].try_recv().is_none());

        workers[0].send(Message::Status { rank: 0, dual_bound: 1.0, open: 2, nodes: 3 });
        let got = lc.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got.tag(), "status");
    }

    #[test]
    fn broadcast_reaches_all() {
        let (lc, workers) = thread_comm::<u32, u32>(3);
        lc.broadcast(&Message::Terminate);
        for w in &workers {
            assert!(matches!(w.recv(), Some(Message::Terminate)));
        }
    }

    #[test]
    fn recv_timeout_expires() {
        let (lc, _workers) = thread_comm::<u32, u32>(1);
        assert!(lc.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn send_to_out_of_range_rank_is_rejected_not_a_panic() {
        let (lc, _workers) = thread_comm::<u32, u32>(2);
        assert!(!lc.send_to(2, Message::Terminate));
        assert!(!lc.send_to(usize::MAX, Message::Terminate));
    }
}
