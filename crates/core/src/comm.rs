//! The message-passing layer.
//!
//! UG abstracts the transport behind base classes so that the *same*
//! coordination logic runs over pthreads/C++11 threads (FiberSCIP) and
//! MPI (ParaSCIP). We reproduce that boundary: [`ThreadComm`] is the
//! in-process back-end built on crossbeam channels; a distributed
//! back-end would implement the same two endpoint types over sockets or
//! MPI. All coordination code talks *only* in rank-addressed
//! [`Message`]s — no shared state crosses this boundary (the supervisor
//! and workers share nothing but channels), which is what makes the
//! substitution faithful to UG's design.

use crate::messages::Message;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// The LoadCoordinator's endpoint: can send to any rank and receive from
/// all of them.
pub struct LcComm<Sub, Sol> {
    to_workers: Vec<Sender<Message<Sub, Sol>>>,
    from_workers: Receiver<Message<Sub, Sol>>,
}

/// A ParaSolver's endpoint: receives its own messages, sends upward.
pub struct WorkerComm<Sub, Sol> {
    pub rank: usize,
    rx: Receiver<Message<Sub, Sol>>,
    tx: Sender<Message<Sub, Sol>>,
}

/// Builds an in-process communicator for `n` workers.
pub fn thread_comm<Sub, Sol>(n: usize) -> (LcComm<Sub, Sol>, Vec<WorkerComm<Sub, Sol>>) {
    let (up_tx, up_rx) = unbounded();
    let mut to_workers = Vec::with_capacity(n);
    let mut endpoints = Vec::with_capacity(n);
    for rank in 0..n {
        let (tx, rx) = unbounded();
        to_workers.push(tx);
        endpoints.push(WorkerComm { rank, rx, tx: up_tx.clone() });
    }
    (LcComm { to_workers, from_workers: up_rx }, endpoints)
}

/// Marker alias documenting the substitution: the paper's experiments use
/// MPI on supercomputers; our reproduction runs the identical protocol
/// over [`ThreadComm`].
pub type ThreadComm<Sub, Sol> = (LcComm<Sub, Sol>, Vec<WorkerComm<Sub, Sol>>);

impl<Sub, Sol> LcComm<Sub, Sol> {
    pub fn num_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// Sends `msg` to `rank`. Returns false if the worker is gone.
    pub fn send_to(&self, rank: usize, msg: Message<Sub, Sol>) -> bool {
        self.to_workers[rank].send(msg).is_ok()
    }

    /// Broadcasts clones of `msg` to every rank.
    pub fn broadcast(&self, msg: &Message<Sub, Sol>)
    where
        Sub: Clone,
        Sol: Clone,
    {
        for rank in 0..self.num_workers() {
            let _ = self.to_workers[rank].send(msg.clone());
        }
    }

    /// Blocking receive with timeout; `None` on timeout or when all
    /// workers hung up.
    pub fn recv_timeout(&self, d: Duration) -> Option<Message<Sub, Sol>> {
        match self.from_workers.recv_timeout(d) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

impl<Sub, Sol> WorkerComm<Sub, Sol> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message<Sub, Sol>> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive; `None` when the coordinator hung up.
    pub fn recv(&self) -> Option<Message<Sub, Sol>> {
        self.rx.recv().ok()
    }

    /// Sends upward to the LoadCoordinator.
    pub fn send(&self, msg: Message<Sub, Sol>) -> bool {
        self.tx.send(msg).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let (lc, workers) = thread_comm::<u32, u32>(2);
        assert_eq!(lc.num_workers(), 2);
        assert!(lc.send_to(1, Message::StartCollecting));
        assert!(matches!(workers[1].try_recv(), Some(Message::StartCollecting)));
        assert!(workers[0].try_recv().is_none());

        workers[0].send(Message::Status { rank: 0, dual_bound: 1.0, open: 2, nodes: 3 });
        let got = lc.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(got.tag(), "status");
    }

    #[test]
    fn broadcast_reaches_all() {
        let (lc, workers) = thread_comm::<u32, u32>(3);
        lc.broadcast(&Message::Terminate);
        for w in &workers {
            assert!(matches!(w.recv(), Some(Message::Terminate)));
        }
    }

    #[test]
    fn recv_timeout_expires() {
        let (lc, _workers) = thread_comm::<u32, u32>(1);
        assert!(lc.recv_timeout(Duration::from_millis(10)).is_none());
    }
}
